//! Mutation-style negative tests: each deliberately broken protocol
//! variant must be *convicted* by exploration. A model checker that
//! cannot see a removed obligation fail is vacuous — these tests are the
//! checker's own acceptance gate.

use upp_check::explore::explore;
use upp_check::model::{ModelCfg, Mutation, Transition};
use upp_check::props::{check_bounded_recovery, check_no_livelock};
use upp_check::{livelock_artifact, recovery_artifact};

fn explored(mutation: Option<Mutation>) -> upp_check::Exploration {
    let mut cfg = ModelCfg::flagship(2);
    cfg.mutation = mutation;
    explore(&cfg, true, 2_000_000).expect("flagship config explores")
}

/// With the watchdog disabled, deadlocks are never detected: the cyclic
/// full-queue configuration is reachable and can never drain.
#[test]
fn never_expire_watchdog_breaks_bounded_recovery() {
    let ex = explored(Some(Mutation::NeverExpireWatchdog));
    let v = check_bounded_recovery(&ex).expect_err("must be convicted");
    assert!(v.count > 0);
    // The convicting state is a genuine deadlock and the trace reaches it.
    let witness = &ex.states[v.state as usize];
    assert!(witness.is_deadlocked(&ex.cfg));
    let artifact = recovery_artifact(&ex, &v);
    assert!(!artifact.steps.is_empty(), "counterexample has a trace");
    assert_eq!(artifact.mutation.as_deref(), Some("never-expire-watchdog"));
}

/// With circuit establishment skipped, the ack arrives but the pop has no
/// bypass path: the popup wedges in `PopInterposer` forever.
#[test]
fn skip_circuit_insert_breaks_bounded_recovery() {
    let ex = explored(Some(Mutation::SkipCircuitInsert));
    let v = check_bounded_recovery(&ex).expect_err("must be convicted");
    assert!(v.count > 0);
    let artifact = recovery_artifact(&ex, &v);
    assert_eq!(artifact.scenario.scheme, "none");
}

/// With the absorber gone, the reserved ejection entry can never accept
/// the popped packet: recovery stalls with the popup permanently active.
#[test]
fn drop_absorber_breaks_bounded_recovery() {
    let ex = explored(Some(Mutation::DropAbsorber));
    let v = check_bounded_recovery(&ex).expect_err("must be convicted");
    assert!(v.count > 0);
}

/// The bounced-ack handshake spins `req -> ack -> req` without ever
/// popping: a genuine popup livelock, convicted by the SCC check with an
/// actual cycle whose states all have popup machinery active.
#[test]
fn bounce_ack_is_convicted_as_livelock() {
    let ex = explored(Some(Mutation::BounceAck));
    let v = check_no_livelock(&ex).expect_err("must be convicted");
    assert!(!v.cycle.is_empty());
    for &(t, id) in &v.cycle {
        assert!(!t.is_progress(), "livelock cycles carry no progress");
        assert!(
            ex.states[id as usize].popup_in_flight(),
            "livelock states have popup machinery active"
        );
    }
    // The cycle is pure signal churn: serve/deliver alternation.
    assert!(v
        .cycle
        .iter()
        .all(|(t, _)| matches!(t, Transition::ServeReq | Transition::DeliverAck)));
    let artifact = livelock_artifact(&ex, &v);
    assert_eq!(artifact.property, "no-livelock");
    assert!(artifact.steps.len() > v.cycle.len());
}

/// The honest model is clean — the conviction power shown above is not an
/// artifact of an over-strict checker.
#[test]
fn honest_protocol_is_not_convicted() {
    let ex = explored(None);
    let proof = check_bounded_recovery(&ex).expect("recovery holds");
    assert!(proof.deadlock_states > 0, "the proof must cover deadlocks");
    check_no_livelock(&ex).expect("no livelock");
}

/// Every mutation strictly changes the reachable behaviour relative to
/// the honest model — no mutation is a no-op.
#[test]
fn every_mutation_changes_the_state_space() {
    let honest = explored(None).stats.states;
    for m in Mutation::ALL {
        let mutated = explored(Some(m)).stats.states;
        assert_ne!(
            mutated,
            honest,
            "{} must alter the reachable space",
            m.label()
        );
    }
}
