//! Packets, flits and route headers.

use crate::ids::{Cycle, NodeId, PacketId, VnetId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The class of a packet with respect to the chiplet/interposer boundary
/// (Sec. V-D of the paper distinguishes these three transmission cases; we
/// split the "crosses both ways" case out explicitly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketClass {
    /// Source and destination in the same chiplet, or both on the interposer.
    Intra,
    /// From a chiplet router down to an interposer node.
    ChipletToInterposer,
    /// From an interposer node up into a chiplet.
    InterposerToChiplet,
    /// From one chiplet through the interposer into another chiplet.
    InterChiplet,
}

impl PacketClass {
    /// True if the packet's route ever ascends a vertical link (and can
    /// therefore be the paper's *upward packet*).
    #[inline]
    pub fn ascends(self) -> bool {
        matches!(
            self,
            PacketClass::InterposerToChiplet | PacketClass::InterChiplet
        )
    }

    /// True if the packet's route ever descends a vertical link.
    #[inline]
    pub fn descends(self) -> bool {
        matches!(
            self,
            PacketClass::ChipletToInterposer | PacketClass::InterChiplet
        )
    }
}

impl fmt::Display for PacketClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PacketClass::Intra => "intra",
            PacketClass::ChipletToInterposer => "c2i",
            PacketClass::InterposerToChiplet => "i2c",
            PacketClass::InterChiplet => "c2c",
        };
        f.write_str(s)
    }
}

/// The route header carried by a packet's head flit.
///
/// Routing in chiplet-based systems is three-legged (Sec. V-D): source
/// chiplet → exit boundary router → (down) → interposer → entry interposer
/// router → (up) → destination chiplet router. The intermediate targets are
/// chosen once, at injection time, by a [`crate::routing::RouteComputer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RouteInfo {
    /// Final destination node.
    pub dest: NodeId,
    /// Packet class relative to the vertical boundary.
    pub class: PacketClass,
    /// The chiplet boundary router through which the packet leaves its source
    /// chiplet (descending classes only).
    pub exit_boundary: Option<NodeId>,
    /// The interposer router whose `Up` port leads into the destination
    /// chiplet (ascending classes only).
    pub entry_interposer: Option<NodeId>,
}

impl RouteInfo {
    /// A purely local route to `dest`.
    pub fn intra(dest: NodeId) -> Self {
        Self {
            dest,
            class: PacketClass::Intra,
            exit_boundary: None,
            entry_interposer: None,
        }
    }
}

/// Kind of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit: carries the route header.
    Head,
    /// Middle flit.
    Body,
    /// Last flit: releases the VCs it traversed.
    Tail,
    /// Single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// True for `Head` and `HeadTail`.
    #[inline]
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// True for `Tail` and `HeadTail`.
    #[inline]
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// A flow-control unit travelling through the network.
///
/// For simplicity every flit carries the route header and class of its packet
/// (hardware would keep these only on the head flit); body flits never read
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Position of this flit in the packet.
    pub kind: FlitKind,
    /// Sequence number within the packet (head is 0).
    pub seq: u16,
    /// Total packet length in flits (virtual cut-through allocates whole
    /// packets at once).
    pub pkt_len: u16,
    /// Virtual network of the packet.
    pub vnet: VnetId,
    /// Source node of the packet.
    pub src: NodeId,
    /// Route header.
    pub route: RouteInfo,
    /// Cycle at which the packet's head flit entered the network.
    pub injected_at: Cycle,
    /// Set while the flit travels as a popped-up *upward flit*: it bypasses
    /// VC buffers and crosses routers in a single switch-traversal stage
    /// (Sec. V-C).
    pub upward: bool,
    /// Set on flits of a packet currently being recovered: they receive top
    /// switch-allocation priority so the worm drains (wormhole support,
    /// Sec. V-B3).
    pub popup_priority: bool,
}

impl Flit {
    /// Builds the `i`-th flit (of `len`) of a packet.
    pub fn new(
        packet: PacketId,
        seq: u16,
        len: u16,
        vnet: VnetId,
        src: NodeId,
        route: RouteInfo,
        injected_at: Cycle,
    ) -> Self {
        debug_assert!(len > 0 && seq < len);
        let kind = match (seq, len) {
            (0, 1) => FlitKind::HeadTail,
            (0, _) => FlitKind::Head,
            (s, l) if s + 1 == l => FlitKind::Tail,
            _ => FlitKind::Body,
        };
        Self {
            packet,
            kind,
            seq,
            pkt_len: len,
            vnet,
            src,
            route,
            injected_at,
            upward: false,
            popup_priority: false,
        }
    }
}

/// A whole packet, as seen by NIs and traffic generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Globally-unique id.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Virtual network (message class).
    pub vnet: VnetId,
    /// Length in flits.
    pub len_flits: u16,
    /// Cycle the packet was created (enqueued at the source NI).
    pub created_at: Cycle,
}

impl Packet {
    /// Constructs a packet description.
    pub fn new(
        id: PacketId,
        src: NodeId,
        dest: NodeId,
        vnet: VnetId,
        len_flits: u16,
        created_at: Cycle,
    ) -> Self {
        debug_assert!(len_flits > 0);
        Self {
            id,
            src,
            dest,
            vnet,
            len_flits,
            created_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route() -> RouteInfo {
        RouteInfo::intra(NodeId(5))
    }

    #[test]
    fn flit_kinds_by_position() {
        let p = PacketId(1);
        let v = VnetId(0);
        let single = Flit::new(p, 0, 1, v, NodeId(0), route(), 0);
        assert_eq!(single.kind, FlitKind::HeadTail);
        assert!(single.kind.is_head() && single.kind.is_tail());

        let head = Flit::new(p, 0, 5, v, NodeId(0), route(), 0);
        let body = Flit::new(p, 2, 5, v, NodeId(0), route(), 0);
        let tail = Flit::new(p, 4, 5, v, NodeId(0), route(), 0);
        assert_eq!(head.kind, FlitKind::Head);
        assert_eq!(body.kind, FlitKind::Body);
        assert_eq!(tail.kind, FlitKind::Tail);
        assert!(!body.kind.is_head() && !body.kind.is_tail());
    }

    #[test]
    fn class_ascent_descent() {
        assert!(!PacketClass::Intra.ascends());
        assert!(!PacketClass::Intra.descends());
        assert!(PacketClass::InterChiplet.ascends() && PacketClass::InterChiplet.descends());
        assert!(PacketClass::InterposerToChiplet.ascends());
        assert!(!PacketClass::InterposerToChiplet.descends());
        assert!(PacketClass::ChipletToInterposer.descends());
        assert!(!PacketClass::ChipletToInterposer.ascends());
    }

    #[test]
    fn intra_route_has_no_intermediates() {
        let r = RouteInfo::intra(NodeId(3));
        assert_eq!(r.dest, NodeId(3));
        assert!(r.exit_boundary.is_none() && r.entry_interposer.is_none());
    }
}
