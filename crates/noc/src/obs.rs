//! Protocol-state telemetry registry.
//!
//! Earlier observability layers (the flight recorder in [`crate::trace`],
//! the latency profiler in [`crate::profile`]) see *packets*. This module
//! sees the *protocol's own state*: typed metrics — monotonic counters,
//! gauges with high-water marks, log-bucketed histograms — stored
//! struct-of-arrays in a single [`ObsRegistry`], snapshotted per epoch and
//! exported as deterministic, byte-stable JSON.
//!
//! Design rules:
//!
//! * **Zero-cost when disabled.** A disabled registry ([`ObsRegistry`]'s
//!   default) never allocates; every record call is a single predictable
//!   branch on [`ObsRegistry::is_enabled`]. Hot paths additionally gate on
//!   `is_enabled()` before touching metric ids, mirroring the
//!   `tracer.enabled()` idiom.
//! * **Scheme-agnostic substrate.** The registry itself knows no metric
//!   names. `network.rs`/`router.rs` record only *mechanism* metrics
//!   (circuit table, absorber — structures defined by the NoC substrate,
//!   pre-registered in [`MechMetrics`]); scheme-specific metrics are
//!   registered and recorded by the schemes through the
//!   [`crate::scheme::Scheme::observe`] hook and `pre_cycle`.
//! * **Exact across fast-forwards.** Counters and event-maintained gauges
//!   piggyback on work the kernel actually executes, and every per-cycle
//!   recording site sits on a path that vetoes `advance_to` jumps, so the
//!   active-set scheduler cannot change a single recorded value.
//! * **Mergeable epochs.** [`ObsSnapshot::merge`] is associative and
//!   commutative (counters and histogram buckets form commutative monoids
//!   under addition; gauges join in the lattice of
//!   `(cycle, value)`-lexicographic maxima), so shard-level snapshots can
//!   be folded in any order.
//!
//! Histogram bucketing deliberately matches `upp_tracetools::Histogram`
//! (exact buckets below [`LINEAR_MAX`], [`SUB`] sub-buckets per octave
//! above, identical sparse-bucket JSON), so obs exports feed the same
//! analysis toolchain without translation.

use crate::ids::Cycle;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Schema tag stamped into every obs export so stale files from older
/// layouts are detected instead of silently parsed.
pub const OBS_SCHEMA: &str = "upp-obs/v1";

/// Sub-buckets per power-of-two octave (matches
/// `upp_tracetools::histogram::SUB`).
pub const SUB: usize = 32;

/// Values below this get exact single-value buckets (matches
/// `upp_tracetools::histogram::LINEAR_MAX`).
pub const LINEAR_MAX: u64 = 32;

// ------------------------------------------------------------- histogram

/// A mergeable log-bucketed histogram of `u64` samples, bucket-compatible
/// with `upp_tracetools::Histogram` (same indexing, same JSON shape).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl ObsHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value: exact below [`LINEAR_MAX`], then [`SUB`]
    /// sub-buckets per octave, continuous at the boundary.
    fn index(v: u64) -> usize {
        if v < LINEAR_MAX {
            v as usize
        } else {
            let e = 63 - v.leading_zeros() as usize; // e >= 5
            let sub = ((v >> (e - 5)) & 31) as usize;
            32 + (e - 5) * SUB + sub
        }
    }

    /// Half-open value range `[lo, hi)` covered by a bucket.
    fn bounds(idx: usize) -> (u64, u64) {
        if idx < 32 {
            (idx as u64, idx as u64 + 1)
        } else {
            let e = 5 + (idx - 32) / SUB;
            let sub = ((idx - 32) % SUB) as u64;
            let w = 1u64 << (e - 5);
            let lo = (1u64 << e) + sub * w;
            (lo, lo + w)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = Self::index(v);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Adds every sample of `other` into `self` (exact element-wise count
    /// merge; associative and commutative).
    pub fn merge(&mut self, other: &ObsHistogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (s, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *s += o;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The samples recorded since `prev` was a copy of this histogram
    /// (element-wise bucket subtraction; `prev` must be an earlier state of
    /// `self`). The delta's `min`/`max` are bucket-bounded rather than
    /// exact: the true per-epoch extremes are inside the first/last
    /// non-empty delta bucket.
    pub fn delta_since(&self, prev: &ObsHistogram) -> ObsHistogram {
        let mut buckets = self.buckets.clone();
        for (b, &p) in buckets.iter_mut().zip(prev.buckets.iter()) {
            *b = b.saturating_sub(p);
        }
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        let (mut min, mut max) = (0, 0);
        if let Some(first) = buckets.iter().position(|&n| n > 0) {
            let last = buckets.iter().rposition(|&n| n > 0).expect("some bucket");
            min = Self::bounds(first).0;
            max = Self::bounds(last).1 - 1;
        }
        ObsHistogram {
            buckets,
            count: self.count.saturating_sub(prev.count),
            sum: self.sum.saturating_sub(prev.sum),
            min,
            max,
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the midpoint of the bucket holding
    /// the rank-`ceil(q * count)` sample, clamped to the observed
    /// `[min, max]` (same contract as `upp_tracetools::Histogram`).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if n > 0 && cum >= target {
                let (lo, hi) = Self::bounds(i);
                return ((lo + hi) / 2).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Renders as a deterministic JSON object with sparse buckets —
    /// byte-identical to `upp_tracetools::Histogram::to_json` for the same
    /// samples.
    pub fn to_json(&self) -> String {
        let mut pairs = String::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !pairs.is_empty() {
                pairs.push(',');
            }
            let _ = write!(pairs, "[{i},{n}]");
        }
        let min = if self.count == 0 { 0 } else { self.min };
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{pairs}]}}",
            self.count,
            self.sum,
            min,
            self.max()
        )
    }
}

// --------------------------------------------------------------- handles

/// Handle to a registered monotonic counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle to a registered gauge (instantaneous value + high-water mark).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistId(u32);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Hist,
}

// -------------------------------------------------------------- snapshot

/// One epoch's worth of metric state, cut by [`ObsRegistry::take_epoch`]:
/// counter and histogram *deltas* over the epoch, gauges as the
/// instantaneous value at the epoch boundary plus the within-epoch
/// high-water mark.
///
/// Snapshots over the same registry layout form a commutative monoid under
/// [`ObsSnapshot::merge`], so shard- or epoch-level aggregation can fold
/// them in any order (property-tested in `tests/obs_props.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSnapshot {
    /// Cycle the epoch ended at.
    pub end_cycle: Cycle,
    /// Per-counter increments during the epoch (registry order).
    pub counters: Vec<u64>,
    /// Per-gauge value at `end_cycle` (registry order).
    pub gauge_value: Vec<u64>,
    /// Per-gauge high-water mark within the epoch (registry order).
    pub gauge_high: Vec<u64>,
    /// Per-histogram sample deltas during the epoch (registry order).
    pub hists: Vec<ObsHistogram>,
}

impl ObsSnapshot {
    /// Folds `other` into `self`: counters and histogram buckets add;
    /// high-water marks take the maximum; instantaneous gauge values join
    /// lexicographically on `(end_cycle, value)` so the later snapshot's
    /// reading wins and equal-cycle merges resolve deterministically.
    /// Associative and commutative.
    ///
    /// # Panics
    ///
    /// Panics when the snapshots were cut from different registry layouts.
    pub fn merge(&mut self, other: &ObsSnapshot) {
        assert_eq!(self.counters.len(), other.counters.len(), "layout mismatch");
        assert_eq!(self.hists.len(), other.hists.len(), "layout mismatch");
        for (s, &o) in self.counters.iter_mut().zip(other.counters.iter()) {
            *s += o;
        }
        for (s, o) in self.hists.iter_mut().zip(other.hists.iter()) {
            s.merge(o);
        }
        for (s, &o) in self.gauge_high.iter_mut().zip(other.gauge_high.iter()) {
            *s = (*s).max(o);
        }
        for (s, &o) in self.gauge_value.iter_mut().zip(other.gauge_value.iter()) {
            // Lexicographic max of (end_cycle, value) per gauge.
            if (other.end_cycle, o) > (self.end_cycle, *s) {
                *s = o;
            }
        }
        self.end_cycle = self.end_cycle.max(other.end_cycle);
    }
}

// ------------------------------------------------- mechanism metric ids

/// Pre-registered ids for the *mechanism-level* metrics recorded by the
/// substrate itself (`router.rs`): the destination-keyed circuit table and
/// the absorber are NoC structures, so counting their events here keeps
/// the router scheme-agnostic while every scheme's use of them is visible.
#[derive(Debug, Clone, Copy, Default)]
pub struct MechMetrics {
    /// Circuit-table entries recorded for the first time.
    pub circuit_inserts: CounterId,
    /// Circuit-table entries overwritten by a later recording (the table is
    /// destination-keyed, so a new popup towards the same destination
    /// evicts the stale reverse path).
    pub circuit_evictions: CounterId,
    /// Circuit lookups that found an entry (upward-flit forwarding and
    /// reverse-routed control messages).
    pub circuit_lookup_hits: CounterId,
    /// Circuit lookups that found nothing (stale protocol state).
    pub circuit_lookup_misses: CounterId,
    /// Flits absorbed into side buffers at boundary routers.
    pub absorber_flits: CounterId,
    /// Total circuit-table entries across all routers (event-maintained:
    /// +1 on insert, exact high-water even between epochs).
    pub circuit_entries: GaugeId,
}

// -------------------------------------------------------------- registry

/// The telemetry registry: struct-of-arrays metric storage plus epoch
/// bookkeeping. One lives inside every [`crate::network::Network`];
/// disabled (the default) it is a handful of empty vectors and every
/// operation returns after one branch.
#[derive(Debug, Default)]
pub struct ObsRegistry {
    enabled: bool,
    by_name: HashMap<String, (Kind, u32)>,
    counter_names: Vec<String>,
    counters: Vec<u64>,
    epoch_counters: Vec<u64>,
    gauge_names: Vec<String>,
    gauge_value: Vec<u64>,
    gauge_high: Vec<u64>,
    gauge_epoch_high: Vec<u64>,
    hist_names: Vec<String>,
    hists: Vec<ObsHistogram>,
    epoch_hists: Vec<ObsHistogram>,
    /// Ids of the substrate's own metrics; meaningful only when enabled.
    pub mech: MechMetrics,
}

impl ObsRegistry {
    /// A disabled registry (the default state of every network).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Enables recording and registers the mechanism metrics. Idempotent.
    pub fn enable(&mut self) {
        if self.enabled {
            return;
        }
        self.enabled = true;
        self.mech = MechMetrics {
            circuit_inserts: self.counter("circuit.inserts"),
            circuit_evictions: self.counter("circuit.evictions"),
            circuit_lookup_hits: self.counter("circuit.lookup_hits"),
            circuit_lookup_misses: self.counter("circuit.lookup_misses"),
            absorber_flits: self.counter("absorber.flits_absorbed"),
            circuit_entries: self.gauge("circuit.entries"),
        };
    }

    /// True when the registry records. The single branch every gated call
    /// site pays.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    // ---- registration (idempotent by name; no-ops while disabled) ----

    /// Registers (or looks up) a monotonic counter.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if !self.enabled {
            return CounterId::default();
        }
        if let Some(&(kind, ix)) = self.by_name.get(name) {
            assert_eq!(kind, Kind::Counter, "{name} registered with another kind");
            return CounterId(ix);
        }
        let ix = self.counters.len() as u32;
        self.counter_names.push(name.to_string());
        self.counters.push(0);
        self.epoch_counters.push(0);
        self.by_name.insert(name.to_string(), (Kind::Counter, ix));
        CounterId(ix)
    }

    /// Registers (or looks up) a gauge.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if !self.enabled {
            return GaugeId::default();
        }
        if let Some(&(kind, ix)) = self.by_name.get(name) {
            assert_eq!(kind, Kind::Gauge, "{name} registered with another kind");
            return GaugeId(ix);
        }
        let ix = self.gauge_value.len() as u32;
        self.gauge_names.push(name.to_string());
        self.gauge_value.push(0);
        self.gauge_high.push(0);
        self.gauge_epoch_high.push(0);
        self.by_name.insert(name.to_string(), (Kind::Gauge, ix));
        GaugeId(ix)
    }

    /// Registers (or looks up) a histogram.
    pub fn hist(&mut self, name: &str) -> HistId {
        if !self.enabled {
            return HistId::default();
        }
        if let Some(&(kind, ix)) = self.by_name.get(name) {
            assert_eq!(kind, Kind::Hist, "{name} registered with another kind");
            return HistId(ix);
        }
        let ix = self.hists.len() as u32;
        self.hist_names.push(name.to_string());
        self.hists.push(ObsHistogram::new());
        self.epoch_hists.push(ObsHistogram::new());
        self.by_name.insert(name.to_string(), (Kind::Hist, ix));
        HistId(ix)
    }

    // ---------------- recording (single branch while disabled) ----------------

    /// Increments a counter by 1.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Increments a counter by `n`.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        if !self.enabled {
            return;
        }
        self.counters[id.0 as usize] += n;
    }

    /// Overwrites a counter with an externally-accumulated running total
    /// (for adapting scheme stats structs that already count; epoch deltas
    /// still difference correctly as long as the total is monotonic).
    #[inline]
    pub fn counter_record_total(&mut self, id: CounterId, total: u64) {
        if !self.enabled {
            return;
        }
        self.counters[id.0 as usize] = total;
    }

    /// Sets a gauge to an absolute value, updating both high-water marks.
    #[inline]
    pub fn gauge_set(&mut self, id: GaugeId, v: u64) {
        if !self.enabled {
            return;
        }
        let i = id.0 as usize;
        self.gauge_value[i] = v;
        self.gauge_high[i] = self.gauge_high[i].max(v);
        self.gauge_epoch_high[i] = self.gauge_epoch_high[i].max(v);
    }

    /// Adds `n` to an event-maintained gauge.
    #[inline]
    pub fn gauge_add(&mut self, id: GaugeId, n: u64) {
        if !self.enabled {
            return;
        }
        let i = id.0 as usize;
        let v = self.gauge_value[i] + n;
        self.gauge_value[i] = v;
        self.gauge_high[i] = self.gauge_high[i].max(v);
        self.gauge_epoch_high[i] = self.gauge_epoch_high[i].max(v);
    }

    /// Subtracts `n` from an event-maintained gauge (saturating).
    #[inline]
    pub fn gauge_sub(&mut self, id: GaugeId, n: u64) {
        if !self.enabled {
            return;
        }
        let i = id.0 as usize;
        self.gauge_value[i] = self.gauge_value[i].saturating_sub(n);
    }

    /// Records a histogram sample.
    #[inline]
    pub fn record(&mut self, id: HistId, v: u64) {
        if !self.enabled {
            return;
        }
        self.hists[id.0 as usize].record(v);
    }

    // ------------------------------- reads -------------------------------

    /// Cumulative value of a counter by name (0 when unknown or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.by_name.get(name) {
            Some(&(Kind::Counter, ix)) => self.counters[ix as usize],
            _ => 0,
        }
    }

    /// `(value, high_water)` of a gauge by name.
    pub fn gauge_value(&self, name: &str) -> (u64, u64) {
        match self.by_name.get(name) {
            Some(&(Kind::Gauge, ix)) => {
                (self.gauge_value[ix as usize], self.gauge_high[ix as usize])
            }
            _ => (0, 0),
        }
    }

    /// Cumulative histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&ObsHistogram> {
        match self.by_name.get(name) {
            Some(&(Kind::Hist, ix)) => Some(&self.hists[ix as usize]),
            _ => None,
        }
    }

    /// Number of registered metrics of all kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauge_value.len() + self.hists.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ------------------------------ epochs ------------------------------

    /// Cuts an epoch at `cycle`: returns the deltas since the previous cut
    /// and rolls the epoch baseline forward (within-epoch gauge high-water
    /// marks restart from the current values).
    pub fn take_epoch(&mut self, cycle: Cycle) -> ObsSnapshot {
        let counters: Vec<u64> = self
            .counters
            .iter()
            .zip(self.epoch_counters.iter())
            .map(|(&c, &p)| c - p)
            .collect();
        let hists: Vec<ObsHistogram> = self
            .hists
            .iter()
            .zip(self.epoch_hists.iter())
            .map(|(h, p)| h.delta_since(p))
            .collect();
        let snap = ObsSnapshot {
            end_cycle: cycle,
            counters,
            gauge_value: self.gauge_value.clone(),
            gauge_high: self.gauge_epoch_high.clone(),
            hists,
        };
        self.epoch_counters.copy_from_slice(&self.counters);
        self.epoch_hists.clone_from(&self.hists);
        self.gauge_epoch_high.copy_from_slice(&self.gauge_value);
        snap
    }

    /// Folds a shard-local shadow registry into this one and zeroes the
    /// shadow for reuse next cycle. A shadow is a fresh registry with
    /// [`ObsRegistry::enable`] called, so its ids are a prefix of this
    /// registry's (the mechanism metrics register first, in a fixed
    /// order). The parallel region only increments counters and
    /// event-maintained gauges — both monotone — so adding the deltas
    /// reproduces the serial values *and* high-water marks exactly: within
    /// one cycle a monotone gauge peaks at its end-of-cycle value, which
    /// is what the merged add reaches.
    pub fn absorb_shard_delta(&mut self, shadow: &mut ObsRegistry) {
        if !self.enabled || !shadow.enabled {
            return;
        }
        for (ix, c) in shadow.counters.iter_mut().enumerate() {
            if *c != 0 {
                self.counters[ix] += *c;
                *c = 0;
            }
        }
        for (ix, g) in shadow.gauge_value.iter_mut().enumerate() {
            if *g != 0 {
                let v = self.gauge_value[ix] + *g;
                self.gauge_value[ix] = v;
                self.gauge_high[ix] = self.gauge_high[ix].max(v);
                self.gauge_epoch_high[ix] = self.gauge_epoch_high[ix].max(v);
                *g = 0;
            }
        }
        for (ix, h) in shadow.hists.iter_mut().enumerate() {
            self.hists[ix].merge(h);
            *h = ObsHistogram::new();
        }
        for h in shadow.gauge_high.iter_mut() {
            *h = 0;
        }
        for h in shadow.gauge_epoch_high.iter_mut() {
            *h = 0;
        }
    }

    // ------------------------------ export ------------------------------

    /// Sorted `(name, index)` views used by every export, so output bytes
    /// are independent of registration order.
    fn sorted(names: &[String]) -> Vec<(&str, usize)> {
        let mut v: Vec<(&str, usize)> = names.iter().map(String::as_str).zip(0..).collect();
        v.sort_unstable_by_key(|&(n, _)| n);
        v
    }

    /// Header line for an epoch JSONL stream (schema marker; readers reject
    /// files whose schema does not match [`OBS_SCHEMA`]).
    pub fn epochs_header_json(&self) -> String {
        format!("{{\"upp_obs_epochs\":1,\"schema\":\"{OBS_SCHEMA}\"}}")
    }

    /// One epoch snapshot as a deterministic single-line JSON object.
    pub fn epoch_json(&self, snap: &ObsSnapshot) -> String {
        let mut out = format!("{{\"cycle\":{},\"counters\":{{", snap.end_cycle);
        for (i, (name, ix)) in Self::sorted(&self.counter_names).into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{}", snap.counters[ix]);
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, ix)) in Self::sorted(&self.gauge_names).into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{name}\":[{},{}]",
                snap.gauge_value[ix], snap.gauge_high[ix]
            );
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, ix)) in Self::sorted(&self.hist_names).into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{}", snap.hists[ix].to_json());
        }
        out.push_str("}}");
        out
    }

    /// The cumulative end-of-run summary as deterministic JSON: every
    /// counter total, every gauge as `[value, high_water]`, every
    /// histogram in the shared sparse-bucket shape. Carries the
    /// `"upp_obs": 1` marker and [`OBS_SCHEMA`] for detection.
    pub fn summary_json(&self, cycle: Cycle) -> String {
        let mut out = format!(
            "{{\n  \"upp_obs\": 1,\n  \"schema\": \"{OBS_SCHEMA}\",\n  \"cycle\": {cycle},\n  \"counters\": {{"
        );
        for (i, (name, ix)) in Self::sorted(&self.counter_names).into_iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            let _ = write!(out, "\"{name}\": {}", self.counters[ix]);
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, ix)) in Self::sorted(&self.gauge_names).into_iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            let _ = write!(
                out,
                "\"{name}\": [{}, {}]",
                self.gauge_value[ix], self.gauge_high[ix]
            );
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, ix)) in Self::sorted(&self.hist_names).into_iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            let _ = write!(out, "\"{name}\": {}", self.hists[ix].to_json());
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing_and_allocates_nothing() {
        let mut r = ObsRegistry::disabled();
        let c = r.counter("a");
        let g = r.gauge("b");
        let h = r.hist("c");
        r.inc(c);
        r.gauge_set(g, 7);
        r.record(h, 9);
        assert!(!r.is_enabled());
        assert!(r.is_empty());
        assert_eq!(r.counter_value("a"), 0);
    }

    #[test]
    fn registration_is_idempotent_by_name() {
        let mut r = ObsRegistry::disabled();
        r.enable();
        let a = r.counter("x");
        let b = r.counter("x");
        assert_eq!(a, b);
        r.inc(a);
        r.inc(b);
        assert_eq!(r.counter_value("x"), 2);
    }

    #[test]
    fn gauges_track_high_water_marks() {
        let mut r = ObsRegistry::disabled();
        r.enable();
        let g = r.gauge("occ");
        r.gauge_add(g, 5);
        r.gauge_sub(g, 3);
        r.gauge_add(g, 1);
        assert_eq!(r.gauge_value("occ"), (3, 5));
        r.gauge_set(g, 9);
        assert_eq!(r.gauge_value("occ"), (9, 9));
    }

    #[test]
    fn epochs_difference_counters_and_histograms() {
        let mut r = ObsRegistry::disabled();
        r.enable();
        let c = r.counter("n");
        let g = r.gauge("g");
        let h = r.hist("h");
        r.add(c, 3);
        r.gauge_set(g, 4);
        r.record(h, 10);
        // Mechanism metrics are pre-registered by `enable`, so user metric
        // ids do not start at 0 — index through the returned handles.
        let (ci, gi, hi) = (c.0 as usize, g.0 as usize, h.0 as usize);
        let e1 = r.take_epoch(100);
        assert_eq!(e1.counters[ci], 3);
        assert_eq!(e1.gauge_high[gi], 4);
        assert_eq!(e1.hists[hi].count(), 1);
        r.add(c, 2);
        r.gauge_set(g, 1);
        r.record(h, 10);
        r.record(h, 50_000);
        let e2 = r.take_epoch(200);
        assert_eq!(e2.counters[ci], 2, "second epoch sees only the delta");
        assert_eq!(e2.gauge_value[gi], 1);
        assert_eq!(
            e2.gauge_high[gi], 4,
            "epoch high-water restarts from the boundary value"
        );
        assert_eq!(e2.hists[hi].count(), 2);
        assert_eq!(e2.hists[hi].sum(), 50_010);
    }

    #[test]
    fn snapshot_merge_combines_epochs_exactly() {
        let mut r = ObsRegistry::disabled();
        r.enable();
        let c = r.counter("n");
        let h = r.hist("h");
        r.add(c, 3);
        r.record(h, 7);
        let mut e1 = r.take_epoch(10);
        r.add(c, 4);
        r.record(h, 9);
        let e2 = r.take_epoch(20);
        e1.merge(&e2);
        assert_eq!(e1.counters[c.0 as usize], 7);
        assert_eq!(e1.end_cycle, 20);
        assert_eq!(e1.hists[h.0 as usize].count(), 2);
        assert_eq!(e1.hists[h.0 as usize].sum(), 16);
    }

    #[test]
    fn exports_are_sorted_and_stable() {
        let mut r = ObsRegistry::disabled();
        r.enable();
        let b = r.counter("z.second");
        let a = r.counter("a.first");
        r.inc(a);
        r.add(b, 2);
        let summary = r.summary_json(42);
        let ia = summary.find("a.first").unwrap();
        let ib = summary.find("z.second").unwrap();
        assert!(ia < ib, "names sorted regardless of registration order");
        assert!(summary.contains("\"upp_obs\": 1"));
        assert!(summary.contains(OBS_SCHEMA));
        let snap = r.take_epoch(42);
        let line = r.epoch_json(&snap);
        assert!(!line.contains('\n'), "epoch lines are single-line JSONL");
        assert!(line.starts_with("{\"cycle\":42,"));
    }

    #[test]
    fn histogram_bucketing_is_continuous_and_json_matches_tracetools_shape() {
        let mut h = ObsHistogram::new();
        let mut prev = 0;
        for v in 0..100_000u64 {
            let idx = ObsHistogram::index(v);
            assert!(idx >= prev, "monotonic at {v}");
            prev = idx;
            let (lo, hi) = ObsHistogram::bounds(idx);
            assert!(lo <= v && v < hi, "bounds contain {v}: [{lo},{hi})");
        }
        for v in [0, 1, 31, 32, 33, 1_000, 123_456_789] {
            h.record(v);
        }
        let json = h.to_json();
        assert!(json.starts_with("{\"count\":7,\"sum\":"));
        assert!(json.contains("\"buckets\":[[0,1],[1,1],[31,1],[32,1]"));
    }

    #[test]
    fn histogram_delta_is_the_epoch_sample_set() {
        let mut h = ObsHistogram::new();
        h.record(5);
        h.record(100);
        let baseline = h.clone();
        h.record(5);
        h.record(200);
        let d = h.delta_since(&baseline);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 205);
        assert!(
            d.max() >= 192 && d.max() <= 207,
            "bucket-bounded max: {}",
            d.max()
        );
    }
}
