//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde stub.
//!
//! No syn/quote are available offline, so the item declaration is parsed
//! directly from `proc_macro` token trees. Supported shapes cover everything
//! the workspace derives on: non-generic named structs, tuple structs, unit
//! structs, and enums with unit / tuple / struct variants. Serialization is
//! externally tagged, mirroring serde's default representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Skips outer attributes (`#[...]`, doc comments) and visibility markers.
fn skip_attrs_and_vis(it: &mut Tokens) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                it.next(); // the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next(); // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Consumes tokens until a top-level comma (tracking `<`/`>` nesting, which
/// proc_macro does not group), leaving the iterator after the comma.
fn skip_type(it: &mut Tokens) {
    let mut depth = 0i32;
    for t in it.by_ref() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let mut out = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => panic!("serde stub derive: unexpected token in fields: {t}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            t => panic!("serde stub derive: expected ':' after field {name}, got {t:?}"),
        }
        skip_type(&mut it);
        out.push(name);
    }
    out
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut pending = false;
    for t in ts {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                pending = false;
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    if pending {
        fields += 1;
    }
    fields
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut out = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => panic!("serde stub derive: unexpected token in enum: {t}"),
        };
        let kind = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant, then the trailing comma.
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == '=' {
                it.next();
                skip_type(&mut it);
                out.push(Variant { name, kind });
                continue;
            }
        }
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == ',' {
                it.next();
            }
        }
        out.push(Variant { name, kind });
    }
    out
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let kw = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde stub derive: expected struct/enum, got {t:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde stub derive: expected item name, got {t:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic type {name} is not supported");
        }
    }
    match kw.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            t => panic!("serde stub derive: unexpected struct body {t:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            t => panic!("serde stub derive: unexpected enum body {t:?}"),
        },
        other => panic!("serde stub derive: cannot derive for {other} items"),
    }
}

fn named_fields_object(fields: &[String], prefix: &str) -> String {
    let mut out = String::from("::serde::Value::Object(::std::vec![");
    for f in fields {
        let _ = write!(
            out,
            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::ser_value({prefix}{f})),"
        );
    }
    out.push_str("])");
    out
}

/// Produces a `Value` tree mirroring serde's default (externally tagged)
/// data model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut body = String::new();
    let name = match &item {
        Item::NamedStruct { name, fields } => {
            body = named_fields_object(fields, "&self.");
            name.clone()
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                body.push_str("::serde::Serialize::ser_value(&self.0)");
            } else {
                body.push_str("::serde::Value::Array(::std::vec![");
                for i in 0..*arity {
                    let _ = write!(body, "::serde::Serialize::ser_value(&self.{i}),");
                }
                body.push_str("])");
            }
            name.clone()
        }
        Item::UnitStruct { name } => {
            body.push_str("::serde::Value::Null");
            name.clone()
        }
        Item::Enum { name, variants } => {
            body.push_str("match self {");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            body,
                            "Self::{vn} => ::serde::Value::String(::std::string::String::from(\"{vn}\")),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            body,
                            "Self::{vn}(__f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::ser_value(__f0))]),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let _ = write!(body, "Self::{vn}({}) => ", binders.join(","));
                        body.push_str(
                            "::serde::Value::Object(::std::vec![(::std::string::String::from(\"",
                        );
                        body.push_str(vn);
                        body.push_str("\"), ::serde::Value::Array(::std::vec![");
                        for b in &binders {
                            let _ = write!(body, "::serde::Serialize::ser_value({b}),");
                        }
                        body.push_str("]))]),");
                    }
                    VariantKind::Struct(fields) => {
                        let _ = write!(body, "Self::{vn} {{ {} }} => ", fields.join(","));
                        let inner = named_fields_object(fields, "");
                        let _ = write!(
                            body,
                            "::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), {inner})]),"
                        );
                    }
                }
            }
            body.push('}');
            name.clone()
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn ser_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde stub derive: generated impl parses")
}

/// Emits the marker impl; the workspace never deserializes at runtime.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = match &item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name.clone(),
    };
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde stub derive: generated impl parses")
}
