//! Bench-side acceptance smoke for the model checker: the flagship
//! configurations must stay exhaustively verified and honestly so (no
//! channel-bound clipping, no fingerprint luck), keeping the repo's
//! "checked, not just tested" claim pinned alongside the rest of the
//! acceptance suite.

use upp_check::explore::explore;
use upp_check::model::ModelCfg;
use upp_check::props::{check_bounded_recovery, check_no_livelock};

#[test]
fn flagship_two_router_model_stays_verified() {
    let cfg = ModelCfg::flagship(2);
    let ex = explore(&cfg, true, 2_000_000).expect("explores");
    assert!(ex.stats.states > 1_000, "non-trivial: {}", ex.stats.states);
    assert_eq!(ex.stats.bound_hits, 0, "exhaustive, not clipped");
    assert_eq!(ex.stats.fingerprint_collisions, 0);
    assert!(ex.stats.deadlock_states > 0, "deadlock reachable");

    let proof = check_bounded_recovery(&ex).expect("P1 holds");
    assert!(
        proof.bound <= 32,
        "recovery bound regressed: {} transitions",
        proof.bound
    );
    check_no_livelock(&ex).expect("P2 holds");
}

#[test]
fn wider_ring_with_unit_queues_stays_verified() {
    // 3 routers keeps this affordable in debug builds; the CI check-smoke
    // job additionally exhausts the 4-router ring in release mode.
    let mut cfg = ModelCfg::flagship(3);
    cfg.queue_depth = 1;
    cfg.bound = 1;
    let ex = explore(&cfg, true, 2_000_000).expect("explores");
    assert!(ex.stats.deadlock_states > 0, "deadlock reachable");
    assert_eq!(ex.stats.bound_hits, 0);
    check_bounded_recovery(&ex).expect("P1 holds");
    check_no_livelock(&ex).expect("P2 holds");
}
