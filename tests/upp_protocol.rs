//! End-to-end exercises of UPP's protocol paths: full popups, mid-worm
//! (partial) popups, false-positive stops, the serialized-per-chiplet
//! variant, and extreme thresholds — all against genuinely deadlocking
//! traffic.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use upp_core::{Upp, UppConfig, UppStats, UppStatsHandle};
use upp_noc::config::NocConfig;
use upp_noc::ids::{NodeId, VnetId};
use upp_noc::network::Network;
use upp_noc::ni::ConsumePolicy;
use upp_noc::routing::ChipletRouting;
use upp_noc::sim::{RunOutcome, System};
use upp_noc::topology::ChipletSystemSpec;

fn build(cfg: UppConfig, vcs: usize, seed: u64) -> (System, UppStatsHandle) {
    let topo = ChipletSystemSpec::baseline().build(0).unwrap();
    let net = Network::new(
        NocConfig::default().with_vcs_per_vnet(vcs),
        topo,
        Arc::new(ChipletRouting::xy()),
        ConsumePolicy::Immediate { latency: 1 },
        seed,
    );
    let upp = Upp::new(cfg);
    let h = upp.stats_handle();
    (System::new(net, Box::new(upp)), h)
}

fn heavy_drive(sys: &mut System, seed: u64, cycles: u64) -> u64 {
    let cores: Vec<NodeId> = sys
        .net()
        .topo()
        .chiplets()
        .iter()
        .flat_map(|c| c.routers.iter().copied())
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sent = 0;
    for _ in 0..cycles {
        for &src in &cores {
            if rng.gen::<f64>() >= 0.3 {
                continue;
            }
            let dest = cores[rng.gen_range(0..cores.len())];
            if dest == src {
                continue;
            }
            let vnet = VnetId(rng.gen_range(0..3u8));
            let len = if vnet.0 == 2 { 5 } else { 1 };
            if sys.send(src, dest, vnet, len).is_some() {
                sent += 1;
            }
        }
        sys.step();
    }
    sent
}

fn recover_and_stats(cfg: UppConfig, vcs: usize, seed: u64) -> (u64, u64, UppStats, u64) {
    let (mut sys, h) = build(cfg, vcs, seed);
    let sent = heavy_drive(&mut sys, seed, 2_500);
    let out = sys.run_until_drained(400_000);
    assert!(
        matches!(out, RunOutcome::Drained { .. }),
        "seed {seed}: {out:?}"
    );
    let delivered = sys.net().stats().packets_ejected;
    let bypass = sys.net().stats().bypass_hops;
    let stats = *h.lock().unwrap();
    (sent, delivered, stats, bypass)
}

#[test]
fn full_and_partial_popups_both_occur_and_recover() {
    let mut saw_partial = false;
    let mut saw_full = false;
    for seed in 0..3u64 {
        let (sent, delivered, stats, bypass) = recover_and_stats(UppConfig::default(), 1, seed);
        assert_eq!(sent, delivered, "seed {seed}: conservation");
        assert!(
            stats.upward_packets > 0,
            "seed {seed}: heavy load must trigger detection"
        );
        assert!(
            bypass > 0,
            "seed {seed}: popup transmission must use the bypass path"
        );
        saw_partial |= stats.partial_popups > 0;
        saw_full |= stats.popups_completed > stats.partial_popups;
    }
    assert!(
        saw_full,
        "some popups must start at the interposer (Sec. V-B)"
    );
    assert!(saw_partial, "some popups must start mid-worm (Sec. V-B3)");
}

#[test]
fn false_positives_are_stopped_and_acks_dropped() {
    let mut stops = 0;
    let mut drops = 0;
    for seed in 0..3u64 {
        let (_, _, stats, _) = recover_and_stats(UppConfig::default(), 1, seed);
        stops += stats.stops_sent;
        drops += stats.acks_dropped;
        // Every ack is answered by a req; reservations never exceed reqs.
        assert!(stats.acks_sent <= stats.reqs_sent, "seed {seed}");
    }
    assert!(
        stops > 0,
        "congestion must produce some false positives (Sec. V-A)"
    );
    assert!(
        drops > 0,
        "stops must lead to dropped acks (protocol rule 3)"
    );
}

#[test]
fn serialized_per_chiplet_variant_also_recovers() {
    let cfg = UppConfig {
        serialize_per_chiplet: true,
        ..UppConfig::default()
    };
    let (sent, delivered, stats, _) = recover_and_stats(cfg, 1, 0);
    assert_eq!(sent, delivered);
    assert!(stats.popups_completed > 0);
}

#[test]
fn extreme_thresholds_still_recover() {
    for threshold in [1u64, 500] {
        let (sent, delivered, stats, _) =
            recover_and_stats(UppConfig::with_threshold(threshold), 1, 1);
        assert_eq!(sent, delivered, "threshold {threshold}");
        assert!(stats.upward_packets > 0, "threshold {threshold}");
    }
}

#[test]
fn four_vcs_reduce_detections_for_identical_traffic() {
    let (_, _, one, _) = recover_and_stats(UppConfig::default(), 1, 2);
    let (_, _, four, _) = recover_and_stats(UppConfig::default(), 4, 2);
    assert!(
        four.upward_packets < one.upward_packets,
        "Fig. 12's VC effect: {} (4 VCs) must be below {} (1 VC)",
        four.upward_packets,
        one.upward_packets
    );
}

#[test]
fn signal_buffers_stay_tiny() {
    // The paper adds two 32-bit buffers per chiplet router; our dedicated
    // queues must stay near-empty even through heavy recovery activity.
    let (mut sys, _) = build(UppConfig::default(), 1, 3);
    heavy_drive(&mut sys, 3, 2_500);
    let out = sys.run_until_drained(400_000);
    assert!(matches!(out, RunOutcome::Drained { .. }));
    let stats = sys.net().stats();
    assert!(
        stats.max_req_buffer_occupancy <= 3,
        "req/stop buffer high-water {} exceeds the serialization bound",
        stats.max_req_buffer_occupancy
    );
    assert!(
        stats.max_ack_buffer_occupancy <= 3,
        "ack buffer high-water {} exceeds the merge bound",
        stats.max_ack_buffer_occupancy
    );
}
