//! Vendored offline stand-in for `criterion`.
//!
//! A minimal timing harness with the same call shape as criterion 0.5:
//! `Criterion::bench_function`, `benchmark_group` + `sample_size` +
//! `finish`, `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a short fixed number of
//! timed iterations and prints mean wall-clock time — enough to compare two
//! configurations (e.g. tracing disabled vs. enabled) and to smoke-test
//! bench code under `cargo test` / `cargo bench` without the real crate.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Passed to the benchmark closure; measures the work inside
/// [`Bencher::iter`].
pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, iters: u32, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / f64::from(iters.max(1));
    println!(
        "bench {label:<40} {:>12.3} ms/iter ({iters} iters)",
        per_iter * 1e3
    );
}

/// The benchmark driver.
pub struct Criterion {
    iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        // Two timed iterations keep `cargo test` (which runs harness=false
        // bench targets) fast while still exercising every bench body.
        Criterion { iters: 2 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.to_string(), self.iters, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            iters: self.iters,
            _parent: self,
        }
    }
}

/// A group of related benchmarks (prefixing their labels).
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u32,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.iters, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_the_closure() {
        let mut c = Criterion::default();
        let mut count = 0u32;
        c.bench_function("counted", |b| b.iter(|| count += 1));
        assert!(count >= 2, "closure ran {count} times");
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function(format!("sub_{}", 1), |b| b.iter(|| black_box(3 + 4)));
        group.finish();
    }
}
