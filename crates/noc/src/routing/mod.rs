//! Routing: route planning and per-hop output-port computation.
//!
//! Chiplet-based routing is three-legged (Sec. V-D): a packet crossing the
//! vertical boundary first routes to an *exit boundary router*, descends,
//! crosses the interposer to an *entry interposer router*, ascends, and
//! finally routes to its destination. The intermediate targets are fixed at
//! injection time by a [`BoundarySelector`]; UPP's default is the static
//! nearest-boundary binding.

pub mod global_cdg;
pub mod table;
pub mod turns;
pub mod xy;

use crate::ids::{NodeId, Port};
use crate::packet::{PacketClass, RouteInfo};
use crate::topology::{Region, Topology};
use std::fmt;
use std::sync::Arc;

pub use global_cdg::{GlobalCdg, GlobalChannel};
pub use table::RouteTables;
pub use turns::{Channel, ExtendedCdg, TurnRestrictions};

/// Classifies a `(src, dest)` pair relative to the vertical boundary.
pub fn classify(topo: &Topology, src: NodeId, dest: NodeId) -> PacketClass {
    match (topo.region(src), topo.region(dest)) {
        (Region::Interposer, Region::Interposer) => PacketClass::Intra,
        (Region::Chiplet(a), Region::Chiplet(b)) if a == b => PacketClass::Intra,
        (Region::Chiplet(_), Region::Chiplet(_)) => PacketClass::InterChiplet,
        (Region::Chiplet(_), Region::Interposer) => PacketClass::ChipletToInterposer,
        (Region::Interposer, Region::Chiplet(_)) => PacketClass::InterposerToChiplet,
    }
}

/// Chooses the boundary routers a cross-boundary packet uses.
pub trait BoundarySelector: fmt::Debug + Send + Sync {
    /// The boundary router through which a packet injected at `src` leaves
    /// its source chiplet (only called when `src` is a chiplet router whose
    /// chiplet differs from `dest`'s region).
    fn exit_boundary(&self, topo: &Topology, src: NodeId, dest: NodeId) -> NodeId;

    /// The boundary router through which a packet enters `dest`'s chiplet
    /// (only called when `dest` is a chiplet router reached from outside).
    fn entry_boundary(&self, topo: &Topology, src: NodeId, dest: NodeId) -> NodeId;
}

/// Sec. V-D's static binding: every chiplet router is bound to its nearest
/// boundary router (ties pre-broken randomly at topology build time), both
/// for exiting and for entering traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticBindingSelector;

impl BoundarySelector for StaticBindingSelector {
    fn exit_boundary(&self, topo: &Topology, src: NodeId, _dest: NodeId) -> NodeId {
        topo.bound_boundary(src)
    }

    fn entry_boundary(&self, topo: &Topology, _src: NodeId, dest: NodeId) -> NodeId {
        topo.bound_boundary(dest)
    }
}

/// Computes routes for the whole system.
pub trait RouteComputer: fmt::Debug + Send + Sync {
    /// Plans a packet's route header at injection time.
    fn plan(&self, topo: &Topology, src: NodeId, dest: NodeId) -> RouteInfo;

    /// The output port taken at `node` by a head flit that arrived on
    /// `in_port` and carries header `route`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when the header is inconsistent with the
    /// topology (a planning bug), never on transient network state.
    fn route(&self, topo: &Topology, node: NodeId, in_port: Port, route: &RouteInfo) -> Port;
}

/// The standard three-leg chiplet routing (Sec. V-D).
///
/// Within each leg it uses XY on healthy meshes, or up*/down* tables when the
/// topology carries faults. The boundary selector decides the intermediate
/// targets; UPP and remote control use [`StaticBindingSelector`], composable
/// routing substitutes its own restricted selector.
///
/// # Examples
///
/// ```
/// use upp_noc::routing::{ChipletRouting, RouteComputer};
/// use upp_noc::topology::ChipletSystemSpec;
///
/// let topo = ChipletSystemSpec::baseline().build(0).expect("valid spec");
/// let routing = ChipletRouting::xy();
/// let src = topo.chiplets()[0].routers[0];
/// let dest = topo.chiplets()[3].routers[15];
/// let plan = routing.plan(&topo, src, dest);
/// assert!(plan.exit_boundary.is_some() && plan.entry_interposer.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct ChipletRouting {
    selector: Arc<dyn BoundarySelector>,
    tables: Option<Arc<RouteTables>>,
}

impl ChipletRouting {
    /// XY region routing with the static binding selector.
    pub fn xy() -> Self {
        Self {
            selector: Arc::new(StaticBindingSelector),
            tables: None,
        }
    }

    /// XY region routing with a custom boundary selector.
    pub fn with_selector(selector: Arc<dyn BoundarySelector>) -> Self {
        Self {
            selector,
            tables: None,
        }
    }

    /// Table-based (up*/down*) region routing for faulty topologies, with the
    /// static binding selector.
    pub fn with_tables(tables: Arc<RouteTables>) -> Self {
        Self {
            selector: Arc::new(StaticBindingSelector),
            tables: Some(tables),
        }
    }

    /// Table-based region routing with a custom selector.
    pub fn with_selector_and_tables(
        selector: Arc<dyn BoundarySelector>,
        tables: Arc<RouteTables>,
    ) -> Self {
        Self {
            selector,
            tables: Some(tables),
        }
    }

    fn region_step(&self, topo: &Topology, node: NodeId, in_port: Port, target: NodeId) -> Port {
        match &self.tables {
            Some(t) => t.next_port(node, in_port, target).unwrap_or_else(|| {
                panic!("no legal table route {node} (in {in_port}) -> {target}")
            }),
            None => xy::xy_step(topo, node, target),
        }
    }
}

impl RouteComputer for ChipletRouting {
    fn plan(&self, topo: &Topology, src: NodeId, dest: NodeId) -> RouteInfo {
        let class = classify(topo, src, dest);
        let exit_boundary = if class.descends() {
            Some(self.selector.exit_boundary(topo, src, dest))
        } else {
            None
        };
        let entry_interposer = if class.ascends() {
            let b = self.selector.entry_boundary(topo, src, dest);
            Some(topo.below(b).expect("boundary routers own a Down link"))
        } else {
            None
        };
        RouteInfo {
            dest,
            class,
            exit_boundary,
            entry_interposer,
        }
    }

    fn route(&self, topo: &Topology, node: NodeId, in_port: Port, route: &RouteInfo) -> Port {
        if node == route.dest {
            return Port::Local;
        }
        match topo.region(node) {
            Region::Chiplet(c) => {
                let dest_here = topo.chiplet_of(route.dest) == Some(c);
                let target = if dest_here {
                    route.dest
                } else {
                    route
                        .exit_boundary
                        .expect("descending packets carry an exit boundary")
                };
                if !dest_here && node == target {
                    Port::Down
                } else {
                    self.region_step(topo, node, in_port, target)
                }
            }
            Region::Interposer => {
                if topo.is_interposer(route.dest) {
                    self.region_step(topo, node, in_port, route.dest)
                } else {
                    let target = route
                        .entry_interposer
                        .expect("ascending packets carry an entry interposer router");
                    if node == target {
                        Port::Up
                    } else {
                        self.region_step(topo, node, in_port, target)
                    }
                }
            }
        }
    }
}

/// Walks a full route from `src` to `dest`, returning the `(node, out_port)`
/// hops taken. Useful for tests and analyses; the simulator itself routes
/// hop by hop.
///
/// # Panics
///
/// Panics if the walk exceeds `4 * num_nodes` hops (a routing livelock).
pub fn trace_route(
    topo: &Topology,
    routing: &dyn RouteComputer,
    src: NodeId,
    dest: NodeId,
) -> Vec<(NodeId, Port)> {
    let plan = routing.plan(topo, src, dest);
    let mut hops = Vec::new();
    let mut cur = src;
    let mut in_port = Port::Local;
    while cur != dest {
        let p = routing.route(topo, cur, in_port, &plan);
        assert_ne!(p, Port::Local, "route reached Local before the destination");
        hops.push((cur, p));
        cur = topo
            .neighbor(cur, p)
            .unwrap_or_else(|| panic!("route uses missing link {cur}:{p}"));
        in_port = p.opposite();
        assert!(
            hops.len() <= 4 * topo.num_nodes(),
            "routing livelock {src}->{dest}"
        );
    }
    hops.push((dest, Port::Local));
    hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::chiplet::inject_random_faults;
    use crate::topology::ChipletSystemSpec;

    fn topo() -> Topology {
        ChipletSystemSpec::baseline().build(0).unwrap()
    }

    #[test]
    fn classify_all_cases() {
        let t = topo();
        let c0 = t.chiplets()[0].routers[0];
        let c0b = t.chiplets()[0].routers[5];
        let c1 = t.chiplets()[1].routers[0];
        let i0 = t.interposer_routers()[0];
        let i1 = t.interposer_routers()[5];
        assert_eq!(classify(&t, c0, c0b), PacketClass::Intra);
        assert_eq!(classify(&t, i0, i1), PacketClass::Intra);
        assert_eq!(classify(&t, c0, c1), PacketClass::InterChiplet);
        assert_eq!(classify(&t, c0, i0), PacketClass::ChipletToInterposer);
        assert_eq!(classify(&t, i0, c0), PacketClass::InterposerToChiplet);
    }

    #[test]
    fn inter_chiplet_routes_traverse_three_legs() {
        let t = topo();
        let r = ChipletRouting::xy();
        let src = t.chiplets()[0].routers[0];
        let dest = t.chiplets()[3].routers[10];
        let hops = trace_route(&t, &r, src, dest);
        let downs = hops.iter().filter(|&&(_, p)| p == Port::Down).count();
        let ups = hops.iter().filter(|&&(_, p)| p == Port::Up).count();
        assert_eq!(downs, 1, "exactly one descent");
        assert_eq!(ups, 1, "exactly one ascent");
        assert_eq!(hops.last().unwrap().0, dest);
    }

    #[test]
    fn all_pairs_route_in_baseline() {
        let t = topo();
        let r = ChipletRouting::xy();
        let nodes: Vec<NodeId> = t.nodes().iter().map(|n| n.id).collect();
        for &s in &nodes {
            for &d in &nodes {
                if s == d {
                    continue;
                }
                let hops = trace_route(&t, &r, s, d);
                assert!(!hops.is_empty());
            }
        }
    }

    #[test]
    fn entry_uses_destination_binding() {
        // Paper Sec. V-D: flits destined to one chiplet router always enter
        // the chiplet through the same boundary router.
        let t = topo();
        let r = ChipletRouting::xy();
        let dest = t.chiplets()[2].routers[7];
        let expected_entry = t.below(t.bound_boundary(dest)).unwrap();
        for c in t.chiplets() {
            if c.id == t.chiplet_of(dest).unwrap() {
                continue;
            }
            for &src in c.routers.iter().take(4) {
                let plan = r.plan(&t, src, dest);
                assert_eq!(plan.entry_interposer, Some(expected_entry));
            }
        }
        for &src in t.interposer_routers().iter().take(4) {
            let plan = r.plan(&t, src, dest);
            assert_eq!(plan.entry_interposer, Some(expected_entry));
        }
    }

    #[test]
    fn faulty_systems_route_with_tables() {
        let mut t = topo();
        inject_random_faults(&mut t, 10, 77).unwrap();
        let tables = Arc::new(RouteTables::build(&t));
        let r = ChipletRouting::with_tables(tables);
        let nodes: Vec<NodeId> = t.nodes().iter().map(|n| n.id).collect();
        for &s in nodes.iter().step_by(7) {
            for &d in nodes.iter().step_by(5) {
                if s == d {
                    continue;
                }
                let hops = trace_route(&t, &r, s, d);
                for &(n, p) in &hops {
                    if p != Port::Local {
                        assert!(!t.is_link_faulty(n, p));
                    }
                }
            }
        }
    }

    #[test]
    fn intra_routes_stay_in_region() {
        let t = topo();
        let r = ChipletRouting::xy();
        let c = &t.chiplets()[1];
        let hops = trace_route(&t, &r, c.routers[0], c.routers[15]);
        for &(n, _) in &hops {
            assert_eq!(t.chiplet_of(n), Some(c.id));
        }
    }
}
