//! Protocol-state telemetry goldens: a faulty `grid:3x3` UPP run with
//! `--obs` pins the full `--json` payload (including the embedded
//! telemetry summary) and the `--obs-every` epoch stream byte-for-byte,
//! and the same run under the `UPP_ALWAYS_TICK=1` reference kernel must
//! reproduce both files exactly — the active-set scheduler may not be
//! visible through the telemetry.
//!
//! To regenerate the goldens after an *intentional* behaviour change:
//!
//! ```text
//! UPP_UPDATE_GOLDENS=1 cargo test -p upp-bench --test obs_golden
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

fn goldens_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("upp-obs-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = goldens_dir().join(name);
    if std::env::var("UPP_UPDATE_GOLDENS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(goldens_dir()).expect("goldens dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPP_UPDATE_GOLDENS=1 to record",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "{name}: output differs from committed golden.\n\
         If the change is intentional, refresh with UPP_UPDATE_GOLDENS=1.\n\
         --- golden ---\n{expected}\n--- actual ---\n{actual}"
    );
}

/// Faulty-link grid run: rerouting congests the interposer paths enough
/// that UPP pops packets, so the telemetry has non-trivial circuit-table,
/// watchdog and recovery-histogram content worth pinning.
const RUN: &[&str] = &[
    "--system",
    "grid:3x3",
    "--scheme",
    "upp",
    "--pattern",
    "uniform_random",
    "--rate",
    "0.06",
    "--cycles",
    "3000",
    "--faults",
    "2",
    "--seed",
    "9",
    "--obs",
    "--obs-every",
    "500",
];

/// Runs `simulate` with the telemetry flags; returns the `--json` payload
/// and the `--obs-out` epoch stream. `always_tick` switches to the
/// reference kernel.
fn run_obs(tag: &str, always_tick: bool) -> (String, String) {
    let json = tmp_path(&format!("{tag}.json"));
    let epochs = tmp_path(&format!("{tag}.obs.jsonl"));
    let _ = std::fs::remove_file(&json);
    let _ = std::fs::remove_file(&epochs);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_simulate"));
    cmd.args(RUN)
        .arg("--obs-out")
        .arg(&epochs)
        .arg("--json")
        .arg(&json);
    if always_tick {
        cmd.env("UPP_ALWAYS_TICK", "1");
    } else {
        cmd.env_remove("UPP_ALWAYS_TICK");
    }
    let status = cmd.status().expect("simulate runs");
    assert!(status.success(), "simulate {RUN:?} failed: {status}");
    (
        std::fs::read_to_string(&json).expect("simulate wrote the json payload"),
        std::fs::read_to_string(&epochs).expect("simulate wrote the epoch stream"),
    )
}

#[test]
fn obs_output_matches_golden_and_is_scheduler_invariant() {
    let (json, epochs) = run_obs("sched", false);

    // Sanity before pinning: the run produced real protocol activity.
    assert!(json.contains("\"obs\""), "payload embeds the summary");
    assert!(
        json.contains("\"upp.watchdog.expired_cycles\""),
        "watchdog counters present"
    );
    assert!(
        epochs.starts_with("{\"upp_obs_epochs\":1"),
        "epoch stream leads with its schema header"
    );

    check_golden("grid_obs_run.json", &json);
    check_golden("grid_obs_epochs.jsonl", &epochs);

    // The always-tick reference kernel must reproduce both files exactly;
    // compared directly (never refreshed), like scheduler_golden.rs.
    let (json_ref, epochs_ref) = run_obs("tick", true);
    assert!(
        json == json_ref,
        "UPP_ALWAYS_TICK=1 diverged from the active-set kernel on the \
         --json payload:\n--- active-set ---\n{json}\n--- always-tick ---\n{json_ref}"
    );
    assert!(
        epochs == epochs_ref,
        "UPP_ALWAYS_TICK=1 diverged from the active-set kernel on the \
         epoch stream:\n--- active-set ---\n{epochs}\n--- always-tick ---\n{epochs_ref}"
    );
}
