//! Deterministic case generation and the test-case error channel.

/// Per-test deterministic RNG (splitmix64 over an FNV-1a hash of the test
/// name, so each property test sees its own stream).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the RNG from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` and should be retried.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

/// Runner configuration; only `cases` is meaningful in the stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}
