//! # upp-workloads — workloads, runner and models for the UPP reproduction
//!
//! * [`synthetic`] — the four synthetic traffic patterns of Fig. 7 with the
//!   Table II control/data packet mix;
//! * [`profiles`] + [`coherence`] — the MESI-style directory-coherence
//!   engine and the 18 PARSEC/SPLASH-2 benchmark profiles substituting for
//!   gem5 full-system runs (Figs. 8/12/15);
//! * [`runner`] — system construction for every scheme, latency sweeps and
//!   saturation extraction;
//! * [`energy`] — the DSENT-substitute energy model (Fig. 15);
//! * [`area`] — the Design-Compiler-substitute area model (Fig. 14).
//!
//! # Example: one sweep point
//!
//! ```
//! use upp_workloads::runner::{run_point, SchemeKind, SweepWindows};
//! use upp_workloads::synthetic::Pattern;
//! use upp_core::UppConfig;
//! use upp_noc::config::NocConfig;
//! use upp_noc::topology::ChipletSystemSpec;
//!
//! let p = run_point(
//!     &ChipletSystemSpec::baseline(),
//!     &NocConfig::default(),
//!     &SchemeKind::Upp(UppConfig::default()),
//!     0,
//!     Pattern::UniformRandom,
//!     0.02,
//!     SweepWindows::quick(),
//!     1,
//! );
//! assert!(p.packets_ejected > 0 && !p.deadlocked);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod area;
pub mod coherence;
pub mod energy;
pub mod profiles;
pub mod runner;
pub mod synthetic;

pub use area::{AreaModel, AreaOverhead};
pub use coherence::{run_benchmark, CoherenceEngine, RuntimeResult};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use profiles::{all_benchmarks, benchmark, BenchmarkProfile};
pub use runner::{run_point, saturation_throughput, sweep, SchemeKind, SweepPoint, SweepWindows};
pub use synthetic::{Pattern, SyntheticTraffic};
