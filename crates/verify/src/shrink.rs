//! Delta-debugging reduction of failing scenarios.
//!
//! Given a failing [`Scenario`] and a predicate that re-runs it, the
//! shrinker reduces first the dynamic fault schedule and then the offered
//! traffic with a ddmin-style search, keeping the failure alive at every
//! step. Disruptions shrink as atomic *units* — a `FailLink` travels with
//! its `HealLink`, a pause with its resume — so intermediate candidates
//! never leave a link dead or an endpoint throttled forever, which would
//! manufacture failures the original scenario did not contain.

use upp_noc::fault::{FaultAction, FaultEvent};

use crate::scenario::Scenario;

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkReport {
    /// The reduced scenario (still failing under the predicate).
    pub scenario: Scenario,
    /// Predicate evaluations spent.
    pub evaluations: usize,
    /// Traffic entries before and after.
    pub traffic: (usize, usize),
    /// Fault events before and after.
    pub faults: (usize, usize),
}

/// Groups a fault schedule into atomic disruption units: each `Fail`/`Heal`
/// and `Pause`/`Resume` pair forms one unit (unpaired events stand alone).
fn fault_units(events: &[FaultEvent]) -> Vec<Vec<FaultEvent>> {
    let mut used = vec![false; events.len()];
    let mut units = Vec::new();
    for i in 0..events.len() {
        if used[i] {
            continue;
        }
        used[i] = true;
        let mut unit = vec![events[i]];
        let partner = |a: FaultAction, b: FaultAction| -> bool {
            use FaultAction::*;
            matches!(
                (a, b),
                (FailLink { node: n1, port: p1 }, HealLink { node: n2, port: p2 })
                    if n1 == n2 && p1 == p2
            ) || matches!(
                (a, b),
                (PauseInjection { node: n1 }, ResumeInjection { node: n2 }) if n1 == n2
            ) || matches!(
                (a, b),
                (PauseConsumption { node: n1 }, ResumeConsumption { node: n2 }) if n1 == n2
            )
        };
        if let Some(j) =
            (i + 1..events.len()).find(|&j| !used[j] && partner(events[i].action, events[j].action))
        {
            used[j] = true;
            unit.push(events[j]);
        }
        units.push(unit);
    }
    units
}

/// ddmin over a list: repeatedly tries dropping chunks (complement testing),
/// doubling granularity when nothing can be dropped. `test` returns true
/// when the candidate still fails. Spends at most `*budget` evaluations.
fn ddmin<T: Clone>(
    mut cur: Vec<T>,
    mut test: impl FnMut(&[T]) -> bool,
    budget: &mut usize,
) -> Vec<T> {
    let mut n = 2usize;
    while cur.len() >= 2 && *budget > 0 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < cur.len() && *budget > 0 {
            let end = (start + chunk).min(cur.len());
            let mut cand = Vec::with_capacity(cur.len() - (end - start));
            cand.extend_from_slice(&cur[..start]);
            cand.extend_from_slice(&cur[end..]);
            *budget -= 1;
            if !cand.is_empty() && test(&cand) {
                cur = cand;
                n = 2.max(n.saturating_sub(1));
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk <= 1 {
                break;
            }
            n = (n * 2).min(cur.len());
        }
    }
    cur
}

/// Shrinks a failing scenario while `still_fails` keeps returning true,
/// spending at most `max_evaluations` predicate runs.
///
/// The caller's predicate should re-run the candidate through the harness
/// and report whether the *same class* of failure is still present.
pub fn shrink(
    original: &Scenario,
    mut still_fails: impl FnMut(&Scenario) -> bool,
    max_evaluations: usize,
) -> ShrinkReport {
    let mut budget = max_evaluations;
    let mut best = original.clone();

    // Phase 1: drop whole disruption units.
    let units = fault_units(&best.faults);
    let kept_units = ddmin(
        units,
        |us| {
            let mut cand = best.clone();
            cand.faults = us.iter().flatten().copied().collect();
            cand.faults.sort_by_key(|e| e.at);
            still_fails(&cand)
        },
        &mut budget,
    );
    best.faults = kept_units.iter().flatten().copied().collect();
    best.faults.sort_by_key(|e| e.at);
    // An empty-fault candidate is never proposed by complement testing when
    // only one unit remains, so probe it explicitly.
    if !best.faults.is_empty() && budget > 0 {
        let mut cand = best.clone();
        cand.faults.clear();
        budget -= 1;
        if still_fails(&cand) {
            best.faults.clear();
        }
    }

    // Phase 2: drop traffic entries.
    let kept_traffic = ddmin(
        best.traffic.clone(),
        |tr| {
            let mut cand = best.clone();
            cand.traffic = tr.to_vec();
            still_fails(&cand)
        },
        &mut budget,
    );
    best.traffic = kept_traffic;

    ShrinkReport {
        evaluations: max_evaluations - budget,
        traffic: (original.traffic.len(), best.traffic.len()),
        faults: (original.faults.len(), best.faults.len()),
        scenario: best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upp_noc::ids::{NodeId, Port};

    #[test]
    fn units_pair_fail_with_heal() {
        let node = NodeId(3);
        let port = Port::East;
        let events = vec![
            FaultEvent {
                at: 10,
                action: FaultAction::FailLink { node, port },
            },
            FaultEvent {
                at: 15,
                action: FaultAction::PauseInjection { node },
            },
            FaultEvent {
                at: 20,
                action: FaultAction::HealLink { node, port },
            },
            FaultEvent {
                at: 25,
                action: FaultAction::ResumeInjection { node },
            },
        ];
        let units = fault_units(&events);
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].len(), 2);
        assert_eq!(units[1].len(), 2);
    }

    #[test]
    fn ddmin_finds_a_single_culprit() {
        let items: Vec<u32> = (0..100).collect();
        let mut budget = 200;
        let out = ddmin(items, |xs| xs.contains(&37), &mut budget);
        assert_eq!(out, vec![37]);
    }

    #[test]
    fn ddmin_keeps_interacting_pair() {
        let items: Vec<u32> = (0..64).collect();
        let mut budget = 300;
        let out = ddmin(items, |xs| xs.contains(&3) && xs.contains(&59), &mut budget);
        assert!(out.contains(&3) && out.contains(&59));
        assert!(
            out.len() <= 4,
            "pair should shrink close to minimal: {out:?}"
        );
    }
}
