//! Packets, flits, route headers and the interned packet-descriptor arena.

use crate::ids::{Cycle, NodeId, PacketId, VnetId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The class of a packet with respect to the chiplet/interposer boundary
/// (Sec. V-D of the paper distinguishes these three transmission cases; we
/// split the "crosses both ways" case out explicitly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketClass {
    /// Source and destination in the same chiplet, or both on the interposer.
    Intra,
    /// From a chiplet router down to an interposer node.
    ChipletToInterposer,
    /// From an interposer node up into a chiplet.
    InterposerToChiplet,
    /// From one chiplet through the interposer into another chiplet.
    InterChiplet,
}

impl PacketClass {
    /// True if the packet's route ever ascends a vertical link (and can
    /// therefore be the paper's *upward packet*).
    #[inline]
    pub fn ascends(self) -> bool {
        matches!(
            self,
            PacketClass::InterposerToChiplet | PacketClass::InterChiplet
        )
    }

    /// True if the packet's route ever descends a vertical link.
    #[inline]
    pub fn descends(self) -> bool {
        matches!(
            self,
            PacketClass::ChipletToInterposer | PacketClass::InterChiplet
        )
    }
}

impl fmt::Display for PacketClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PacketClass::Intra => "intra",
            PacketClass::ChipletToInterposer => "c2i",
            PacketClass::InterposerToChiplet => "i2c",
            PacketClass::InterChiplet => "c2c",
        };
        f.write_str(s)
    }
}

/// The route header carried by a packet's head flit.
///
/// Routing in chiplet-based systems is three-legged (Sec. V-D): source
/// chiplet → exit boundary router → (down) → interposer → entry interposer
/// router → (up) → destination chiplet router. The intermediate targets are
/// chosen once, at injection time, by a [`crate::routing::RouteComputer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RouteInfo {
    /// Final destination node.
    pub dest: NodeId,
    /// Packet class relative to the vertical boundary.
    pub class: PacketClass,
    /// The chiplet boundary router through which the packet leaves its source
    /// chiplet (descending classes only).
    pub exit_boundary: Option<NodeId>,
    /// The interposer router whose `Up` port leads into the destination
    /// chiplet (ascending classes only).
    pub entry_interposer: Option<NodeId>,
}

impl RouteInfo {
    /// A purely local route to `dest`.
    pub fn intra(dest: NodeId) -> Self {
        Self {
            dest,
            class: PacketClass::Intra,
            exit_boundary: None,
            entry_interposer: None,
        }
    }
}

/// Kind of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit: carries the route header.
    Head,
    /// Middle flit.
    Body,
    /// Last flit: releases the VCs it traversed.
    Tail,
    /// Single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// True for `Head` and `HeadTail`.
    #[inline]
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// True for `Tail` and `HeadTail`.
    #[inline]
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// Handle of an interned [`PacketDesc`] in the [`PacketArena`].
///
/// Handles are internal to one running network: they are recycled when the
/// packet fully ejects, and they never appear in any serialized output
/// (traces, stats and reports all speak [`PacketId`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PacketRef(pub u32);

impl PacketRef {
    /// The slab index of this handle.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PacketRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// The per-packet metadata interned once per in-flight packet: identity, the
/// route header of the head flit, and injection bookkeeping. Hardware keeps
/// this on the head flit only; the simulator keeps it in the arena so wire
/// flits stay a compact POD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketDesc {
    /// Globally-unique packet id (what every serialized surface reports).
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Virtual network.
    pub vnet: VnetId,
    /// Total packet length in flits (virtual cut-through allocates whole
    /// packets at once).
    pub pkt_len: u16,
    /// Route header.
    pub route: RouteInfo,
    /// Cycle the packet was created (enqueued at the source NI); the
    /// destination NI reconstructs the delivered [`Packet`] from this.
    pub created_at: Cycle,
}

/// Slab of in-flight [`PacketDesc`]s with free-list recycling.
///
/// One descriptor is allocated per packet at `try_send` time and freed when
/// the tail flit is accepted by the destination NI — both always on the
/// serial path, so handle allocation order (and therefore the whole arena
/// state) is identical between the serial and sharded kernels. The free
/// list is LIFO, which keeps recycling deterministic and cache-warm.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<PacketDesc>,
    /// Liveness bitmap, used by debug assertions and occupancy accounting.
    live: Vec<bool>,
    free: Vec<u32>,
    live_count: usize,
    high_water: usize,
    total_allocs: u64,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-reserves capacity for `n` concurrently-live descriptors so
    /// steady-state operation below that bound never reallocates.
    pub fn reserve(&mut self, n: usize) {
        if self.slots.capacity() < n {
            self.slots.reserve(n - self.slots.len());
            self.live.reserve(n - self.live.len());
        }
        if self.free.capacity() < n {
            self.free.reserve(n - self.free.len());
        }
    }

    /// Interns a descriptor, returning its handle.
    pub fn alloc(&mut self, desc: PacketDesc) -> PacketRef {
        self.total_allocs += 1;
        self.live_count += 1;
        self.high_water = self.high_water.max(self.live_count);
        if let Some(ix) = self.free.pop() {
            debug_assert!(!self.live[ix as usize], "free-list entry still live");
            self.slots[ix as usize] = desc;
            self.live[ix as usize] = true;
            PacketRef(ix)
        } else {
            let ix = u32::try_from(self.slots.len()).expect("more than 2^32 live packets");
            self.slots.push(desc);
            self.live.push(true);
            PacketRef(ix)
        }
    }

    /// Releases a descriptor; its handle may be recycled by a later
    /// [`PacketArena::alloc`].
    pub fn free(&mut self, h: PacketRef) {
        debug_assert!(self.live[h.index()], "double free of {h}");
        self.live[h.index()] = false;
        self.live_count -= 1;
        self.free.push(h.0);
    }

    /// The descriptor behind `h`.
    #[inline]
    pub fn get(&self, h: PacketRef) -> &PacketDesc {
        debug_assert!(self.live[h.index()], "read of freed descriptor {h}");
        &self.slots[h.index()]
    }

    /// The descriptor of a flit's packet (protocol-state reads that are
    /// legitimate on any flit: packet identity, VNet, circuit keys).
    #[inline]
    pub fn desc(&self, flit: &Flit) -> &PacketDesc {
        self.get(flit.desc)
    }

    /// The descriptor of a *head* flit, for route-header reads on the
    /// normal datapath (route computation, VCT whole-packet allocation).
    ///
    /// Backs the claim in the [`Flit`] doc comment: body flits never read
    /// the route header. Debug builds assert it.
    #[inline]
    pub fn head_desc(&self, flit: &Flit) -> &PacketDesc {
        debug_assert!(
            flit.kind.is_head(),
            "body flit {} read the route header",
            flit.seq
        );
        self.get(flit.desc)
    }

    /// Descriptors currently live.
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Peak number of concurrently-live descriptors.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total descriptors ever interned (recycled handles count each time).
    pub fn total_allocs(&self) -> u64 {
        self.total_allocs
    }

    /// Slab length (peak footprint in slots; the slab never shrinks).
    pub fn slots_len(&self) -> usize {
        self.slots.len()
    }

    /// Exact heap bytes of the slab state at its current length (capacity
    /// headroom from [`PacketArena::reserve`] is deliberately excluded so
    /// the number is a function of the workload, not of tuning).
    pub fn mem_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<PacketDesc>()
            + self.live.len()
            + self.free.len() * std::mem::size_of::<u32>()
    }
}

/// A flow-control unit travelling through the network.
///
/// A flit is a compact POD: a descriptor handle, its sequence position and
/// the two per-flit popup bits. The route header and packet metadata live
/// in the [`PacketArena`] (as in hardware, where only the head flit carries
/// them); body flits never read the route header —
/// [`PacketArena::head_desc`] asserts it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Arena handle of the owning packet's descriptor.
    pub desc: PacketRef,
    /// Sequence number within the packet (head is 0).
    pub seq: u16,
    /// Position of this flit in the packet.
    pub kind: FlitKind,
    /// Set while the flit travels as a popped-up *upward flit*: it bypasses
    /// VC buffers and crosses routers in a single switch-traversal stage
    /// (Sec. V-C).
    pub upward: bool,
    /// Set on flits of a packet currently being recovered: they receive top
    /// switch-allocation priority so the worm drains (wormhole support,
    /// Sec. V-B3).
    pub popup_priority: bool,
}

impl Flit {
    /// Builds the `seq`-th flit (of `len`) of the packet behind `desc`.
    pub fn new(desc: PacketRef, seq: u16, len: u16) -> Self {
        debug_assert!(len > 0 && seq < len);
        let kind = match (seq, len) {
            (0, 1) => FlitKind::HeadTail,
            (0, _) => FlitKind::Head,
            (s, l) if s + 1 == l => FlitKind::Tail,
            _ => FlitKind::Body,
        };
        Self {
            desc,
            seq,
            kind,
            upward: false,
            popup_priority: false,
        }
    }
}

/// A whole packet, as seen by NIs and traffic generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Globally-unique id.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Virtual network (message class).
    pub vnet: VnetId,
    /// Length in flits.
    pub len_flits: u16,
    /// Cycle the packet was created (enqueued at the source NI).
    pub created_at: Cycle,
}

impl Packet {
    /// Constructs a packet description.
    pub fn new(
        id: PacketId,
        src: NodeId,
        dest: NodeId,
        vnet: VnetId,
        len_flits: u16,
        created_at: Cycle,
    ) -> Self {
        debug_assert!(len_flits > 0);
        Self {
            id,
            src,
            dest,
            vnet,
            len_flits,
            created_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(arena: &mut PacketArena, id: u64, len: u16) -> PacketRef {
        arena.alloc(PacketDesc {
            id: PacketId(id),
            src: NodeId(0),
            vnet: VnetId(0),
            pkt_len: len,
            route: RouteInfo::intra(NodeId(5)),
            created_at: 0,
        })
    }

    #[test]
    fn flit_kinds_by_position() {
        let mut arena = PacketArena::new();
        let d = desc(&mut arena, 1, 5);
        let single = Flit::new(d, 0, 1);
        assert_eq!(single.kind, FlitKind::HeadTail);
        assert!(single.kind.is_head() && single.kind.is_tail());

        let head = Flit::new(d, 0, 5);
        let body = Flit::new(d, 2, 5);
        let tail = Flit::new(d, 4, 5);
        assert_eq!(head.kind, FlitKind::Head);
        assert_eq!(body.kind, FlitKind::Body);
        assert_eq!(tail.kind, FlitKind::Tail);
        assert!(!body.kind.is_head() && !body.kind.is_tail());
    }

    #[test]
    fn flit_is_a_compact_pod() {
        // The data-oriented layout exists to keep wire flits tiny; pin the
        // budget so a metadata field cannot silently creep back in.
        assert!(
            std::mem::size_of::<Flit>() <= 16,
            "Flit grew to {} bytes",
            std::mem::size_of::<Flit>()
        );
    }

    #[test]
    fn arena_recycles_handles_lifo() {
        let mut arena = PacketArena::new();
        let a = desc(&mut arena, 1, 1);
        let b = desc(&mut arena, 2, 1);
        assert_ne!(a, b);
        assert_eq!(arena.live_count(), 2);
        assert_eq!(arena.high_water(), 2);
        arena.free(a);
        assert_eq!(arena.live_count(), 1);
        let c = desc(&mut arena, 3, 1);
        assert_eq!(c, a, "LIFO free list recycles the last-freed handle");
        assert_eq!(arena.get(c).id, PacketId(3));
        assert_eq!(arena.high_water(), 2, "recycling does not raise the peak");
        assert_eq!(arena.total_allocs(), 3);
        assert_eq!(arena.slots_len(), 2);
        assert!(arena.mem_bytes() > 0);
    }

    /// The misuse guard is a `debug_assert`, so the test only exists in
    /// debug builds — release builds compile the check away entirely.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "read the route header")]
    fn body_flits_must_not_read_the_route_header() {
        let mut arena = PacketArena::new();
        let d = desc(&mut arena, 1, 5);
        let body = Flit::new(d, 2, 5);
        let _ = arena.head_desc(&body);
    }

    #[test]
    fn class_ascent_descent() {
        assert!(!PacketClass::Intra.ascends());
        assert!(!PacketClass::Intra.descends());
        assert!(PacketClass::InterChiplet.ascends() && PacketClass::InterChiplet.descends());
        assert!(PacketClass::InterposerToChiplet.ascends());
        assert!(!PacketClass::InterposerToChiplet.descends());
        assert!(PacketClass::ChipletToInterposer.descends());
        assert!(!PacketClass::ChipletToInterposer.ascends());
    }

    #[test]
    fn intra_route_has_no_intermediates() {
        let r = RouteInfo::intra(NodeId(3));
        assert_eq!(r.dest, NodeId(3));
        assert!(r.exit_boundary.is_none() && r.entry_interposer.is_none());
    }
}
