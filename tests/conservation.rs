//! Cross-crate conservation invariants, property-tested over random traffic:
//! whatever the scheme, every accepted packet is eventually delivered exactly
//! once, no flits are lost or duplicated, and UPP leaves no dangling protocol
//! state (reservations, frozen VCs) once the network drains.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use upp_baselines::composable::Composable;
use upp_baselines::remote::{RemoteControl, RemoteControlConfig};
use upp_core::{Upp, UppConfig, UppStatsHandle};
use upp_noc::config::NocConfig;
use upp_noc::ids::{NodeId, VnetId};
use upp_noc::network::Network;
use upp_noc::ni::ConsumePolicy;
use upp_noc::routing::ChipletRouting;
use upp_noc::sim::{RunOutcome, System};
use upp_noc::topology::ChipletSystemSpec;

#[derive(Debug, Clone, Copy)]
enum Kind {
    Upp,
    Composable,
    Remote,
}

fn build(kind: Kind, vcs: usize, seed: u64) -> (System, Option<UppStatsHandle>) {
    let topo = ChipletSystemSpec::baseline().build(0).unwrap();
    let cfg = NocConfig::default().with_vcs_per_vnet(vcs);
    let consume = ConsumePolicy::Immediate { latency: 1 };
    match kind {
        Kind::Upp => {
            let net = Network::new(cfg, topo, Arc::new(ChipletRouting::xy()), consume, seed);
            let upp = Upp::new(UppConfig::default());
            let h = upp.stats_handle();
            (System::new(net, Box::new(upp)), Some(h))
        }
        Kind::Composable => {
            let (scheme, routing) = Composable::build(&topo).unwrap();
            let net = Network::new(cfg, topo, Arc::new(routing), consume, seed);
            (System::new(net, Box::new(scheme)), None)
        }
        Kind::Remote => {
            let net = Network::new(cfg, topo, Arc::new(ChipletRouting::xy()), consume, seed);
            (
                System::new(
                    net,
                    Box::new(RemoteControl::new(RemoteControlConfig::default())),
                ),
                None,
            )
        }
    }
}

fn drive_random(sys: &mut System, seed: u64, cycles: u64, rate: f64) -> (u64, u64) {
    let cores: Vec<NodeId> = sys
        .net()
        .topo()
        .chiplets()
        .iter()
        .flat_map(|c| c.routers.iter().copied())
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let (mut packets, mut flits) = (0u64, 0u64);
    for _ in 0..cycles {
        for &src in &cores {
            if rng.gen::<f64>() >= rate {
                continue;
            }
            let dest = cores[rng.gen_range(0..cores.len())];
            if dest == src {
                continue;
            }
            let vnet = VnetId(rng.gen_range(0..3u8));
            let len = if vnet.0 == 2 { 5 } else { 1 };
            if sys.send(src, dest, vnet, len).is_some() {
                packets += 1;
                flits += u64::from(len);
            }
        }
        sys.step();
    }
    (packets, flits)
}

fn check_conservation(kind: Kind, vcs: usize, seed: u64, rate: f64) {
    let (mut sys, upp_stats) = build(kind, vcs, seed);
    let (packets, flits) = drive_random(&mut sys, seed, 1_200, rate);
    let out = sys.run_until_drained(400_000);
    assert!(
        matches!(out, RunOutcome::Drained { .. }),
        "{kind:?}/{vcs}VC/seed{seed}: {out:?}"
    );
    let stats = sys.net().stats();
    assert_eq!(stats.packets_ejected, packets, "packet conservation");
    assert_eq!(stats.flits_ejected, flits, "flit conservation");
    assert_eq!(
        stats.packets_injected, packets,
        "every accepted packet entered the network"
    );

    // No dangling UPP state after drain: reservations all released, no VC
    // left frozen anywhere.
    let nodes: Vec<NodeId> = sys.net().topo().nodes().iter().map(|n| n.id).collect();
    for _n in &nodes {
        for v in 0..3u8 {
            // A reservation may legitimately be in flight if a stop is still
            // travelling; give the protocol time to quiesce.
            let _ = v;
        }
    }
    sys.run(2_000); // quiesce outstanding protocol signals
    for n in nodes {
        for v in 0..3u8 {
            assert_eq!(
                sys.net().ni(n).reservations(VnetId(v)),
                0,
                "{kind:?}: dangling reservation at {n} vnet {v}"
            );
        }
        let r = sys.net().router(n);
        for (p, f) in r.input_vcs() {
            let vc = r.input_vc(p, f);
            assert!(
                r.vc_buf_is_empty(p, f),
                "{kind:?}: flit left in {n} {p}/{f}"
            );
            assert!(
                vc.owner.is_none(),
                "{kind:?}: VC still owned at {n} {p}/{f}"
            );
        }
    }
    if let Some(h) = upp_stats {
        let s = *h.lock().unwrap();
        assert!(
            s.acks_sent <= s.reqs_sent,
            "protocol conservation: acks {} > reqs {}",
            s.acks_sent,
            s.reqs_sent
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn upp_conserves_under_random_load(seed in 0u64..500, heavy in proptest::bool::ANY) {
        let rate = if heavy { 0.25 } else { 0.08 };
        check_conservation(Kind::Upp, 1, seed, rate);
    }

    #[test]
    fn upp_conserves_with_four_vcs(seed in 0u64..500) {
        check_conservation(Kind::Upp, 4, seed, 0.2);
    }

    #[test]
    fn composable_conserves_under_random_load(seed in 0u64..500) {
        check_conservation(Kind::Composable, 1, seed, 0.15);
    }

    #[test]
    fn remote_conserves_under_random_load(seed in 0u64..500) {
        check_conservation(Kind::Remote, 1, seed, 0.15);
    }
}
