//! Table I (qualitative scheme comparison) and Table II (simulation
//! configuration), regenerated from the implementation itself.

use crate::report::{mark, ExperimentResult, MarkdownTable};
use serde::Serialize;
use upp_baselines::composable::Composable;
use upp_baselines::remote::{RemoteControl, RemoteControlConfig};
use upp_core::{Upp, UppConfig};
use upp_noc::config::NocConfig;
use upp_noc::scheme::Scheme;
use upp_noc::topology::ChipletSystemSpec;

#[derive(Debug, Serialize)]
struct Table1Row {
    scheme: String,
    topology_modularity: bool,
    vc_modularity: bool,
    flow_control_modularity: bool,
    full_path_diversity: bool,
    no_injection_control: bool,
    topology_independence: bool,
}

/// Table I: the modular schemes' qualitative attributes, read directly from
/// each scheme's [`Scheme::properties`] implementation.
pub fn table1() -> ExperimentResult {
    let topo = ChipletSystemSpec::baseline()
        .build(0)
        .expect("baseline builds");
    let (composable, _) = Composable::build(&topo).expect("composable search succeeds");
    let schemes: Vec<Box<dyn Scheme>> = vec![
        Box::new(composable),
        Box::new(RemoteControl::new(RemoteControlConfig::default())),
        Box::new(Upp::new(UppConfig::default())),
    ];
    let mut rows = Vec::new();
    let mut md = MarkdownTable::new([
        "scheme",
        "topology mod.",
        "VC mod.",
        "flow-control mod.",
        "full path diversity",
        "w/o injection control",
        "topology independence",
    ]);
    for s in &schemes {
        let p = s.properties();
        md.row([
            s.name().to_string(),
            mark(p.topology_modularity).to_string(),
            mark(p.vc_modularity).to_string(),
            mark(p.flow_control_modularity).to_string(),
            mark(p.full_path_diversity).to_string(),
            mark(p.no_injection_control).to_string(),
            mark(p.topology_independence).to_string(),
        ]);
        rows.push(Table1Row {
            scheme: s.name().to_string(),
            topology_modularity: p.topology_modularity,
            vc_modularity: p.vc_modularity,
            flow_control_modularity: p.flow_control_modularity,
            full_path_diversity: p.full_path_diversity,
            no_injection_control: p.no_injection_control,
            topology_independence: p.topology_independence,
        });
    }
    let markdown = format!(
        "### Table I — qualitative comparison (modular schemes)\n\n{}\nExpected: UPP is \
         the only row with every attribute (paper Table I).\n",
        md.render()
    );
    ExperimentResult::new("table1", "Table I: qualitative comparison", markdown, &rows)
}

#[derive(Debug, Serialize)]
struct Table2Data {
    cfg: NocConfig,
    topology: String,
    directories: usize,
    upp_detection_threshold: u64,
}

/// Table II: the simulated configuration, read from the default config.
pub fn table2() -> ExperimentResult {
    let cfg = NocConfig::default();
    let topo = ChipletSystemSpec::baseline()
        .build(0)
        .expect("baseline builds");
    let mut md = MarkdownTable::new(["parameter", "value"]);
    md.row([
        "topology".to_string(),
        format!(
            "1 4x4 mesh interposer, {} 4x4 mesh chiplets, {} vertical links",
            topo.chiplets().len(),
            topo.chiplets()
                .iter()
                .map(|c| c.boundary_routers.len())
                .sum::<usize>()
        ),
    ]);
    md.row(["VNets".to_string(), cfg.num_vnets.to_string()]);
    md.row([
        "VCs per VNet".to_string(),
        format!("{} or 4", cfg.vcs_per_vnet),
    ]);
    md.row([
        "VC buffer depth (flits)".to_string(),
        cfg.vc_buffer_depth.to_string(),
    ]);
    md.row([
        "router pipeline".to_string(),
        "3 stages (BW+RC / SA+VCS / ST) + LT".to_string(),
    ]);
    md.row([
        "link".to_string(),
        format!(
            "latency {} cycle, width {} bits",
            cfg.link_latency, cfg.flit_width_bits
        ),
    ]);
    md.row(["flow control".to_string(), "wormhole".to_string()]);
    md.row([
        "packet sizes".to_string(),
        format!(
            "data {} flits, control {} flit",
            cfg.data_packet_flits, cfg.control_packet_flits
        ),
    ]);
    md.row([
        "directories".to_string(),
        "8, on the interposer".to_string(),
    ]);
    md.row([
        "UPP detection threshold".to_string(),
        "20 cycles".to_string(),
    ]);
    let markdown = format!("### Table II — simulation configuration\n\n{}", md.render());
    let data = Table2Data {
        cfg,
        topology: "baseline (Fig. 1)".into(),
        directories: 8,
        upp_detection_threshold: 20,
    };
    ExperimentResult::new(
        "table2",
        "Table II: simulation configuration",
        markdown,
        &data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_three_schemes_and_upp_wins() {
        let r = table1();
        assert!(r.markdown.contains("UPP"));
        assert!(r.markdown.contains("composable"));
        assert!(r.markdown.contains("remote-control"));
        let rows = r.json.as_array().unwrap();
        assert_eq!(rows.len(), 3);
        let upp = rows.iter().find(|x| x["scheme"] == "UPP").unwrap();
        for key in [
            "topology_modularity",
            "vc_modularity",
            "flow_control_modularity",
            "full_path_diversity",
            "no_injection_control",
            "topology_independence",
        ] {
            assert_eq!(upp[key], true, "{key}");
        }
    }

    #[test]
    fn table2_prints_the_configuration() {
        let r = table2();
        assert!(r.markdown.contains("wormhole"));
        assert!(r.markdown.contains("128 bits"));
        assert!(r.markdown.contains("20 cycles"));
    }
}
