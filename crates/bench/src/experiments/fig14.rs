//! Fig. 14: hardware overhead on chiplet and interposer routers, computed
//! from the calibrated analytic area model.

use crate::report::{pct, ExperimentResult, MarkdownTable};
use serde::Serialize;
use upp_noc::config::NocConfig;
use upp_workloads::area::AreaModel;

/// One bar of Fig. 14.
#[derive(Debug, Clone, Serialize)]
pub struct Bar {
    /// Scheme label.
    pub scheme: String,
    /// Router location.
    pub location: String,
    /// VCs per VNet.
    pub vcs: usize,
    /// Area overhead as a fraction of the baseline router.
    pub overhead: f64,
}

/// Collects the Fig. 14 bars.
pub fn collect() -> Vec<Bar> {
    let model = AreaModel::default();
    let mut bars = Vec::new();
    for vcs in [1usize, 4] {
        let cfg = NocConfig::default().with_vcs_per_vnet(vcs);
        let comp = model.composable(&cfg);
        let upp = model.upp(&cfg);
        let remote = model.remote_control(&cfg, 4, 16);
        for (scheme, o) in [
            ("composable", comp),
            ("remote-control", remote),
            ("UPP", upp),
        ] {
            bars.push(Bar {
                scheme: scheme.into(),
                location: "chiplet router".into(),
                vcs,
                overhead: o.chiplet,
            });
            bars.push(Bar {
                scheme: scheme.into(),
                location: "interposer router".into(),
                vcs,
                overhead: o.interposer,
            });
        }
    }
    bars
}

/// Runs Fig. 14 and renders it.
pub fn run() -> ExperimentResult {
    let bars = collect();
    let mut out = String::new();
    out.push_str("### Fig. 14 — router area overhead (45 nm analytic model)\n\n");
    let mut t = MarkdownTable::new(["location", "VCs", "composable", "remote-control", "UPP"]);
    for location in ["chiplet router", "interposer router"] {
        for vcs in [1usize, 4] {
            let get = |s: &str| {
                bars.iter()
                    .find(|b| b.scheme == s && b.location == location && b.vcs == vcs)
                    .map(|b| pct(b.overhead))
                    .unwrap_or_else(|| "-".into())
            };
            t.row([
                location.to_string(),
                vcs.to_string(),
                get("composable"),
                get("remote-control"),
                get("UPP"),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "\nPaper: chiplet router 3.77%/1.50% (UPP) vs 4.14%/1.65% (remote control); \
         interposer router 2.62%/1.47% (UPP) vs 0 for the others; always <4% for UPP.\n",
    );
    ExperimentResult::new("fig14", "Fig. 14: hardware overhead", out, &bars)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_match_the_published_bars() {
        let bars = collect();
        let get = |s: &str, loc: &str, vcs: usize| {
            bars.iter()
                .find(|b| b.scheme == s && b.location == loc && b.vcs == vcs)
                .unwrap()
                .overhead
        };
        assert!((get("UPP", "chiplet router", 1) - 0.0377).abs() < 0.004);
        assert!((get("UPP", "interposer router", 1) - 0.0262).abs() < 0.004);
        assert!((get("remote-control", "chiplet router", 1) - 0.0414).abs() < 0.005);
        assert_eq!(get("composable", "chiplet router", 1), 0.0);
        assert_eq!(get("remote-control", "interposer router", 4), 0.0);
        // UPP's headline: under 4% everywhere.
        for b in bars.iter().filter(|b| b.scheme == "UPP") {
            assert!(b.overhead < 0.04, "{} {} {}VC", b.scheme, b.location, b.vcs);
        }
    }
}
