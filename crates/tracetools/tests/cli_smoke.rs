//! End-to-end tests of the `upp-trace` binary: a synthetic JSONL trace is
//! analyzed into a profile document, the document re-analyzes to the same
//! bytes, and the heatmap/critical-path/diff subcommands all run over it.

use std::path::PathBuf;
use std::process::Command;

use upp_noc::ids::{NodeId, PacketId, Port, VnetId};
use upp_noc::trace::{BlockReason, TraceEvent};

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("upp-trace-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Runs `upp-trace` with the given args, asserting success, and returns
/// captured stdout.
fn upp_trace(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_upp-trace"))
        .args(args)
        .output()
        .expect("upp-trace binary runs");
    assert!(
        out.status.success(),
        "upp-trace {args:?} failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

/// A small trace: two packets, one of which goes through a full popup.
fn sample_trace(latency_scale: u64) -> String {
    let events = vec![
        TraceEvent::PacketCreated {
            at: 0,
            packet: PacketId(1),
            src: NodeId(0),
            dest: NodeId(9),
            vnet: VnetId(0),
            len_flits: 4,
        },
        TraceEvent::PacketInjected {
            at: 3,
            packet: PacketId(1),
            node: NodeId(0),
        },
        TraceEvent::Blocked {
            at: 5,
            packet: PacketId(1),
            node: NodeId(4),
            in_port: Port::West,
            vc_flat: 0,
            out_port: Some(Port::East),
            reason: BlockReason::Credit,
        },
        TraceEvent::PacketEjected {
            at: 10 * latency_scale,
            packet: PacketId(1),
            node: NodeId(9),
            net_latency: 10 * latency_scale - 3,
            total_latency: 10 * latency_scale,
        },
        TraceEvent::PacketCreated {
            at: 2,
            packet: PacketId(2),
            src: NodeId(3),
            dest: NodeId(7),
            vnet: VnetId(1),
            len_flits: 2,
        },
        TraceEvent::PacketInjected {
            at: 4,
            packet: PacketId(2),
            node: NodeId(3),
        },
        TraceEvent::PopupSpan {
            node: NodeId(5),
            vnet: VnetId(1),
            packet: PacketId(2),
            detected_at: 6,
            completed_at: 6 + 4 * latency_scale,
            wait_ack: 2 * latency_scale,
            locate: latency_scale,
            pop: latency_scale,
        },
        TraceEvent::BypassHop {
            at: 8,
            packet: PacketId(2),
            node: NodeId(5),
            out_port: Port::Up,
        },
        TraceEvent::PacketEjected {
            at: 9 + 4 * latency_scale,
            packet: PacketId(2),
            node: NodeId(7),
            net_latency: 5 + 4 * latency_scale,
            total_latency: 7 + 4 * latency_scale,
        },
    ];
    events.iter().map(|e| e.jsonl() + "\n").collect()
}

#[test]
fn analyze_is_idempotent_across_input_shapes() {
    let trace = tmp_path("trace.jsonl");
    std::fs::write(&trace, sample_trace(2)).expect("write trace");
    let trace = trace.to_str().expect("utf-8 path");

    // JSONL -> profile document.
    let profile_path = tmp_path("profile.json");
    upp_trace(&[
        "analyze",
        trace,
        "--json",
        "--out",
        profile_path.to_str().expect("utf-8 path"),
        "--system",
        "baseline",
        "--scheme",
        "UPP",
    ]);
    let profile = std::fs::read_to_string(&profile_path).expect("profile written");
    assert!(profile.contains("\"upp_profile\":1"));

    // Re-analyzing the profile document gives the same bytes back.
    let again = upp_trace(&["analyze", profile_path.to_str().expect("utf-8"), "--json"]);
    assert_eq!(again, profile, "profile -> analyze --json is a fixed point");

    // The human report shows the popup attribution from the trace.
    let report = upp_trace(&["analyze", trace, "--system", "baseline", "--scheme", "UPP"]);
    assert!(report.contains("packets"), "report renders:\n{report}");
    assert!(report.contains("wait_ack"), "phases listed:\n{report}");
}

#[test]
fn heatmap_critical_path_and_diff_run_end_to_end() {
    let a = tmp_path("a.jsonl");
    let b = tmp_path("b.jsonl");
    std::fs::write(&a, sample_trace(2)).expect("write");
    std::fs::write(&b, sample_trace(5)).expect("write");
    let (a, b) = (a.to_str().expect("utf-8"), b.to_str().expect("utf-8"));

    let csv = tmp_path("heat.csv");
    let svg = tmp_path("heat.svg");
    upp_trace(&[
        "heatmap",
        a,
        "--system",
        "baseline",
        "--csv-out",
        csv.to_str().expect("utf-8"),
        "--svg-out",
        svg.to_str().expect("utf-8"),
    ]);
    let csv = std::fs::read_to_string(&csv).expect("csv written");
    assert!(csv.starts_with("node,blocked_cycles"), "csv header:\n{csv}");
    let svg = std::fs::read_to_string(&svg).expect("svg written");
    assert!(svg.starts_with("<svg"), "svg rendered");

    let crit = upp_trace(&["critical-path", a, "--top", "2"]);
    assert!(
        crit.contains("packet"),
        "critical path lists packets:\n{crit}"
    );

    let diff = upp_trace(&["diff", a, b]);
    assert!(
        diff.contains("wait_ack"),
        "diff shows phase deltas:\n{diff}"
    );
}

/// A small `upp-alerts/v1` stream: one collapse span that escalates and
/// clears, plus a starvation raise (the shape a wedged run produces).
fn sample_alerts() -> String {
    [
        r#"{"upp_alerts":1,"schema":"upp-alerts/v1","every":100}"#,
        r#"{"detector":"throughput_collapse","event":"raise","severity":"warning","metric":"flits_per_epoch","value":6,"threshold":103,"from_cycle":900,"at_cycle":1000}"#,
        r#"{"detector":"throughput_collapse","event":"escalate","severity":"critical","metric":"flits_per_epoch","value":2,"threshold":63,"from_cycle":900,"at_cycle":1200}"#,
        r#"{"detector":"throughput_collapse","event":"clear","severity":"info","metric":"flits_per_epoch","value":0,"threshold":0,"from_cycle":900,"at_cycle":1800}"#,
        r#"{"detector":"injection_starvation","event":"raise","severity":"warning","metric":"in_flight","value":3482,"threshold":1,"from_cycle":2100,"at_cycle":2200}"#,
    ]
    .map(|l| l.to_string() + "\n")
    .concat()
}

#[test]
fn alerts_renders_table_csv_and_svg() {
    let stream = tmp_path("alerts.jsonl");
    std::fs::write(&stream, sample_alerts()).expect("write alerts");
    let csv = tmp_path("alerts.csv");
    let svg = tmp_path("alerts.svg");
    let table = upp_trace(&[
        "alerts",
        stream.to_str().expect("utf-8"),
        "--csv-out",
        csv.to_str().expect("utf-8"),
        "--svg-out",
        svg.to_str().expect("utf-8"),
    ]);
    assert!(
        table.contains("throughput_collapse") && table.contains("injection_starvation"),
        "table lists both detectors:\n{table}"
    );
    assert!(table.contains("critical"), "severity shown:\n{table}");
    let csv = std::fs::read_to_string(&csv).expect("csv written");
    assert!(
        csv.starts_with("at_cycle,from_cycle,detector,event,severity,metric,value,threshold"),
        "csv header:\n{csv}"
    );
    assert_eq!(csv.lines().count(), 5, "header plus four alerts:\n{csv}");
    let svg = std::fs::read_to_string(&svg).expect("svg written");
    assert!(svg.starts_with("<svg"), "svg rendered");
    assert!(svg.contains("throughput_collapse"), "lane labelled:\n{svg}");
}

#[test]
fn live_renders_a_finished_stream_and_exits() {
    let stream = tmp_path("live.jsonl");
    std::fs::write(&stream, sample_alerts()).expect("write alerts");
    let out = upp_trace(&["live", stream.to_str().expect("utf-8")]);
    assert!(
        out.contains("live: upp-alerts stream (epoch 100 cycles)"),
        "header rendered:\n{out}"
    );
    // One rendered line per alert record, after the header line.
    assert_eq!(out.lines().count(), 5, "all lines rendered:\n{out}");
    assert!(
        out.contains("escalate") && out.contains("flits_per_epoch=2"),
        "records rendered in table shape:\n{out}"
    );
}
