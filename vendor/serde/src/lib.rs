//! Vendored offline stand-in for `serde`.
//!
//! The build environment has no crates registry, so this crate provides the
//! minimal serialization model the workspace needs: a JSON-shaped [`Value`]
//! tree, a [`Serialize`] trait producing it, a marker [`Deserialize`] trait
//! (nothing in the workspace deserializes), and re-exported derive macros
//! from the companion `serde_derive` stub.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// A JSON-shaped value tree (the stub's serialization target).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, as insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an f64, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, when it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object key/value pairs, when it is one.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

static NULL_VALUE: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Objects index by key; anything else (or a missing key) yields `Null`,
    /// mirroring `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::F64(v) if v == other)
    }
}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the stub's value model.
    fn ser_value(&self) -> Value;
}

/// Marker trait emitted by `#[derive(Deserialize)]`; the workspace never
/// deserializes, so there is nothing to implement.
pub trait Deserialize<'de>: Sized {}

impl Serialize for Value {
    fn ser_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! ser_as_u64 {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_as_u64!(u8, u16, u32, u64, usize);

macro_rules! ser_as_i64 {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
ser_as_i64!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn ser_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn ser_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for bool {
    fn ser_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn ser_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for str {
    fn ser_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn ser_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser_value(&self) -> Value {
        (**self).ser_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn ser_value(&self) -> Value {
        (**self).ser_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn ser_value(&self) -> Value {
        match self {
            Some(v) => v.ser_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::ser_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser_value(&self) -> Value {
        self.as_slice().ser_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn ser_value(&self) -> Value {
        self.as_slice().ser_value()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn ser_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::ser_value).collect())
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn ser_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::ser_value).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn ser_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::ser_value).collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn ser_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.ser_value(), v.ser_value()]))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn ser_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.ser_value(), v.ser_value()]))
                .collect(),
        )
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn ser_value(&self) -> Value {
                Value::Array(vec![$(self.$n.ser_value()),+])
            }
        }
    )+};
}
ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_types_serialize_structurally() {
        assert_eq!(3u32.ser_value(), Value::U64(3));
        assert_eq!((-2i32).ser_value(), Value::I64(-2));
        assert_eq!("hi".ser_value(), Value::String("hi".into()));
        assert_eq!(Option::<u8>::None.ser_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].ser_value(),
            Value::Array(vec![Value::U64(1), Value::U64(2)])
        );
        assert_eq!(
            (1u8, false).ser_value(),
            Value::Array(vec![Value::U64(1), Value::Bool(false)])
        );
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![("a".into(), Value::U64(4))]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(4));
        assert_eq!(v.get("b"), None);
    }
}
