//! Vendored offline stand-in for `serde_json`: renders the serde stub's
//! [`Value`] tree as JSON text. Supports exactly what the workspace calls:
//! [`to_value`], [`to_string`], [`to_string_pretty`], and an [`Error`] that
//! converts into `std::io::Error`.

use serde::Serialize;
use std::fmt;

pub use serde::Value;

/// Serialization error (the stub's serializer is infallible in practice,
/// but the signatures mirror the real crate).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails in the stub; the `Result` mirrors the real crate's signature.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.ser_value())
}

/// Renders a value as compact JSON.
///
/// # Errors
///
/// Never fails in the stub.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.ser_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders a value as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails in the stub.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.ser_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => {
            out.push_str(&n.to_string());
        }
        Value::U64(n) => {
            out.push_str(&n.to_string());
        }
        Value::F64(n) => {
            if n.is_finite() {
                out.push_str(&n.to_string());
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::String("x\"y".into())),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":[true,null],"c":"x\"y"}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::U64(1)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn error_converts_to_io_error() {
        let io: std::io::Error = Error("x".into()).into();
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
    }
}
