//! Out-of-band control-plane messages.
//!
//! UPP's three protocol signals (`UPP_req`, `UPP_ack`, `UPP_stop`, Sec. V-B)
//! travel through the normal router datapath — same pipeline, crossbars and
//! links as head flits — but are stored in two dedicated 32-bit buffers per
//! chiplet router instead of VC buffers, and win switch allocation over
//! normal flits. This module provides the *mechanism*: an opaque payload, a
//! buffer class, and forward/reverse routing modes. The *policy* (encoding,
//! when to send what) lives in `upp-core`.

use crate::ids::{Cycle, NodeId, Port, VnetId};
use crate::packet::RouteInfo;
use serde::{Deserialize, Serialize};

/// Which dedicated buffer a control message occupies in each router.
///
/// The paper adds one buffer shared by `UPP_req`/`UPP_stop` and one for
/// `UPP_ack` (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControlClass {
    /// Forward-travelling request-like signals (`UPP_req`, `UPP_stop`).
    ReqLike,
    /// Backward-travelling acknowledge-like signals (`UPP_ack`).
    AckLike,
}

/// How a control message finds its next hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlRoute {
    /// Attend normal route computation toward [`ControlMsg::route`]'s
    /// destination (like a head flit).
    Forward,
    /// Follow the reverse of the circuit recorded by the corresponding
    /// forward message (UPP_ack, Sec. V-B2: "does not attend the normal route
    /// computation but instead follows the reverse routing path of its
    /// corresponding UPP_req").
    Reverse,
}

/// An out-of-band control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlMsg {
    /// Buffer class used at each hop.
    pub class: ControlClass,
    /// Opaque encoded payload (the scheme encodes/decodes; the network never
    /// inspects it). Width-checked against the 32-bit hardware buffers by
    /// `upp-core`'s encoding tests.
    pub bits: u32,
    /// VNet the signal belongs to.
    pub vnet: VnetId,
    /// Next-hop discipline.
    pub routing: ControlRoute,
    /// Route header used in `Forward` mode; its `dest` is the node whose NI
    /// (or router, see `deliver_to_ni`) receives the message.
    pub route: RouteInfo,
    /// Node that emitted the message.
    pub origin: NodeId,
    /// Key under which circuits are recorded/looked up: the destination
    /// router of the popup this signal belongs to.
    pub circuit_key: NodeId,
    /// Record a circuit entry `(vnet, circuit_key) -> (in, out)` at every
    /// traversed router (UPP_req does; UPP_stop and UPP_ack do not).
    pub record_circuit: bool,
    /// Deliver into the destination node's NI inbox (requests/stops) rather
    /// than the destination router's inbox (acks terminate at the interposer
    /// router).
    pub deliver_to_ni: bool,
}

/// A circuit entry recorded in a chiplet router by a circuit-recording
/// control message (Fig. 6's per-VNet in/out connection table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitEntry {
    /// Crossbar input side of the recorded connection.
    pub in_port: Port,
    /// Crossbar output side of the recorded connection.
    pub out_port: Port,
    /// Cycle the entry was recorded (diagnostics).
    pub set_at: Cycle,
}

/// A control message delivered to a node, together with its arrival port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveredControl {
    /// The message.
    pub msg: ControlMsg,
    /// Port it arrived on (`Local` for messages that originated here).
    pub in_port: Port,
    /// Cycle of delivery.
    pub at: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn control_msg_is_compact_and_copyable() {
        let m = ControlMsg {
            class: ControlClass::ReqLike,
            bits: 0x1234,
            vnet: VnetId(1),
            routing: ControlRoute::Forward,
            route: RouteInfo::intra(NodeId(4)),
            origin: NodeId(9),
            circuit_key: NodeId(4),
            record_circuit: true,
            deliver_to_ni: true,
        };
        let copy = m;
        assert_eq!(copy, m);
        assert_eq!(copy.bits, 0x1234);
    }
}
