//! Strongly-typed identifiers used throughout the simulator.
//!
//! Every index into a simulator table gets its own newtype so that node,
//! chiplet, VC and packet indices can never be confused ([C-NEWTYPE]).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simulation cycle number.
pub type Cycle = u64;

/// Identifies one node (router + its network interface) in the topology.
///
/// Node ids are dense indices into [`crate::topology::Topology::nodes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies one chiplet in a chiplet-based system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChipletId(pub u16);

impl ChipletId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChipletId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A virtual network (message class) index.
///
/// The MESI-style coherence configuration of the paper uses three VNets
/// (request / forward / response); synthetic traffic uses them as independent
/// lanes for control and data packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VnetId(pub u8);

impl VnetId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VnetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A virtual channel identified by its VNet and its index within that VNet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VcId {
    /// The virtual network this VC belongs to.
    pub vnet: VnetId,
    /// Index of the VC within its VNet (`0..vcs_per_vnet`).
    pub index: u8,
}

impl VcId {
    /// Creates a VC id from a VNet and an index within the VNet.
    #[inline]
    pub fn new(vnet: VnetId, index: u8) -> Self {
        Self { vnet, index }
    }

    /// Flattens this VC id into a dense per-port index.
    #[inline]
    pub fn flat(self, vcs_per_vnet: usize) -> usize {
        self.vnet.index() * vcs_per_vnet + self.index as usize
    }

    /// Reconstructs a VC id from a dense per-port index.
    #[inline]
    pub fn from_flat(flat: usize, vcs_per_vnet: usize) -> Self {
        Self {
            vnet: VnetId((flat / vcs_per_vnet) as u8),
            index: (flat % vcs_per_vnet) as u8,
        }
    }
}

impl fmt::Display for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.vnet, self.index)
    }
}

/// Globally-unique packet identifier, assigned at injection time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A router port direction.
///
/// Chiplet and interposer routers are laid out on 2D meshes; in addition,
/// boundary chiplet routers own a `Down` port to the interposer and the
/// interposer routers beneath them own an `Up` port (the paper's *upward
/// vertical link* runs from an interposer `Up` output to a boundary router
/// `Down` input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Port {
    /// Connection to the local network interface.
    Local,
    /// +y neighbour within the same mesh layer.
    North,
    /// +x neighbour within the same mesh layer.
    East,
    /// -y neighbour within the same mesh layer.
    South,
    /// -x neighbour within the same mesh layer.
    West,
    /// Vertical link from an interposer router up to a chiplet boundary router.
    Up,
    /// Vertical link from a chiplet boundary router down to an interposer router.
    Down,
}

impl Port {
    /// All ports, in a fixed iteration order.
    pub const ALL: [Port; 7] = [
        Port::Local,
        Port::North,
        Port::East,
        Port::South,
        Port::West,
        Port::Up,
        Port::Down,
    ];

    /// Number of distinct port directions.
    pub const COUNT: usize = 7;

    /// Returns a dense index in `0..Port::COUNT`.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Port::Local => 0,
            Port::North => 1,
            Port::East => 2,
            Port::South => 3,
            Port::West => 4,
            Port::Up => 5,
            Port::Down => 6,
        }
    }

    /// Reconstructs a port from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Port::COUNT`.
    #[inline]
    pub fn from_index(index: usize) -> Port {
        Port::ALL[index]
    }

    /// The port on the far side of a link leaving through `self`.
    ///
    /// Mesh directions pair N/S and E/W; the vertical link pairs `Up` (on the
    /// interposer router) with `Down` (on the boundary chiplet router).
    /// `Local` is its own opposite (NI links).
    #[inline]
    pub fn opposite(self) -> Port {
        match self {
            Port::Local => Port::Local,
            Port::North => Port::South,
            Port::East => Port::West,
            Port::South => Port::North,
            Port::West => Port::East,
            Port::Up => Port::Down,
            Port::Down => Port::Up,
        }
    }

    /// True for the four intra-mesh directions.
    #[inline]
    pub fn is_mesh(self) -> bool {
        matches!(self, Port::North | Port::East | Port::South | Port::West)
    }

    /// True for the two vertical-link directions.
    #[inline]
    pub fn is_vertical(self) -> bool {
        matches!(self, Port::Up | Port::Down)
    }

    /// True if this is an X-dimension mesh direction.
    #[inline]
    pub fn is_x(self) -> bool {
        matches!(self, Port::East | Port::West)
    }

    /// True if this is a Y-dimension mesh direction.
    #[inline]
    pub fn is_y(self) -> bool {
        matches!(self, Port::North | Port::South)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Port::Local => "L",
            Port::North => "N",
            Port::East => "E",
            Port::South => "S",
            Port::West => "W",
            Port::Up => "U",
            Port::Down => "D",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_index_roundtrip() {
        for p in Port::ALL {
            assert_eq!(Port::from_index(p.index()), p);
        }
    }

    #[test]
    fn port_opposites_are_involutive() {
        for p in Port::ALL {
            assert_eq!(p.opposite().opposite(), p);
        }
    }

    #[test]
    fn port_classes_are_disjoint() {
        for p in Port::ALL {
            let classes = [p.is_mesh(), p.is_vertical(), p == Port::Local]
                .iter()
                .filter(|&&b| b)
                .count();
            assert_eq!(classes, 1, "{p:?} must belong to exactly one class");
        }
        assert!(Port::East.is_x() && !Port::East.is_y());
        assert!(Port::North.is_y() && !Port::North.is_x());
    }

    #[test]
    fn vc_flat_roundtrip() {
        for vnet in 0..3u8 {
            for idx in 0..4u8 {
                let vc = VcId::new(VnetId(vnet), idx);
                assert_eq!(VcId::from_flat(vc.flat(4), 4), vc);
            }
        }
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(ChipletId(1).to_string(), "c1");
        assert_eq!(VcId::new(VnetId(2), 1).to_string(), "v2.1");
        assert_eq!(PacketId(9).to_string(), "p9");
        assert_eq!(Port::Up.to_string(), "U");
    }
}
