//! CLI entry point regenerating the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--out DIR] <id>... | all | list
//! ```

use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut quick = false;
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }));
            }
            "list" => {
                for id in upp_bench::ALL_IDS {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(upp_bench::ALL_IDS.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: repro [--quick] [--out DIR] <id>... | all | list\n  ids: {}",
            upp_bench::ALL_IDS.join(", ")
        );
        std::process::exit(2);
    }
    for id in ids {
        let t0 = Instant::now();
        match upp_bench::run(&id, quick) {
            Some(result) => {
                println!("\n{}", result.markdown);
                match result.write_json(&out_dir) {
                    Ok(path) => eprintln!(
                        "[{id}] done in {:.1?}; data -> {}",
                        t0.elapsed(),
                        path.display()
                    ),
                    Err(e) => eprintln!("[{id}] done, but writing JSON failed: {e}"),
                }
            }
            None => {
                eprintln!("unknown experiment id {id}; try `repro list`");
                std::process::exit(2);
            }
        }
    }
}
