//! Concretization: turning abstract verdicts into replayable artifacts.
//!
//! An abstract verdict only matters if it predicts something about the
//! real simulator, so every artifact carries a concrete [`Scenario`] in
//! the same schema family as `upp-verify`'s ddmin repro artifacts. The
//! mapping is per protocol variant, not per abstract trace — the abstract
//! model and the concrete network do not share microstate, but they must
//! agree on the *outcome class* of the same stress:
//!
//! * the honest protocol's clean verdict concretizes to the adversarial
//!   deadlock-forcing scenario under full `UPP`, predicted to drain;
//! * `never-expire-watchdog` concretizes to the same scenario under
//!   `UPP@t=<huge>` — all the popup machinery present, but detection
//!   cannot fire inside the cycle bound — predicted to wedge;
//! * the remaining mutations (`skip-circuit-insert`, `drop-absorber`,
//!   `bounce-ack`) break protocol internals the concrete simulator has no
//!   knob for, so they concretize to the recovery-free `none` scheme:
//!   the weakest-precondition statement both sides agree on is "this
//!   traffic deadlocks, and without a working popup it stays wedged".
//!
//! The stress scenario itself is the `verify` suite's adversarial
//! generator at a pinned seed: dense random cross-chiplet traffic on the
//! 2-chiplet mini system plus one link fault and one throttle — known to
//! wedge every scheme without working recovery and to drain under UPP.

use upp_verify::bridge::{AbstractStep, CheckArtifact, ExpectedOutcome, CHECK_ARTIFACT_VERSION};
use upp_verify::scenario::{random_scenario, CampaignParams};
use upp_verify::Scenario;

use crate::explore::{render_state, Exploration};
use crate::model::{Mutation, Transition};
use crate::props::{LivelockViolation, RecoveryViolation};

/// Threshold used to concretize a disabled watchdog: detection parameters
/// are otherwise identical, but the counter cannot reach this value
/// within any scenario's cycle bound.
pub const DISABLED_WATCHDOG_THRESHOLD: u64 = 1_000_000;

/// The pinned adversarial stress the artifacts embed (see module docs).
pub fn stress_scenario(scheme: &str) -> Scenario {
    let params = CampaignParams {
        rate: 0.25,
        horizon: 500,
        max_cycles: 4_000,
        link_faults: 1,
        throttles: 1,
        ..CampaignParams::default()
    };
    let mut sc = random_scenario(&params, 0).expect("pinned params are valid");
    sc.scheme = scheme.into();
    sc
}

/// The concrete scheme label and predicted outcome for a protocol variant.
pub fn concretize(mutation: Option<Mutation>) -> (&'static str, ExpectedOutcome) {
    match mutation {
        None => ("UPP", ExpectedOutcome::Recovers),
        Some(Mutation::NeverExpireWatchdog) => ("UPP@t=1000000", ExpectedOutcome::Wedges),
        Some(Mutation::SkipCircuitInsert)
        | Some(Mutation::DropAbsorber)
        | Some(Mutation::BounceAck) => ("none", ExpectedOutcome::Wedges),
    }
}

fn steps_from(concrete: &[(Transition, crate::model::State)]) -> Vec<AbstractStep> {
    concrete
        .iter()
        .map(|(t, s)| AbstractStep {
            transition: t.label(),
            state: render_state(s),
        })
        .collect()
}

fn base_artifact(ex: &Exploration, property: &str, steps: Vec<AbstractStep>) -> CheckArtifact {
    let (scheme, expected) = concretize(ex.cfg.mutation);
    CheckArtifact {
        version: CHECK_ARTIFACT_VERSION,
        property: property.into(),
        model: ex.cfg.describe(),
        mutation: ex.cfg.mutation.map(|m| m.label().to_string()),
        steps,
        expected,
        scenario: stress_scenario(scheme),
    }
}

/// Artifact for a clean run: both properties verified.
pub fn clean_artifact(ex: &Exploration) -> CheckArtifact {
    base_artifact(ex, "clean", Vec::new())
}

/// Artifact for a bounded-recovery (P1) violation: the trace leads from
/// the initial state to a state that can never drain.
pub fn recovery_artifact(ex: &Exploration, v: &RecoveryViolation) -> CheckArtifact {
    let (concrete, _) = ex.concretize_steps(0, 0, &ex.trace_to(v.state));
    base_artifact(ex, "bounded-recovery", steps_from(&concrete))
}

/// Artifact for a livelock (P2) violation: the trace leads to the cycle's
/// entry state, then around the cycle once (up to a rotation of the ring,
/// which by symmetry extends to the infinite run).
pub fn livelock_artifact(ex: &Exploration, v: &LivelockViolation) -> CheckArtifact {
    let (mut concrete, rho) = ex.concretize_steps(0, 0, &ex.trace_to(v.entry));
    let (cycle, _) = ex.concretize_steps(v.entry, rho, &v.cycle);
    concrete.extend(cycle);
    base_artifact(ex, "no-livelock", steps_from(&concrete))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concretization_covers_every_variant() {
        let (scheme, expected) = concretize(None);
        assert_eq!(scheme, "UPP");
        assert_eq!(expected, ExpectedOutcome::Recovers);
        for m in Mutation::ALL {
            let (scheme, expected) = concretize(Some(m));
            assert_eq!(expected, ExpectedOutcome::Wedges);
            assert!(scheme == "none" || scheme.starts_with("UPP@t="));
        }
    }

    #[test]
    fn disabled_watchdog_label_matches_the_constant() {
        let (scheme, _) = concretize(Some(Mutation::NeverExpireWatchdog));
        assert_eq!(scheme, format!("UPP@t={DISABLED_WATCHDOG_THRESHOLD}"));
    }

    #[test]
    fn stress_scenario_is_deterministic() {
        let a = stress_scenario("UPP");
        let b = stress_scenario("UPP");
        assert_eq!(a.to_json(), b.to_json());
        assert!(!a.traffic.is_empty());
    }
}
