//! Property tests for the log-bucketed histogram: merge is associative and
//! commutative, recorded counts are conserved through arbitrary merge
//! trees, and the bucket representative stays within the documented 1/64
//! relative-error bound for any value.

use proptest::prelude::*;
use upp_tracetools::Histogram;

fn build(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(0u64..1_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let (ha, hb) = (build(&a), build(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..1_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000, 0..100),
        c in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));
        // (a + b) + c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a + (b + c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_conserves_count_sum_and_extremes(
        a in prop::collection::vec(0u64..1_000_000, 1..200),
        b in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let mut merged = build(&a);
        merged.merge(&build(&b));
        let all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let direct = build(&all);
        prop_assert_eq!(&merged, &direct, "merge equals recording the union");
        prop_assert_eq!(merged.count(), all.len() as u64);
        prop_assert_eq!(merged.sum(), all.iter().sum::<u64>());
        prop_assert_eq!(merged.min(), *all.iter().min().expect("non-empty"));
        prop_assert_eq!(merged.max(), *all.iter().max().expect("non-empty"));
    }

    #[test]
    fn representative_error_is_within_documented_bound(v in 0u64..u64::MAX / 8) {
        // Sandwich `v` between a smaller and a larger sample so the
        // median is v's bucket representative *unclamped* — the [min, max]
        // clamp must not be what saves the bound.
        let lo = 0u64;
        let hi = v.saturating_mul(4).max(1_000);
        let mut h = Histogram::new();
        h.record(lo);
        h.record(v);
        h.record(hi);
        let rep = h.quantile(0.5);
        let err = rep.abs_diff(v);
        prop_assert!(
            err.saturating_mul(64) <= v,
            "rep {rep} for {v}: error {err} exceeds v/64"
        );
        if v < 32 {
            prop_assert_eq!(rep, v, "small values are exact");
        }
    }

    #[test]
    fn quantiles_are_monotonic_and_bounded(
        vals in prop::collection::vec(0u64..1_000_000, 1..300),
    ) {
        let h = build(&vals);
        let qs = [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0];
        let mut prev = 0;
        for (i, &q) in qs.iter().enumerate() {
            let x = h.quantile(q);
            prop_assert!(x >= h.min() && x <= h.max());
            if i > 0 {
                prop_assert!(x >= prev, "quantiles non-decreasing");
            }
            prev = x;
        }
    }
}
