//! Fig. 10: sensitivity to the number of boundary routers per chiplet
//! (2, 4, 8), normalized latency and saturation throughput.

use super::{cfg, rates_1vc, rates_4vc, windows, SEED};
use crate::report::{f3, ExperimentResult, MarkdownTable};
use crate::sweep::sweep_rates;
use serde::Serialize;
use upp_noc::topology::{ChipletSystemSpec, SystemKind};
use upp_workloads::runner::{presaturation_latency, saturation_throughput, SchemeKind};
use upp_workloads::synthetic::Pattern;

/// One measured configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// Boundary routers per chiplet.
    pub boundary_routers: u16,
    /// Scheme label.
    pub scheme: String,
    /// VCs per VNet.
    pub vcs: usize,
    /// Absolute saturation throughput.
    pub saturation: f64,
    /// Absolute pre-saturation latency.
    pub presat_latency: f64,
    /// Latency normalized to composable-1VC at 4 boundary routers.
    pub norm_latency: f64,
    /// Saturation normalized to composable-1VC at 4 boundary routers.
    pub norm_throughput: f64,
}

/// Collects the sensitivity grid.
pub fn collect(quick: bool) -> Vec<Point> {
    let w = windows(quick);
    let counts: &[u16] = if quick { &[2, 4] } else { &[2, 4, 8] };
    let mut raw = Vec::new();
    for &n in counts {
        let spec = ChipletSystemSpec::of_kind(SystemKind::BoundaryCount(n));
        for vcs in [1usize, 4] {
            let rates = if vcs == 1 {
                rates_1vc(quick)
            } else {
                rates_4vc(quick)
            };
            for kind in SchemeKind::evaluated() {
                let pts = sweep_rates(
                    &format!("fig10/b{n}"),
                    &spec,
                    &cfg(vcs),
                    &kind,
                    0,
                    Pattern::UniformRandom,
                    &rates,
                    w,
                    SEED,
                );
                raw.push((
                    n,
                    kind.label().to_string(),
                    vcs,
                    saturation_throughput(&pts),
                    presaturation_latency(&pts),
                ));
            }
        }
    }
    // Normalize to composable, 1 VC, 4 boundary routers (the paper's
    // reference bar).
    let reference_n = if counts.contains(&4) { 4 } else { counts[0] };
    let (base_sat, base_lat) = raw
        .iter()
        .find(|(n, s, v, _, _)| *n == reference_n && s == "composable" && *v == 1)
        .map(|(_, _, _, sat, lat)| (*sat, *lat))
        .expect("reference configuration measured");
    raw.into_iter()
        .map(|(n, scheme, vcs, sat, lat)| Point {
            boundary_routers: n,
            scheme,
            vcs,
            saturation: sat,
            presat_latency: lat,
            norm_latency: lat / base_lat,
            norm_throughput: sat / base_sat,
        })
        .collect()
}

/// Runs Fig. 10 and renders it.
pub fn run(quick: bool) -> ExperimentResult {
    let points = collect(quick);
    let mut out = String::new();
    out.push_str("### Fig. 10 — sensitivity to boundary routers per chiplet (normalized to composable-1VC @ 4)\n\n");
    let mut t = MarkdownTable::new([
        "boundary routers",
        "scheme",
        "VCs",
        "norm. latency",
        "norm. throughput",
    ]);
    for p in &points {
        t.row([
            p.boundary_routers.to_string(),
            p.scheme.clone(),
            p.vcs.to_string(),
            f3(p.norm_latency),
            f3(p.norm_throughput),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nPaper: more boundary routers raise throughput and cut latency for every scheme, \
         with UPP best throughout.\n",
    );
    ExperimentResult::new(
        "fig10",
        "Fig. 10: boundary-router sensitivity",
        out,
        &points,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig10_normalizes_and_scales() {
        let pts = collect(true);
        // Reference bar normalizes to 1.
        let reference = pts
            .iter()
            .find(|p| p.boundary_routers == 4 && p.scheme == "composable" && p.vcs == 1)
            .unwrap();
        assert!((reference.norm_throughput - 1.0).abs() < 1e-9);
        // More boundary routers must not hurt UPP's saturation.
        let upp = |n: u16| {
            pts.iter()
                .find(|p| p.boundary_routers == n && p.scheme == "UPP" && p.vcs == 1)
                .unwrap()
                .saturation
        };
        assert!(
            upp(4) >= upp(2) * 0.95,
            "4 boundaries >= 2 boundaries: {} vs {}",
            upp(4),
            upp(2)
        );
    }
}
