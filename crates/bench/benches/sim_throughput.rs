//! Simulation-kernel throughput bench: how many network cycles per second
//! the simulator steps, and how the sweep engine scales with `--jobs`.
//!
//! Besides the criterion-style console report, the bench writes a machine
//! readable summary to `BENCH_sweep.json` at the workspace root so kernel
//! or sweep regressions are visible in PRs. Set `UPP_BENCH_QUICK=1` for a
//! reduced grid (used by CI).

use criterion::{black_box, criterion_group, Criterion};
use std::time::Instant;
use upp_bench::sweep::SweepEngine;
use upp_core::UppConfig;
use upp_noc::config::NocConfig;
use upp_noc::ni::ConsumePolicy;
use upp_noc::topology::ChipletSystemSpec;
use upp_workloads::runner::{build_system, run_point, SchemeKind, SweepWindows};
use upp_workloads::synthetic::{Pattern, SyntheticTraffic};

fn quick() -> bool {
    std::env::var("UPP_BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn measure_cycles(quick: bool) -> u64 {
    if quick {
        3_000
    } else {
        12_000
    }
}

/// Steps one `(scheme, vcs, rate)` configuration for a fixed number of
/// cycles and returns the wall-clock cycles/sec of the kernel.
fn kernel_cycles_per_sec(kind: &SchemeKind, vcs: usize, rate: f64, cycles: u64) -> f64 {
    let spec = ChipletSystemSpec::baseline();
    let cfg = NocConfig::default().with_vcs_per_vnet(vcs);
    let windows = SweepWindows {
        warmup: cycles / 10,
        measure: cycles,
    };
    let start = Instant::now();
    black_box(run_point(
        &spec,
        &cfg,
        kind,
        0,
        Pattern::UniformRandom,
        rate,
        windows,
        2022,
    ));
    let total = windows.warmup + windows.measure;
    total as f64 / start.elapsed().as_secs_f64()
}

/// [`kernel_cycles_per_sec`] on the spatially sharded kernel: sets the
/// process-wide shard default (what `--shards` does), measures, and
/// restores the serial default. `shards = 1` exercises the serial path
/// through the sharded entry points — the configuration the perf gate
/// pins against `upp_1vc` to catch dispatch overhead on the serial path.
fn kernel_cycles_per_sec_sharded(
    kind: &SchemeKind,
    vcs: usize,
    rate: f64,
    cycles: u64,
    shards: usize,
) -> f64 {
    upp_noc::shard::set_default_shards(shards);
    let cps = kernel_cycles_per_sec(kind, vcs, rate, cycles);
    upp_noc::shard::set_default_shards(1);
    cps
}

/// Times a small rate sweep on the engine with a given worker count.
fn sweep_seconds(jobs: usize, rates: &[f64], cycles: u64) -> f64 {
    let spec = ChipletSystemSpec::baseline();
    let cfg = NocConfig::default();
    let kind = SchemeKind::Upp(UppConfig::default());
    let windows = SweepWindows {
        warmup: cycles / 10,
        measure: cycles,
    };
    let start = Instant::now();
    black_box(SweepEngine::new(jobs).map(rates, |_, &rate| {
        run_point(
            &spec,
            &cfg,
            &kind,
            0,
            Pattern::UniformRandom,
            rate,
            windows,
            2022,
        )
    }));
    start.elapsed().as_secs_f64()
}

/// Cycles/sec of the UPP kernel with the telemetry registry disabled vs
/// enabled, on identical traffic. `off` runs every obs call site behind
/// the closed gate — the configuration the perf gate pins — so the
/// on/off ratio is the registry's whole cost.
fn obs_cycles_per_sec(enable: bool, cycles: u64) -> f64 {
    let spec = ChipletSystemSpec::baseline();
    let built = build_system(
        &spec,
        NocConfig::default(),
        &SchemeKind::Upp(UppConfig::default()),
        0,
        2022,
        ConsumePolicy::Immediate { latency: 1 },
    );
    let mut sys = built.sys;
    if enable {
        sys.net_mut().enable_obs();
    }
    let mut traffic = SyntheticTraffic::new(sys.net().topo(), Pattern::UniformRandom, 0.06, 2022);
    let start = Instant::now();
    for c in 0..cycles {
        traffic.tick(&mut sys);
        sys.step();
        if c.is_multiple_of(100) {
            sys.observe();
        }
    }
    let secs = start.elapsed().as_secs_f64();
    black_box(sys.net().stats().flits_ejected);
    cycles as f64 / secs
}

/// End-of-run kernel memory footprint of one benched configuration.
/// Unlike the cycles/sec numbers this is *deterministic* — same config,
/// seed and cycle count give byte-identical reports on any machine and
/// any `--shards` value — so regressions here are exact, not statistical.
fn mem_footprint(vcs: usize, cycles: u64) -> upp_noc::network::MemReport {
    let spec = ChipletSystemSpec::baseline();
    let built = build_system(
        &spec,
        NocConfig::default().with_vcs_per_vnet(vcs),
        &SchemeKind::Upp(UppConfig::default()),
        0,
        2022,
        ConsumePolicy::Immediate { latency: 1 },
    );
    let mut sys = built.sys;
    let mut traffic = SyntheticTraffic::new(sys.net().topo(), Pattern::UniformRandom, 0.06, 2022);
    for _ in 0..cycles {
        traffic.tick(&mut sys);
        sys.step();
    }
    sys.net().mem_report()
}

/// One active-set-scheduler scenario: injects uniform-random traffic at
/// `rate` for `inject_cycles`, optionally drains the tail afterwards, and
/// returns `(cycles/sec, mean active-router fraction)`. The scheduler is
/// toggled per run (no env vars), so on/off pairs are directly comparable.
fn scheduler_scenario(
    kind: &SchemeKind,
    rate: f64,
    inject_cycles: u64,
    drain_tail: bool,
    scheduler: bool,
) -> (f64, f64) {
    let spec = ChipletSystemSpec::baseline();
    let cfg = NocConfig::default();
    let built = build_system(
        &spec,
        cfg,
        kind,
        0,
        2022,
        ConsumePolicy::Immediate { latency: 1 },
    );
    let mut sys = built.sys;
    sys.net_mut().set_active_scheduler(scheduler);
    let mut traffic = SyntheticTraffic::new(sys.net().topo(), Pattern::UniformRandom, rate, 2022);
    let start = Instant::now();
    for _ in 0..inject_cycles {
        traffic.tick(&mut sys);
        sys.step();
    }
    if drain_tail {
        black_box(sys.run_until_drained(1_000_000));
    }
    let secs = start.elapsed().as_secs_f64();
    let cycles = sys.net().cycle();
    (cycles as f64 / secs, sys.net().active_router_fraction())
}

/// Scenario record for `BENCH_sweep.json`: scheduler-on vs always-tick
/// cycles/sec, their ratio, and the scheduler's mean active-router
/// fraction.
struct ScenarioSummary {
    name: &'static str,
    cps_on: f64,
    cps_off: f64,
    active_fraction: f64,
}

impl ScenarioSummary {
    fn measure(
        name: &'static str,
        kind: &SchemeKind,
        rate: f64,
        inject_cycles: u64,
        drain_tail: bool,
    ) -> Self {
        let (cps_on, active_fraction) =
            scheduler_scenario(kind, rate, inject_cycles, drain_tail, true);
        let (cps_off, _) = scheduler_scenario(kind, rate, inject_cycles, drain_tail, false);
        Self {
            name,
            cps_on,
            cps_off,
            active_fraction,
        }
    }

    fn json(&self) -> String {
        format!(
            "\"{}\": {{\"cycles_per_sec\": {:.0}, \"always_tick_cycles_per_sec\": {:.0}, \
             \"speedup\": {:.2}, \"active_router_fraction\": {:.4}}}",
            self.name,
            self.cps_on,
            self.cps_off,
            self.cps_on / self.cps_off,
            self.active_fraction,
        )
    }
}

fn sim_throughput(c: &mut Criterion) {
    let cycles = measure_cycles(quick());
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.bench_function("upp_1vc", |b| {
        b.iter(|| kernel_cycles_per_sec(&SchemeKind::Upp(UppConfig::default()), 1, 0.06, cycles))
    });
    group.bench_function("upp_4vc", |b| {
        b.iter(|| kernel_cycles_per_sec(&SchemeKind::Upp(UppConfig::default()), 4, 0.06, cycles))
    });
    group.bench_function("no_scheme_1vc", |b| {
        b.iter(|| kernel_cycles_per_sec(&SchemeKind::None, 1, 0.03, cycles))
    });
    group.finish();
}

criterion_group!(benches, sim_throughput);

/// Runs the criterion report, then records the machine-readable summary.
fn main() {
    benches();

    let q = quick();
    let cycles = measure_cycles(q);
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let upp = SchemeKind::Upp(UppConfig::default());
    let upp_1vc = kernel_cycles_per_sec(&upp, 1, 0.06, cycles);
    let upp_4vc = kernel_cycles_per_sec(&upp, 4, 0.06, cycles);
    let none_1vc = kernel_cycles_per_sec(&SchemeKind::None, 1, 0.03, cycles);
    let obs_off = obs_cycles_per_sec(false, cycles);
    let obs_on = obs_cycles_per_sec(true, cycles);

    // Sharded-kernel scaling (byte-identical results at every shard
    // count; only wall-clock may differ). `shards1` is the serial path
    // re-measured — the perf gate pins it within 5% of `upp_1vc`.
    let shards1 = kernel_cycles_per_sec_sharded(&upp, 1, 0.06, cycles, 1);
    let shards2 = kernel_cycles_per_sec_sharded(&upp, 1, 0.06, cycles, 2);
    let shards4 = kernel_cycles_per_sec_sharded(&upp, 1, 0.06, cycles, 4);

    let rates: Vec<f64> = if q {
        vec![0.02, 0.05, 0.08, 0.11]
    } else {
        vec![0.01, 0.03, 0.05, 0.07, 0.09, 0.11, 0.13, 0.15]
    };
    let serial = sweep_seconds(1, &rates, cycles);
    let jobs4 = sweep_seconds(4, &rates, cycles);

    // Kernel heap footprint of the two pinned configurations (exact,
    // machine-independent numbers — see `mem_footprint`).
    let mem_1vc = serde_json::to_string(&mem_footprint(1, cycles))
        .expect("mem report serialization is infallible");
    let mem_4vc = serde_json::to_string(&mem_footprint(4, cycles))
        .expect("mem report serialization is infallible");

    // Active-set scheduler scenarios (on vs always-tick, same seed and
    // traffic): a saturated run where most routers stay busy, a
    // low-injection-rate run where most sit idle, and a drain tail where
    // injection stops and the quiescent gaps fast-forward.
    let scenarios = [
        ScenarioSummary::measure("saturated", &upp, 0.10, cycles, false),
        ScenarioSummary::measure("low_rate", &upp, 0.02, cycles, false),
        ScenarioSummary::measure("drain_tail", &upp, 0.06, cycles / 4, true),
    ];
    let scenarios_json = scenarios
        .iter()
        .map(|s| format!("    {}", s.json()))
        .collect::<Vec<_>>()
        .join(",\n");

    let json = format!(
        "{{\n  \"bench\": \"sim_throughput\",\n  \"quick\": {q},\n  \
         \"hardware_threads\": {threads},\n  \"measure_cycles\": {cycles},\n  \
         \"cycles_per_sec\": {{\n    \"upp_1vc\": {upp_1vc:.0},\n    \
         \"upp_4vc\": {upp_4vc:.0},\n    \"no_scheme_1vc\": {none_1vc:.0},\n    \
         \"upp_1vc_obs_off\": {obs_off:.0},\n    \
         \"upp_1vc_shards1\": {shards1:.0}\n  }},\n  \
         \"obs\": {{\n    \"cycles_per_sec_disabled\": {obs_off:.0},\n    \
         \"cycles_per_sec_enabled\": {obs_on:.0},\n    \
         \"enabled_over_disabled\": {:.3}\n  }},\n  \
         \"shards\": {{\n    \"cycles_per_sec_shards1\": {shards1:.0},\n    \
         \"cycles_per_sec_shards2\": {shards2:.0},\n    \
         \"cycles_per_sec_shards4\": {shards4:.0},\n    \
         \"speedup_shards4\": {:.2}\n  }},\n  \
         \"mem\": {{\n    \"upp_1vc\": {mem_1vc},\n    \
         \"upp_4vc\": {mem_4vc}\n  }},\n  \
         \"sweep\": {{\n    \"rates\": {},\n    \"serial_secs\": {serial:.3},\n    \
         \"jobs4_secs\": {jobs4:.3},\n    \"speedup_jobs4\": {:.2}\n  }},\n  \
         \"scheduler_scenarios\": {{\n{scenarios_json}\n  }}\n}}\n",
        obs_on / obs_off,
        shards4 / shards1,
        rates.len(),
        serial / jobs4,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}
