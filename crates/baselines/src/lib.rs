//! # upp-baselines — modular deadlock-freedom baselines
//!
//! The two state-of-the-art modular schemes the UPP paper compares against,
//! plus the unprotected reference:
//!
//! * [`composable`] — composable routing (Yin et al., ISCA'18): boundary
//!   turn restrictions found by an extended-CDG search; deadlock *avoidance*
//!   at the cost of path diversity and load balance.
//! * [`remote`] — remote control (Majumder et al., TC'21): injection control
//!   over a permission subnetwork plus packet-sized isolation buffers at
//!   boundary routers; full path diversity but a per-packet reservation
//!   latency.
//! * The unprotected reference is [`upp_noc::scheme::NoScheme`].
//!
//! # Example
//!
//! ```
//! use upp_baselines::composable::Composable;
//! use upp_noc::topology::ChipletSystemSpec;
//!
//! let topo = ChipletSystemSpec::baseline().build(0).expect("valid spec");
//! let (scheme, _routing) = Composable::build(&topo).expect("search succeeds");
//! assert!(!scheme.config().restrictions().is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod composable;
pub mod remote;

pub use composable::{Composable, ComposableConfig, ComposableError};
pub use remote::{RemoteControl, RemoteControlConfig, RemoteControlStats};
