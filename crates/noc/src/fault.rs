//! Dynamic fault injection: scheduled mid-run link failures/heals and
//! endpoint throttling.
//!
//! Unlike [`crate::topology::Topology::set_link_faulty`] applied at build
//! time (which routing tables can plan around), a [`FaultPlan`] mutates the
//! *running* network, so the adversarial stress campaigns of `upp-verify`
//! can exercise recovery schemes against conditions no routing function was
//! prepared for.
//!
//! # Fail-stop semantics
//!
//! Failing a link is **fail-stop on new traversals**:
//!
//! * flits and credits already staged on the link (events in the network's
//!   calendar) deliver normally — the calendar never consults the topology,
//!   so nothing in flight is dropped or duplicated;
//! * from the fault cycle on, no router bids for, claims, or forwards over
//!   the dead link (normal switch allocation, the control subnetwork, the
//!   bypass path, and absorber re-injection all re-check link liveness every
//!   cycle);
//! * **credit returns always use the physical link** (they model dedicated
//!   reverse wires): upstream credit counters stay consistent across a
//!   fail/heal pair, so transmission resumes exactly where it stopped once
//!   the link heals;
//! * routing is *not* recomputed mid-run — a packet whose computed route
//!   crosses a dead link simply waits for the heal. Every generated plan
//!   therefore heals each failed link (and resumes each paused endpoint)
//!   before the run's horizon, guaranteeing eventual progress for correct
//!   schemes.
//!
//! Endpoint throttling pauses a node's NI: `PauseInjection` stops new flits
//! entering the network at that node (queued packets stay queued),
//! `PauseConsumption` stops the PE draining delivered packets, filling the
//! ejection queue and exerting real backpressure into the network.

use crate::ids::{Cycle, NodeId, Port};
use crate::network::Network;
use crate::topology::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// One scheduled fault action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultAction {
    /// Fail the bidirectional link leaving `node` through `port`.
    FailLink {
        /// Node on one side of the link.
        node: NodeId,
        /// Port the link leaves through.
        port: Port,
    },
    /// Heal a previously-failed link.
    HealLink {
        /// Node on one side of the link.
        node: NodeId,
        /// Port the link leaves through.
        port: Port,
    },
    /// Stop the node's NI from injecting flits.
    PauseInjection {
        /// The throttled endpoint.
        node: NodeId,
    },
    /// Resume injection at the node.
    ResumeInjection {
        /// The throttled endpoint.
        node: NodeId,
    },
    /// Stop the node's PE from consuming delivered packets.
    PauseConsumption {
        /// The throttled endpoint.
        node: NodeId,
    },
    /// Resume consumption at the node.
    ResumeConsumption {
        /// The throttled endpoint.
        node: NodeId,
    },
}

/// A fault action with its scheduled cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct FaultEvent {
    /// Cycle the action fires (applied before the cycle's scheme hooks).
    pub at: Cycle,
    /// The action.
    pub action: FaultAction,
}

/// An ordered schedule of fault actions applied to a running [`Network`].
///
/// Drive it by calling [`FaultPlan::apply_due`] once per cycle (before
/// stepping the network). Events fire in schedule order; ties on the same
/// cycle fire in insertion order.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    next: usize,
}

impl FaultPlan {
    /// An empty plan (applies nothing).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a plan from explicit events (stably sorted by cycle).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        Self { events, next: 0 }
    }

    /// Appends an action at `at` (keeps the schedule sorted).
    pub fn push(&mut self, at: Cycle, action: FaultAction) {
        debug_assert_eq!(self.next, 0, "cannot extend a plan mid-run");
        self.events.push(FaultEvent { at, action });
        self.events.sort_by_key(|e| e.at);
    }

    /// The full schedule.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True once every event has fired.
    pub fn exhausted(&self) -> bool {
        self.next >= self.events.len()
    }

    /// Rewinds the plan so it can drive another run.
    pub fn reset(&mut self) {
        self.next = 0;
    }

    /// Applies every event scheduled at or before the network's current
    /// cycle. Returns the number of events applied.
    pub fn apply_due(&mut self, net: &mut Network) -> usize {
        let now = net.cycle();
        let mut applied = 0;
        while let Some(ev) = self.events.get(self.next) {
            if ev.at > now {
                break;
            }
            match ev.action {
                FaultAction::FailLink { node, port } => net.inject_link_fault(node, port),
                FaultAction::HealLink { node, port } => net.heal_link_fault(node, port),
                FaultAction::PauseInjection { node } => net.set_injection_paused(node, true),
                FaultAction::ResumeInjection { node } => net.set_injection_paused(node, false),
                FaultAction::PauseConsumption { node } => net.set_consumption_paused(node, true),
                FaultAction::ResumeConsumption { node } => {
                    net.set_consumption_paused(node, false);
                }
            }
            self.next += 1;
            applied += 1;
        }
        applied
    }

    /// Generates a seeded random plan over `topo`: up to `link_faults`
    /// fail/heal pairs and up to `throttles` endpoint pause/resume pairs,
    /// all within `[horizon/8, horizon * 3/4]` so every fault is healed and
    /// every endpoint resumed well before `horizon`.
    ///
    /// Each candidate link fault is checked against
    /// [`Topology::validate`] *in schedule order* (on a scratch topology
    /// carrying all concurrently-active faults), so the plan never
    /// disconnects a region or severs a chiplet's last vertical link.
    pub fn random(
        topo: &Topology,
        seed: u64,
        horizon: Cycle,
        link_faults: usize,
        throttles: usize,
    ) -> Self {
        const PLAN_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut rng = SmallRng::seed_from_u64(seed ^ PLAN_SALT);
        let lo = (horizon / 8).max(1);
        let hi = (horizon * 3 / 4).max(lo + 1);
        let mut events = Vec::new();

        // Candidate links: every directed link once (canonical direction =
        // smaller node id first).
        let mut links: Vec<(NodeId, Port)> = Vec::new();
        for n in topo.nodes() {
            for (p, peer) in n.links() {
                if n.id < peer {
                    links.push((n.id, p));
                }
            }
        }
        let mut scratch = topo.clone();
        let mut windows: Vec<(Cycle, Cycle, NodeId, Port)> = Vec::new();
        for _ in 0..link_faults {
            if links.is_empty() {
                break;
            }
            let (node, port) = links[rng.gen_range(0..links.len())];
            let fail_at = rng.gen_range(lo..hi);
            let heal_at = rng.gen_range(fail_at + 1..hi + 1);
            // One window per physical link keeps fail/heal pairs unambiguous.
            if windows
                .iter()
                .any(|&(_, _, n2, p2)| (n2, p2) == (node, port))
            {
                continue;
            }
            scratch.set_link_faulty(node, port);
            for &(f, h, n2, p2) in &windows {
                if f < heal_at && fail_at < h && !scratch.is_link_faulty(n2, p2) {
                    scratch.set_link_faulty(n2, p2);
                }
            }
            let ok = scratch.validate().is_ok();
            // Reset scratch to no faults for the next candidate.
            scratch.clear_link_fault(node, port);
            for &(_, _, n2, p2) in &windows {
                scratch.clear_link_fault(n2, p2);
            }
            if !ok {
                continue;
            }
            windows.push((fail_at, heal_at, node, port));
            events.push(FaultEvent {
                at: fail_at,
                action: FaultAction::FailLink { node, port },
            });
            events.push(FaultEvent {
                at: heal_at,
                action: FaultAction::HealLink { node, port },
            });
        }

        // Endpoint throttles over chiplet routers (the traffic endpoints).
        let endpoints: Vec<NodeId> = topo
            .chiplets()
            .iter()
            .flat_map(|c| c.routers.iter().copied())
            .collect();
        for _ in 0..throttles {
            if endpoints.is_empty() {
                break;
            }
            let node = endpoints[rng.gen_range(0..endpoints.len())];
            let pause_at = rng.gen_range(lo..hi);
            let resume_at = rng.gen_range(pause_at + 1..hi + 1);
            if rng.gen_bool(0.5) {
                events.push(FaultEvent {
                    at: pause_at,
                    action: FaultAction::PauseInjection { node },
                });
                events.push(FaultEvent {
                    at: resume_at,
                    action: FaultAction::ResumeInjection { node },
                });
            } else {
                events.push(FaultEvent {
                    at: pause_at,
                    action: FaultAction::PauseConsumption { node },
                });
                events.push(FaultEvent {
                    at: resume_at,
                    action: FaultAction::ResumeConsumption { node },
                });
            }
        }
        Self::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ChipletSystemSpec;

    #[test]
    fn random_plans_pair_every_disruption() {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        for seed in 0..20 {
            let plan = FaultPlan::random(&topo, seed, 4_000, 3, 2);
            let mut active_faults = std::collections::HashSet::new();
            let mut paused = std::collections::HashSet::new();
            for ev in plan.events() {
                assert!(ev.at < 4_000 * 3 / 4 + 1, "disruption past the window");
                match ev.action {
                    FaultAction::FailLink { node, port } => {
                        assert!(active_faults.insert((node, port)));
                    }
                    FaultAction::HealLink { node, port } => {
                        assert!(active_faults.remove(&(node, port)));
                    }
                    FaultAction::PauseInjection { node } => {
                        paused.insert(("inj", node));
                    }
                    FaultAction::ResumeInjection { node } => {
                        paused.remove(&("inj", node));
                    }
                    FaultAction::PauseConsumption { node } => {
                        paused.insert(("con", node));
                    }
                    FaultAction::ResumeConsumption { node } => {
                        paused.remove(&("con", node));
                    }
                }
            }
            assert!(active_faults.is_empty(), "every fault heals (seed {seed})");
            assert!(paused.is_empty(), "every pause resumes (seed {seed})");
        }
    }

    #[test]
    fn random_plans_are_deterministic() {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let a = FaultPlan::random(&topo, 7, 4_000, 4, 4);
        let b = FaultPlan::random(&topo, 7, 4_000, 4, 4);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn schedule_is_sorted_and_applies_in_order() {
        let mut plan = FaultPlan::new(vec![
            FaultEvent {
                at: 10,
                action: FaultAction::PauseInjection { node: NodeId(0) },
            },
            FaultEvent {
                at: 5,
                action: FaultAction::PauseConsumption { node: NodeId(1) },
            },
        ]);
        assert_eq!(plan.events()[0].at, 5);
        assert!(!plan.exhausted());
        plan.reset();
        assert_eq!(plan.events().len(), 2);
    }
}
