//! Conservation invariants across the whole configuration space: for random
//! (topology, scheme, seed, fault-set) tuples, every packet injected is
//! eventually ejected, flit counts balance exactly, and the network drains
//! completely — i.e. neither the recovery schemes (UPP popups, remote
//! control absorption) nor fault rerouting ever lose or duplicate traffic.

use proptest::prelude::*;
use upp_core::UppConfig;
use upp_noc::config::NocConfig;
use upp_noc::ni::ConsumePolicy;
use upp_noc::sim::RunOutcome;
use upp_noc::topology::{ChipletSystemSpec, SystemKind};
use upp_workloads::runner::{build_system, SchemeKind};
use upp_workloads::synthetic::{Pattern, SyntheticTraffic};

/// Scheme choices: UPP (two detection thresholds), composable restrictions,
/// and the remote-control baseline. `SchemeKind::None` is deliberately
/// excluded — an unprotected network is *allowed* to deadlock, so the
/// drain/conservation property does not apply to it.
fn schemes() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        Just(SchemeKind::Upp(UppConfig::default())),
        Just(SchemeKind::Upp(UppConfig::with_threshold(6))),
        Just(SchemeKind::Composable),
        Just(SchemeKind::RemoteControl),
    ]
}

fn systems() -> impl Strategy<Value = SystemKind> {
    prop_oneof![
        Just(SystemKind::Baseline),
        Just(SystemKind::BoundaryCount(2)),
        Just(SystemKind::BoundaryCount(8)),
    ]
}

fn patterns() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        Just(Pattern::UniformRandom),
        Just(Pattern::Transpose),
        Just(Pattern::BitComplement),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn no_packet_is_lost_or_duplicated(
        system in systems(),
        kind in schemes(),
        pattern in patterns(),
        vcs in prop_oneof![Just(1usize), Just(2)],
        faults in 0usize..6,
        seed in 0u64..10_000,
        rate_milli in 10u64..80,
    ) {
        // The composable search requires a fault-free system (Sec. VI-B).
        prop_assume!(faults == 0 || !matches!(kind, SchemeKind::Composable));
        let spec = ChipletSystemSpec::of_kind(system);
        let cfg = NocConfig::default().with_vcs_per_vnet(vcs);
        let built = build_system(
            &spec,
            cfg,
            &kind,
            faults,
            seed,
            ConsumePolicy::Immediate { latency: 1 },
        );
        let mut sys = built.sys;
        let rate = rate_milli as f64 / 1000.0;
        let mut traffic = SyntheticTraffic::new(sys.net().topo(), pattern, rate, seed);
        for _ in 0..600 {
            traffic.tick(&mut sys);
            sys.step();
        }
        let out = sys.run_until_drained(300_000);
        prop_assert!(
            matches!(out, RunOutcome::Drained { .. }),
            "network failed to drain under a deadlock-free scheme: {out:?}"
        );
        let stats = sys.net().stats();
        prop_assert_eq!(
            stats.packets_created, stats.packets_ejected,
            "packet loss/duplication: {} created, {} ejected",
            stats.packets_created, stats.packets_ejected
        );
        prop_assert_eq!(
            stats.flits_injected, stats.flits_ejected,
            "flit imbalance: {} injected, {} ejected",
            stats.flits_injected, stats.flits_ejected
        );
    }
}
