//! Aggregating packet spans into a profile summary.
//!
//! A [`ProfileSummary`] is the unit of the `upp-trace` toolchain: the
//! `simulate --profile` driver streams [`PacketSpan`]s into one as the run
//! progresses (so million-packet runs never materialise a trace file), and
//! `upp-trace analyze` builds the same structure from a JSONL
//! flight-recorder trace. Both paths produce byte-identical JSON for the
//! same run, which is what the committed CI goldens pin.

use std::io::BufRead;

use serde_json::Value;
use upp_noc::ids::NodeId;
use upp_noc::profile::{PacketSpan, SpanRecorder};

use crate::events::{parse_line, Parsed};
use crate::histogram::Histogram;

/// How many slowest packets a summary retains for critical-path analysis.
pub const SLOWEST_KEPT: usize = 16;

/// Cycle totals per latency phase, summed over packets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Source-NI queueing (create -> inject).
    pub inj_queue: u64,
    /// Blocked VC-cycles waiting for a free downstream VC.
    pub vc_alloc: u64,
    /// Blocked VC-cycles lost to switch allocation.
    pub sa_wait: u64,
    /// Blocked VC-cycles waiting for downstream credits.
    pub credit: u64,
    /// UPP recovery: waiting for the `UPP_ack`.
    pub wait_ack: u64,
    /// UPP recovery: locating a partly-transmitted head.
    pub locate: u64,
    /// UPP recovery: popping flits through the bypass path.
    pub pop: u64,
    /// Residual pipeline + link serialization cycles.
    pub serialization: u64,
}

impl PhaseTotals {
    /// Phase labels, in rendering order (matches [`PhaseTotals::values`]).
    pub const LABELS: [&'static str; 8] = [
        "inj_queue",
        "vc_alloc",
        "sa_wait",
        "credit",
        "wait_ack",
        "locate",
        "pop",
        "serialization",
    ];

    /// Phase totals in the order of [`PhaseTotals::LABELS`].
    pub fn values(&self) -> [u64; 8] {
        [
            self.inj_queue,
            self.vc_alloc,
            self.sa_wait,
            self.credit,
            self.wait_ack,
            self.locate,
            self.pop,
            self.serialization,
        ]
    }

    /// Adds one span's phase cycles.
    pub fn add_span(&mut self, s: &PacketSpan) {
        self.inj_queue += s.inj_queue;
        self.vc_alloc += s.vc_alloc;
        self.sa_wait += s.sa_wait;
        self.credit += s.credit;
        self.wait_ack += s.wait_ack;
        self.locate += s.locate;
        self.pop += s.pop;
        self.serialization += s.serialization;
    }

    /// Total UPP-recovery cycles.
    pub fn upp_recovery(&self) -> u64 {
        self.wait_ack + self.locate + self.pop
    }

    /// Adds another total, field by field.
    pub fn add(&mut self, other: &PhaseTotals) {
        self.inj_queue += other.inj_queue;
        self.vc_alloc += other.vc_alloc;
        self.sa_wait += other.sa_wait;
        self.credit += other.credit;
        self.wait_ack += other.wait_ack;
        self.locate += other.locate;
        self.pop += other.pop;
        self.serialization += other.serialization;
    }

    fn to_json(self) -> String {
        let mut out = String::from("{");
        for (i, (label, v)) in Self::LABELS.iter().zip(self.values()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{label}\":{v}"));
        }
        out.push('}');
        out
    }

    fn from_value(v: &Value) -> Option<Self> {
        Some(Self {
            inj_queue: v.get("inj_queue")?.as_u64()?,
            vc_alloc: v.get("vc_alloc")?.as_u64()?,
            sa_wait: v.get("sa_wait")?.as_u64()?,
            credit: v.get("credit")?.as_u64()?,
            wait_ack: v.get("wait_ack")?.as_u64()?,
            locate: v.get("locate")?.as_u64()?,
            pop: v.get("pop")?.as_u64()?,
            serialization: v.get("serialization")?.as_u64()?,
        })
    }
}

/// Aggregated latency attribution for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileSummary {
    /// System shape label the run used (drives heatmap topology lookup;
    /// may be empty for raw traces).
    pub system: String,
    /// Scheme label the run used.
    pub scheme: String,
    /// Delivered packets profiled.
    pub packets: u64,
    /// Completed popups observed.
    pub popups: u64,
    /// Normal-path hops summed over packets (VC grants).
    pub hops: u64,
    /// Popup bypass hops summed over packets.
    pub bypass_hops: u64,
    /// Phase cycle totals over all packets.
    pub phases: PhaseTotals,
    /// Network-latency distribution (inject -> eject).
    pub net: Histogram,
    /// Total-latency distribution (create -> eject).
    pub total: Histogram,
    /// Blocked VC-cycles per router, dense by node index.
    pub router_blocked: Vec<u64>,
    /// Blocked VC-cycles per directed link, flat-indexed
    /// `node * Port::COUNT + port`.
    pub link_blocked: Vec<u64>,
    /// The slowest packets by total latency (at most [`SLOWEST_KEPT`]),
    /// slowest first; ties break toward the smaller packet id.
    pub slowest: Vec<PacketSpan>,
}

fn add_elementwise(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d += s;
    }
}

fn slower(a: &PacketSpan, b: &PacketSpan) -> std::cmp::Ordering {
    b.total_latency()
        .cmp(&a.total_latency())
        .then(a.packet.0.cmp(&b.packet.0))
}

impl ProfileSummary {
    /// An empty summary labelled with the run's system and scheme.
    pub fn new(system: impl Into<String>, scheme: impl Into<String>) -> Self {
        Self {
            system: system.into(),
            scheme: scheme.into(),
            ..Self::default()
        }
    }

    /// Folds one finished span into the aggregate.
    pub fn absorb_span(&mut self, s: &PacketSpan) {
        self.packets += 1;
        self.hops += u64::from(s.hops);
        self.bypass_hops += u64::from(s.bypass_hops);
        self.phases.add_span(s);
        self.net.record(s.net_latency());
        self.total.record(s.total_latency());
        if self.slowest.len() < SLOWEST_KEPT
            || slower(s, self.slowest.last().expect("non-empty")).is_lt()
        {
            self.slowest.push(s.clone());
            self.slowest.sort_by(slower);
            self.slowest.truncate(SLOWEST_KEPT);
        }
    }

    /// Folds the recorder's aggregate counters (per-router/per-link blocked
    /// cycles, popup count) into the summary and absorbs any still-buffered
    /// finished spans. Call exactly once per recorder, at end of run — the
    /// counters are cumulative, so adding a recorder twice double-counts.
    pub fn absorb_recorder(&mut self, rec: &mut SpanRecorder) {
        for s in rec.drain_finished() {
            self.absorb_span(&s);
        }
        add_elementwise(&mut self.router_blocked, rec.router_blocked());
        add_elementwise(&mut self.link_blocked, rec.link_blocked());
        self.popups += rec.popups();
    }

    /// Merges another summary into this one: counters add, histograms
    /// merge exactly, and the slowest list keeps the overall top
    /// [`SLOWEST_KEPT`]. Labels are kept from `self`; merging runs of
    /// different systems or schemes is the caller's judgement call (e.g.
    /// aggregating a campaign per scheme).
    pub fn merge(&mut self, other: &ProfileSummary) {
        self.packets += other.packets;
        self.popups += other.popups;
        self.hops += other.hops;
        self.bypass_hops += other.bypass_hops;
        self.phases.add(&other.phases);
        self.net.merge(&other.net);
        self.total.merge(&other.total);
        add_elementwise(&mut self.router_blocked, &other.router_blocked);
        add_elementwise(&mut self.link_blocked, &other.link_blocked);
        self.slowest.extend(other.slowest.iter().cloned());
        self.slowest.sort_by(slower);
        self.slowest.truncate(SLOWEST_KEPT);
    }

    /// Builds a summary by replaying a JSONL flight-recorder trace through
    /// a [`SpanRecorder`]. Returns the summary plus the count of malformed
    /// lines skipped.
    pub fn from_jsonl<R: BufRead>(
        reader: R,
        system: impl Into<String>,
        scheme: impl Into<String>,
    ) -> std::io::Result<(Self, u64)> {
        let mut summary = Self::new(system, scheme);
        let mut rec = SpanRecorder::new();
        let mut malformed = 0u64;
        for line in reader.lines() {
            match parse_line(&line?) {
                Parsed::Event(ev) => {
                    rec.observe(&ev);
                    // Keep memory bounded on huge traces.
                    if rec.finished().len() >= 4096 {
                        for s in rec.drain_finished() {
                            summary.absorb_span(&s);
                        }
                    }
                }
                Parsed::Irrelevant => {}
                Parsed::Malformed => malformed += 1,
            }
        }
        summary.absorb_recorder(&mut rec);
        Ok((summary, malformed))
    }

    /// Mean cycles per packet for each phase, in [`PhaseTotals::LABELS`]
    /// order.
    pub fn phase_means(&self) -> [f64; 8] {
        let n = self.packets.max(1) as f64;
        self.phases.values().map(|v| v as f64 / n)
    }

    /// Renders the summary as one deterministic JSON document.
    pub fn to_json(&self) -> String {
        let mut slowest = String::new();
        for (i, s) in self.slowest.iter().enumerate() {
            if i > 0 {
                slowest.push(',');
            }
            let mut waits = String::new();
            for (j, (n, c)) in s.waits.iter().enumerate() {
                if j > 0 {
                    waits.push(',');
                }
                waits.push_str(&format!("[{},{}]", n.0, c));
            }
            slowest.push_str(&format!(
                "{{\"packet\":{},\"src\":{},\"dest\":{},\"vnet\":{},\"len_flits\":{},\
                 \"created_at\":{},\"injected_at\":{},\"ejected_at\":{},\
                 \"inj_queue\":{},\"vc_alloc\":{},\"sa_wait\":{},\"credit\":{},\
                 \"wait_ack\":{},\"locate\":{},\"pop\":{},\"serialization\":{},\
                 \"hops\":{},\"bypass_hops\":{},\"waits\":[{waits}]}}",
                s.packet.0,
                s.src.0,
                s.dest.0,
                s.vnet.0,
                s.len_flits,
                s.created_at,
                s.injected_at,
                s.ejected_at,
                s.inj_queue,
                s.vc_alloc,
                s.sa_wait,
                s.credit,
                s.wait_ack,
                s.locate,
                s.pop,
                s.serialization,
                s.hops,
                s.bypass_hops,
            ));
        }
        let join = |v: &[u64]| {
            v.iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{{\n\"upp_profile\":1,\n\"system\":{},\n\"scheme\":{},\n\
             \"packets\":{},\n\"popups\":{},\n\"hops\":{},\n\"bypass_hops\":{},\n\
             \"phases\":{},\n\"net\":{},\n\"total\":{},\n\
             \"router_blocked\":[{}],\n\"link_blocked\":[{}],\n\"slowest\":[{slowest}]\n}}\n",
            serde_json::to_string(&self.system.as_str()).expect("infallible"),
            serde_json::to_string(&self.scheme.as_str()).expect("infallible"),
            self.packets,
            self.popups,
            self.hops,
            self.bypass_hops,
            self.phases.to_json(),
            self.net.to_json(),
            self.total.to_json(),
            join(&self.router_blocked),
            join(&self.link_blocked),
        )
    }

    /// Rebuilds a summary from the [`ProfileSummary::to_json`] document.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e:?}"))?;
        Self::from_value(&v).ok_or_else(|| "not an upp_profile document".into())
    }

    /// True when a parsed JSON value looks like a profile document.
    pub fn is_profile_value(v: &Value) -> bool {
        v.get("upp_profile").and_then(|p| p.as_u64()) == Some(1)
    }

    fn from_value(v: &Value) -> Option<Self> {
        if !Self::is_profile_value(v) {
            return None;
        }
        let vec_u64 = |key: &str| -> Option<Vec<u64>> {
            v.get(key)?.as_array()?.iter().map(|x| x.as_u64()).collect()
        };
        let mut slowest = Vec::new();
        for s in v.get("slowest")?.as_array()? {
            let mut waits = Vec::new();
            for pair in s.get("waits")?.as_array()? {
                let p = pair.as_array()?;
                waits.push((NodeId(p.first()?.as_u64()? as u32), p.get(1)?.as_u64()?));
            }
            slowest.push(PacketSpan {
                packet: upp_noc::ids::PacketId(s.get("packet")?.as_u64()?),
                src: NodeId(s.get("src")?.as_u64()? as u32),
                dest: NodeId(s.get("dest")?.as_u64()? as u32),
                vnet: upp_noc::ids::VnetId(s.get("vnet")?.as_u64()? as u8),
                len_flits: s.get("len_flits")?.as_u64()? as u16,
                created_at: s.get("created_at")?.as_u64()?,
                injected_at: s.get("injected_at")?.as_u64()?,
                ejected_at: s.get("ejected_at")?.as_u64()?,
                inj_queue: s.get("inj_queue")?.as_u64()?,
                vc_alloc: s.get("vc_alloc")?.as_u64()?,
                sa_wait: s.get("sa_wait")?.as_u64()?,
                credit: s.get("credit")?.as_u64()?,
                wait_ack: s.get("wait_ack")?.as_u64()?,
                locate: s.get("locate")?.as_u64()?,
                pop: s.get("pop")?.as_u64()?,
                serialization: s.get("serialization")?.as_u64()?,
                hops: s.get("hops")?.as_u64()? as u32,
                bypass_hops: s.get("bypass_hops")?.as_u64()? as u32,
                waits,
            });
        }
        Some(Self {
            system: v.get("system")?.as_str()?.to_string(),
            scheme: v.get("scheme")?.as_str()?.to_string(),
            packets: v.get("packets")?.as_u64()?,
            popups: v.get("popups")?.as_u64()?,
            hops: v.get("hops")?.as_u64()?,
            bypass_hops: v.get("bypass_hops")?.as_u64()?,
            phases: PhaseTotals::from_value(v.get("phases")?)?,
            net: Histogram::from_value(v.get("net")?)?,
            total: Histogram::from_value(v.get("total")?)?,
            router_blocked: vec_u64("router_blocked")?,
            link_blocked: vec_u64("link_blocked")?,
            slowest,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upp_noc::ids::{PacketId, VnetId};

    fn span(id: u64, total: u64) -> PacketSpan {
        PacketSpan {
            packet: PacketId(id),
            src: NodeId(0),
            dest: NodeId(9),
            vnet: VnetId(0),
            len_flits: 5,
            created_at: 0,
            injected_at: 2,
            ejected_at: total,
            inj_queue: 2,
            vc_alloc: 1,
            sa_wait: 0,
            credit: 3,
            wait_ack: 4,
            locate: 0,
            pop: 2,
            serialization: total.saturating_sub(12),
            hops: 6,
            bypass_hops: 1,
            waits: vec![(NodeId(4), 4)],
        }
    }

    #[test]
    fn absorbing_spans_keeps_slowest_and_totals() {
        let mut p = ProfileSummary::new("Baseline", "upp");
        for i in 0..40u64 {
            p.absorb_span(&span(i, 20 + i));
        }
        assert_eq!(p.packets, 40);
        assert_eq!(p.slowest.len(), SLOWEST_KEPT);
        assert_eq!(p.slowest[0].packet, PacketId(39), "slowest first");
        assert_eq!(p.phases.wait_ack, 160);
        assert_eq!(p.net.count(), 40);
    }

    #[test]
    fn merge_equals_absorbing_the_union() {
        let mut a = ProfileSummary::new("Baseline", "upp");
        let mut b = ProfileSummary::new("Baseline", "upp");
        let mut both = ProfileSummary::new("Baseline", "upp");
        for i in 0..25u64 {
            let s = span(i, 20 + 7 * i % 40);
            if i % 2 == 0 {
                a.absorb_span(&s);
            } else {
                b.absorb_span(&s);
            }
            both.absorb_span(&s);
        }
        a.router_blocked = vec![1, 2];
        b.router_blocked = vec![0, 5, 9];
        both.router_blocked = vec![1, 7, 9];
        a.popups = 2;
        b.popups = 3;
        both.popups = 5;
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.to_json(), both.to_json());
    }

    #[test]
    fn json_round_trips_byte_identically() {
        let mut p = ProfileSummary::new("Baseline", "scheme \"quoted\"");
        for i in 0..20u64 {
            p.absorb_span(&span(i, 30 + 3 * i));
        }
        p.router_blocked = vec![0, 5, 9];
        p.link_blocked = vec![0; 14];
        p.link_blocked[9] = 7;
        p.popups = 3;
        let text = p.to_json();
        let back = ProfileSummary::from_json(&text).expect("parses");
        assert_eq!(back, p);
        assert_eq!(back.to_json(), text, "round trip is byte-identical");
    }

    #[test]
    fn jsonl_replay_matches_direct_recorder_feed() {
        use upp_noc::trace::TraceEvent;
        // One packet through create/inject/block/eject, rendered to JSONL
        // then replayed.
        let events = vec![
            TraceEvent::PacketCreated {
                at: 0,
                packet: PacketId(1),
                src: NodeId(0),
                dest: NodeId(9),
                vnet: VnetId(0),
                len_flits: 3,
            },
            TraceEvent::PacketInjected {
                at: 2,
                packet: PacketId(1),
                node: NodeId(0),
            },
            TraceEvent::Blocked {
                at: 4,
                packet: PacketId(1),
                node: NodeId(3),
                in_port: upp_noc::ids::Port::West,
                vc_flat: 0,
                out_port: Some(upp_noc::ids::Port::East),
                reason: upp_noc::trace::BlockReason::Credit,
            },
            TraceEvent::PacketEjected {
                at: 20,
                packet: PacketId(1),
                node: NodeId(9),
                net_latency: 18,
                total_latency: 20,
            },
        ];
        let jsonl: String = events.iter().map(|e| e.jsonl() + "\n").collect::<String>();
        let (from_text, malformed) =
            ProfileSummary::from_jsonl(jsonl.as_bytes(), "Baseline", "upp").expect("reads");
        assert_eq!(malformed, 0);

        let mut rec = SpanRecorder::new();
        for e in &events {
            rec.observe(e);
        }
        let mut direct = ProfileSummary::new("Baseline", "upp");
        direct.absorb_recorder(&mut rec);
        assert_eq!(from_text, direct);
        assert_eq!(from_text.to_json(), direct.to_json());
    }
}
