//! Flow-control invariants: after the network drains, every credit has
//! returned (all output-VC mirrors are back at full depth and unowned), and
//! the pipeline timing model delivers flits at the documented cadence.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use upp_noc::config::NocConfig;
use upp_noc::ids::{NodeId, Port, VnetId};
use upp_noc::network::Network;
use upp_noc::ni::ConsumePolicy;
use upp_noc::routing::ChipletRouting;
use upp_noc::scheme::NoScheme;
use upp_noc::sim::{RunOutcome, System};
use upp_noc::topology::ChipletSystemSpec;

fn sys(vcs: usize, depth: usize, seed: u64) -> System {
    let topo = ChipletSystemSpec::baseline().build(0).unwrap();
    let cfg = NocConfig::default()
        .with_vcs_per_vnet(vcs)
        .with_vc_buffer_depth(depth);
    let net = Network::new(
        cfg,
        topo,
        Arc::new(ChipletRouting::xy()),
        ConsumePolicy::Immediate { latency: 1 },
        seed,
    );
    System::new(net, Box::new(NoScheme))
}

/// Low-load random traffic (too light to deadlock even unprotected).
fn drive(sysm: &mut System, seed: u64, cycles: u64) -> u64 {
    let cores: Vec<NodeId> = sysm
        .net()
        .topo()
        .chiplets()
        .iter()
        .flat_map(|c| c.routers.iter().copied())
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sent = 0;
    for _ in 0..cycles {
        for &src in &cores {
            if rng.gen::<f64>() >= 0.02 {
                continue;
            }
            let dest = cores[rng.gen_range(0..cores.len())];
            if dest == src {
                continue;
            }
            let vnet = VnetId(rng.gen_range(0..3u8));
            let len = if vnet.0 == 2 { 5 } else { 1 };
            if sysm.send(src, dest, vnet, len).is_some() {
                sent += 1;
            }
        }
        sysm.step();
    }
    sent
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn credits_fully_return_after_drain(
        vcs in prop_oneof![Just(1usize), Just(2), Just(4)],
        depth in 2usize..6,
        seed in 0u64..1_000,
    ) {
        let mut s = sys(vcs, depth, seed);
        let sent = drive(&mut s, seed, 800);
        let out = s.run_until_drained(100_000);
        prop_assert!(matches!(out, RunOutcome::Drained { .. }), "{out:?}");
        prop_assert_eq!(s.net().stats().packets_ejected, sent);
        let nodes: Vec<NodeId> = s.net().topo().nodes().iter().map(|n| n.id).collect();
        for n in nodes {
            let r = s.net().router(n);
            for p in Port::ALL {
                if !r.has_link(p) {
                    continue;
                }
                for f in 0..vcs * 3 {
                    let out_vc = r.output_vc(p, f);
                    prop_assert!(!out_vc.busy, "VC still owned at {n} {p}/{f}");
                    if p != Port::Local {
                        prop_assert_eq!(
                            out_vc.credits, depth,
                            "credit leak at {} {}/{}: {} of {}",
                            n, p, f, out_vc.credits, depth
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn single_flit_hop_cadence_is_three_cycles() {
    // One-flit packet across exactly one link: inject link (1) + BW -> SA
    // (1) -> ST (1) -> LT (1) per router. Measures the documented pipeline
    // (Fig. 5) so regressions in stage accounting are caught precisely.
    let mut s = sys(1, 4, 0);
    let c = s.net().topo().chiplets()[0].clone();
    let (src, dest) = (c.routers[0], c.routers[1]);
    s.send(src, dest, VnetId(0), 1).unwrap();
    let out = s.run_until_drained(100);
    assert!(matches!(out, RunOutcome::Drained { .. }));
    let lat = s.net().stats().avg_net_latency();
    // 2 routers x 3 stages + injection/ejection links: small fixed constant.
    assert!((6.0..=10.0).contains(&lat), "unexpected hop cadence: {lat}");
}

#[test]
fn back_to_back_packets_on_one_vc_do_not_interleave() {
    // Two 5-flit packets from the same source to the same destination on the
    // same VNet: the second must wait for the first's VC to free, so their
    // ejection order matches injection order (NI assembly would panic on
    // interleaving).
    let mut s = sys(1, 4, 1);
    let c = s.net().topo().chiplets()[0].clone();
    let (src, dest) = (c.routers[0], c.routers[15]);
    let id1 = s.send(src, dest, VnetId(2), 5).unwrap();
    let id2 = s.send(src, dest, VnetId(2), 5).unwrap();
    assert!(id1 < id2);
    let out = s.run_until_drained(1_000);
    assert!(matches!(out, RunOutcome::Drained { .. }));
    assert_eq!(s.net().stats().packets_ejected, 2);
    assert_eq!(s.net().stats().flits_ejected, 10);
}

#[test]
fn saturating_one_link_bounds_throughput_at_one_flit_per_cycle() {
    // Hammer a single destination from its direct neighbour: the ejection
    // link is the bottleneck and delivered flits can never exceed 1/cycle.
    let mut s = sys(4, 4, 2);
    let c = s.net().topo().chiplets()[0].clone();
    let (src, dest) = (c.routers[0], c.routers[1]);
    for cycle in 0..4_000u64 {
        let _ = s.send(src, dest, VnetId((cycle % 3) as u8), 5);
        s.step();
    }
    let flits = s.net().stats().flits_ejected;
    assert!(flits <= 4_000, "ejection exceeded link bandwidth: {flits}");
    assert!(
        flits > 2_000,
        "pipelining should keep the link mostly busy: {flits}"
    );
}
