//! # upp-bench — the benchmark harness
//!
//! Regenerates every table and figure of the paper's evaluation section:
//!
//! | id | artifact |
//! |---|---|
//! | `table1` | qualitative scheme comparison |
//! | `table2` | simulation configuration |
//! | `fig7`   | synthetic latency curves, baseline system |
//! | `fig8`   | normalized full-system runtime |
//! | `fig9`   | 128-node system latency |
//! | `fig10`  | boundary-router sensitivity |
//! | `fig11`  | faulty systems |
//! | `fig12`  | upward packet counts |
//! | `fig13`  | detection-threshold sensitivity |
//! | `fig14`  | hardware overhead |
//! | `fig15`  | normalized energy |
//!
//! Run `cargo run --release -p upp-bench --bin repro -- all` for the full
//! reproduction, or pass individual ids (add `--quick` for a fast pass).
//! `cargo bench -p upp-bench` exercises reduced configurations of the same
//! code paths under criterion.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod report;
pub mod sweep;

pub use experiments::{run, ALL_IDS};
pub use report::ExperimentResult;
