//! Watch differential assertions: every harness run arms the online
//! health monitor, so the verify suite can demand that *healthy* runs are
//! alert-free and that an unrecovered deadlock (`scheme = "none"`) fires
//! the deadlock-adjacent detectors — and that the same traffic under a
//! recovery scheme does not. The alert stream is part of [`RunReport`],
//! so these are pure-library tests: no binaries, no files.

use std::collections::BTreeSet;

use upp_noc::watch::WatchConfig;
use upp_verify::scenario::{random_scenario, CampaignParams, Scenario};
use upp_verify::{oracle_for, run_scenario, run_scenario_watched, RunReport, Verdict};

/// Detector names mentioned anywhere in a report's alert stream.
fn fired(r: &RunReport) -> BTreeSet<String> {
    r.alerts
        .iter()
        .filter_map(|line| {
            let rest = line.strip_prefix("{\"detector\":\"")?;
            Some(rest[..rest.find('"')?].to_string())
        })
        .collect()
}

/// Deterministically finds a mini-system scenario that wedges without a
/// recovery scheme: scans a fixed seed range at a hot rate and returns the
/// first whose `"none"` run fails to drain. The scan is part of the test's
/// determinism story — no hand-picked seed can rot silently, because a
/// calibration change just selects the next wedging seed.
fn wedging_scenario() -> (Scenario, RunReport) {
    for seed in 0..40u64 {
        let params = CampaignParams {
            rate: 0.2,
            link_faults: 0,
            throttles: 0,
            ..CampaignParams::default()
        };
        let mut sc = random_scenario(&params, seed).expect("valid params");
        sc.scheme = "none".into();
        let report = run_scenario(&sc, oracle_for(&sc));
        if !matches!(report.verdict, Verdict::Drained { .. }) {
            return (sc, report);
        }
    }
    panic!("no seed in 0..40 wedges the mini system at rate 0.2 without recovery");
}

#[test]
fn clean_runs_are_alert_free() {
    for scheme in ["UPP", "remote-control", "composable"] {
        for seed in [1u64, 17, 42] {
            let mut sc = random_scenario(&CampaignParams::default(), seed).expect("valid params");
            sc.scheme = scheme.into();
            let report = run_scenario(&sc, oracle_for(&sc));
            assert!(
                report.failure().is_none(),
                "[{scheme} seed {seed}] unhealthy run: {:?}",
                report.failure()
            );
            assert!(
                report.alerts.is_empty(),
                "[{scheme} seed {seed}] healthy run raised alerts: {:?}",
                report.alerts
            );
        }
    }
}

#[test]
fn unrecovered_deadlock_fires_the_deadlock_detectors() {
    let (_, report) = wedging_scenario();
    let names = fired(&report);
    assert!(
        names.contains("injection_starvation"),
        "a wedged run must starve injection; fired: {names:?}\n{:?}",
        report.alerts
    );
    // The wedge persists well past raise_after + critical_after epochs, so
    // the starvation span escalates to critical before the oracle (or the
    // cycle bound) ends the run.
    assert!(
        report
            .alerts
            .iter()
            .any(|l| l.contains("\"detector\":\"injection_starvation\"")
                && l.contains("\"event\":\"escalate\",\"severity\":\"critical\"")),
        "starvation should escalate to critical:\n{:?}",
        report.alerts
    );
}

#[test]
fn recovery_scheme_silences_the_deadlock_detectors() {
    let (sc, none_report) = wedging_scenario();
    let mut upp = sc.clone();
    upp.scheme = "UPP".into();
    let upp_report = run_scenario(&upp, oracle_for(&upp));
    assert!(
        upp_report.failure().is_none(),
        "UPP must recover the wedging scenario: {:?}",
        upp_report.failure()
    );
    let none_fired = fired(&none_report);
    let upp_fired = fired(&upp_report);
    assert!(
        none_fired.contains("injection_starvation") && !upp_fired.contains("injection_starvation"),
        "starvation should separate the schemes; none fired {none_fired:?}, UPP fired {upp_fired:?}"
    );
}

/// Scheme-specific detectors under sensitized thresholds: with the popup
/// trigger lowered to a single recovery per epoch, the wedging traffic
/// makes UPP's popup activity visible — while the same traffic without a
/// recovery scheme has no popups at all, so the detector stays silent even
/// at the lowered threshold.
#[test]
fn sensitized_popup_detector_separates_upp_from_none() {
    let (sc, _) = wedging_scenario();
    let sensitized = WatchConfig {
        raise_after: 1,
        popup_storm_rate: 1,
        ..WatchConfig::default()
    };
    let mut upp = sc.clone();
    upp.scheme = "UPP".into();
    let upp_report = run_scenario_watched(&upp, oracle_for(&upp), true, 1, sensitized.clone());
    let none_report = run_scenario_watched(&sc, oracle_for(&sc), true, 1, sensitized);
    assert!(
        fired(&upp_report).contains("popup_storm"),
        "UPP's recovery should trip the sensitized popup detector; fired: {:?}\n{:?}",
        fired(&upp_report),
        upp_report.alerts
    );
    assert!(
        !fired(&none_report).contains("popup_storm"),
        "no popups exist without UPP; fired: {:?}",
        fired(&none_report)
    );
}
