//! Exhaustive breadth-first exploration of the abstract state space.
//!
//! States are stored under a **canonical byte encoding**. With symmetry
//! reduction on (the default), the canonical form is the minimum encoding
//! over all ring rotations: the model's topology (`next = (r + 1) % N`) and
//! transition rules are invariant under relabelling `r -> (r + k) % N`, so
//! two states that differ only by such a rotation have identical futures
//! and only one representative needs exploring. Reflections are *not*
//! symmetries — mirroring the ring reverses the hop direction — so the
//! orbit is exactly the `N` rotations, never the full permutation group.
//!
//! Deduplication is keyed on the exact canonical bytes; a 64-bit FNV-1a
//! fingerprint of the same bytes is tracked alongside purely as telemetry
//! (`fingerprint_collisions` reports how often a lossy hash-only store
//! would have *wrongly merged* two distinct states — it must be possible
//! to audit that the answer does not rest on 64-bit luck).

use std::collections::HashMap;

use crate::model::{ModelCfg, Mutation, State, Transition};

/// Exploration statistics, surfaced by `upp-check explore --stats`.
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// Distinct (canonical) states reached.
    pub states: usize,
    /// Edges in the reduced state graph.
    pub transitions: usize,
    /// Longest shortest-path distance from the initial state.
    pub max_depth: usize,
    /// Successor states that deduplicated onto an already-seen state.
    pub dedup_hits: usize,
    /// Times a new exact state collided with an existing 64-bit
    /// fingerprint (0 means a hash-only store would have been safe).
    pub fingerprint_collisions: usize,
    /// Transitions suppressed *only* by a signal-channel capacity bound.
    /// Non-zero means the bound clipped the space and "exhaustive" holds
    /// only up to that bound; the flagship configurations report 0.
    pub bound_hits: usize,
    /// Reachable raw-deadlock configurations (packets wedged, no popup
    /// under way yet).
    pub deadlock_states: usize,
    /// Reachable fully-drained states.
    pub drained_states: usize,
}

impl ExploreStats {
    /// Fraction of generated successors that deduplicated onto known
    /// states (`hits / (hits + states)`).
    pub fn dedup_ratio(&self) -> f64 {
        let total = self.dedup_hits + self.states;
        if total == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / total as f64
        }
    }
}

/// The fully-explored reduced state graph.
pub struct Exploration {
    /// Model configuration explored.
    pub cfg: ModelCfg,
    /// Whether rotation symmetry reduction was applied.
    pub symmetry: bool,
    /// Canonical representative of every reachable state; index = state id.
    pub states: Vec<State>,
    /// Outgoing edges per state id.
    pub edges: Vec<Vec<(u32, Transition)>>,
    /// BFS tree parent of each state (`None` for the initial state).
    pub parent: Vec<Option<(u32, Transition)>>,
    /// BFS depth of each state.
    pub depth: Vec<u32>,
    /// Aggregate statistics.
    pub stats: ExploreStats,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Relabels every router index in the state by `r -> (r + k) % n`,
/// preserving ring direction and all FIFO orders.
pub fn rotate(state: &State, k: u8, n: u8) -> State {
    let map = |r: u8| (r + k) % n;
    let mut routers: Vec<_> = state.routers.clone();
    let mut nis: Vec<_> = state.nis.clone();
    for r in 0..n as usize {
        let to = map(r as u8) as usize;
        routers[to] = state.routers[r].clone();
        routers[to].queue = state.routers[r].queue.iter().map(|&d| map(d)).collect();
        routers[to].popup_dest = state.routers[r].popup_dest.map(map);
        nis[to] = state.nis[r].clone();
        nis[to].reservations = state.nis[r].reservations.iter().map(|&x| map(x)).collect();
        nis[to].reservations.sort_unstable();
    }
    State {
        routers,
        nis,
        circuits: state.circuits.iter().map(|&d| map(d)).collect(),
        reqs: state.reqs.iter().map(|&(f, d)| (map(f), map(d))).collect(),
        acks: state.acks.iter().map(|&t| map(t)).collect(),
    }
}

/// Relabels the router indices a transition mentions by `r -> (r + k) % n`.
pub fn rotate_transition(t: Transition, k: u8, n: u8) -> Transition {
    let map = |r: u8| (r + k) % n;
    match t {
        Transition::Inject(r, d) => Transition::Inject(map(r), map(d)),
        Transition::Hop(r) => Transition::Hop(map(r)),
        Transition::Eject(r) => Transition::Eject(map(r)),
        Transition::Consume(ni) => Transition::Consume(map(ni)),
        Transition::WatchdogExpire(r) => Transition::WatchdogExpire(map(r)),
        Transition::AdvanceStop(r) => Transition::AdvanceStop(map(r)),
        Transition::Pop(r) => Transition::Pop(map(r)),
        Transition::TickAll | Transition::ServeReq | Transition::DeliverAck => t,
    }
}

/// Flat byte encoding of a state. Injective: every variable-length field
/// is length-prefixed, so distinct states always encode to distinct bytes.
pub fn encode(state: &State) -> Vec<u8> {
    let mut b = Vec::with_capacity(64);
    b.push(state.routers.len() as u8);
    for r in &state.routers {
        b.push(r.queue.len() as u8);
        b.extend_from_slice(&r.queue);
        b.push(match r.stage {
            s if s.is_idle() => 0,
            upp_core::protocol::PopupStage::WaitAck => 1,
            upp_core::protocol::PopupStage::PopInterposer => 2,
            upp_core::protocol::PopupStage::LocateHead => 3,
            upp_core::protocol::PopupStage::PopChiplet => 4,
            _ => unreachable!(),
        });
        b.push(r.popup_dest.map_or(0xff, |d| d));
        b.push(r.counter);
        b.push(r.budget);
    }
    for ni in &state.nis {
        b.push(ni.reservations.len() as u8);
        b.extend_from_slice(&ni.reservations);
        b.push(ni.queued);
    }
    b.push(state.circuits.len() as u8);
    b.extend_from_slice(&state.circuits);
    b.push(state.reqs.len() as u8);
    for &(f, d) in &state.reqs {
        b.push(f);
        b.push(d);
    }
    b.push(state.acks.len() as u8);
    b.extend_from_slice(&state.acks);
    b
}

/// Canonicalizes a state: with symmetry, the rotation with the minimum
/// encoding; without, the state itself. Returns the representative and
/// its encoding.
pub fn canonicalize(state: &State, n: u8, symmetry: bool) -> (State, Vec<u8>) {
    if !symmetry {
        let bytes = encode(state);
        return (state.clone(), bytes);
    }
    let mut best_state = state.clone();
    let mut best_bytes = encode(state);
    for k in 1..n {
        let rotated = rotate(state, k, n);
        let bytes = encode(&rotated);
        if bytes < best_bytes {
            best_bytes = bytes;
            best_state = rotated;
        }
    }
    (best_state, best_bytes)
}

/// Counts transitions disabled in `state` *solely* by a signal-channel
/// capacity bound (everything else about them was enabled).
fn bound_suppressed(state: &State, cfg: &ModelCfg) -> usize {
    let mut n = 0;
    let reqs_full = state.reqs.len() >= cfg.chan_cap as usize;
    let acks_full = state.acks.len() >= cfg.chan_cap as usize;
    if reqs_full && cfg.mutation != Some(Mutation::NeverExpireWatchdog) {
        n += state
            .routers
            .iter()
            .filter(|r| r.stage.is_idle() && r.counter >= cfg.threshold && !r.queue.is_empty())
            .count();
    }
    if let Some(&(from, dest)) = state.reqs.first() {
        let already = state.nis[dest as usize].reservations.contains(&from);
        if acks_full && (already || state.ni_free(cfg, dest as usize) > 0) {
            n += 1;
        }
    }
    if cfg.mutation == Some(Mutation::BounceAck) && reqs_full {
        if let Some(&to) = state.acks.first() {
            if state.routers[to as usize].stage == upp_core::protocol::PopupStage::WaitAck {
                n += 1;
            }
        }
    }
    n
}

/// Exhaustively explores the reachable state space by BFS.
///
/// # Errors
///
/// Returns `Err` if the configuration is invalid or the state count
/// exceeds `max_states`.
pub fn explore(cfg: &ModelCfg, symmetry: bool, max_states: usize) -> Result<Exploration, String> {
    cfg.validate()?;
    let n = cfg.routers;

    let mut states: Vec<State> = Vec::new();
    let mut edges: Vec<Vec<(u32, Transition)>> = Vec::new();
    let mut parent: Vec<Option<(u32, Transition)>> = Vec::new();
    let mut depth: Vec<u32> = Vec::new();
    let mut index: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut fingerprints: HashMap<u64, u32> = HashMap::new();
    let mut stats = ExploreStats::default();

    let (init, init_bytes) = canonicalize(&State::initial(cfg), n, symmetry);
    index.insert(init_bytes.clone(), 0);
    fingerprints.insert(fnv1a64(&init_bytes), 1);
    states.push(init);
    edges.push(Vec::new());
    parent.push(None);
    depth.push(0);

    let mut frontier = 0usize;
    while frontier < states.len() {
        let id = frontier as u32;
        frontier += 1;
        let state = states[id as usize].clone();
        stats.bound_hits += bound_suppressed(&state, cfg);
        if state.is_drained() {
            stats.drained_states += 1;
        }
        if state.is_deadlocked(cfg) {
            stats.deadlock_states += 1;
        }
        for (t, succ) in state.successors(cfg) {
            let (canon, bytes) = canonicalize(&succ, n, symmetry);
            let next_id = match index.get(&bytes) {
                Some(&existing) => {
                    stats.dedup_hits += 1;
                    existing
                }
                None => {
                    let new_id = states.len() as u32;
                    if states.len() >= max_states {
                        return Err(format!(
                            "state space exceeds --max-states {max_states}; raise the cap or shrink the model"
                        ));
                    }
                    let fp = fnv1a64(&bytes);
                    if let Some(count) = fingerprints.get_mut(&fp) {
                        stats.fingerprint_collisions += 1;
                        *count += 1;
                    } else {
                        fingerprints.insert(fp, 1);
                    }
                    index.insert(bytes, new_id);
                    states.push(canon);
                    edges.push(Vec::new());
                    parent.push(Some((id, t)));
                    depth.push(depth[id as usize] + 1);
                    stats.max_depth = stats.max_depth.max(depth[new_id as usize] as usize);
                    new_id
                }
            };
            edges[id as usize].push((next_id, t));
            stats.transitions += 1;
        }
    }
    stats.states = states.len();

    Ok(Exploration {
        cfg: cfg.clone(),
        symmetry,
        states,
        edges,
        parent,
        depth,
        stats,
    })
}

impl Exploration {
    /// The BFS-tree path from the initial state to `id`, as
    /// `(transition, post-state id)` pairs.
    pub fn trace_to(&self, id: u32) -> Vec<(Transition, u32)> {
        let mut steps = Vec::new();
        let mut cur = id;
        while let Some((prev, t)) = self.parent[cur as usize] {
            steps.push((t, cur));
            cur = prev;
        }
        steps.reverse();
        steps
    }

    /// Re-expresses a path over canonical representatives as one coherent
    /// concrete run.
    ///
    /// Symmetry reduction rotates each stored state into its canonical
    /// frame, so consecutive edge labels on a stored path can refer to
    /// differently-relabelled routers. This walks the path from `start`,
    /// re-deriving each raw successor and tracking the cumulative rotation
    /// `rho` between the canonical chain and a single fixed concrete
    /// frame; the returned `(transition, post-state)` steps all live in
    /// that one frame and replay literally. Returns the steps and the
    /// final `rho` (so a livelock cycle can be concretized as a
    /// continuation of its entry path).
    pub fn concretize_steps(
        &self,
        start: u32,
        rho0: u8,
        steps: &[(Transition, u32)],
    ) -> (Vec<(Transition, State)>, u8) {
        let n = self.cfg.routers;
        let mut rho = rho0;
        let mut parent = start;
        let mut out = Vec::with_capacity(steps.len());
        for &(t, child) in steps {
            let p_rep = &self.states[parent as usize];
            let (_, raw) = p_rep
                .successors(&self.cfg)
                .into_iter()
                .find(|(tt, _)| *tt == t)
                .expect("stored edges re-derive from their source state");
            let c_rep = &self.states[child as usize];
            let k = (0..n)
                .find(|&k| rotate(&raw, k, n) == *c_rep)
                .expect("a stored child is a rotation of the raw successor");
            out.push((rotate_transition(t, rho, n), rotate(&raw, rho, n)));
            rho = (rho + n - k) % n;
            parent = child;
        }
        (out, rho)
    }

    /// Compact single-line rendering of a state, for traces and DOT dumps.
    pub fn render_state(&self, id: u32) -> String {
        render_state(&self.states[id as usize])
    }

    /// DOT digraph of the full reduced state graph. Deadlocked states are
    /// drawn red, drained states green.
    pub fn to_dot(&self) -> String {
        let mut out =
            String::from("digraph upp_check {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n");
        for (id, s) in self.states.iter().enumerate() {
            let color = if s.is_deadlocked(&self.cfg) {
                ", color=red"
            } else if s.is_drained() {
                ", color=green"
            } else {
                ""
            };
            out.push_str(&format!(
                "  s{id} [label=\"#{id} {}\"{color}];\n",
                render_state(s).replace('"', "'")
            ));
        }
        for (id, outs) in self.edges.iter().enumerate() {
            for (to, t) in outs {
                out.push_str(&format!(
                    "  s{id} -> s{to} [label=\"{}\", fontsize=8];\n",
                    t.label()
                ));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Compact single-line rendering of a state.
pub fn render_state(s: &State) -> String {
    let mut parts = Vec::new();
    for (r, router) in s.routers.iter().enumerate() {
        let q: Vec<String> = router.queue.iter().map(|d| format!("d{d}")).collect();
        let mut piece = format!("r{r}[{}]", q.join(","));
        if !router.stage.is_idle() {
            piece.push_str(&format!(
                ":{}{}",
                router.stage.name(),
                router
                    .popup_dest
                    .map_or(String::new(), |d| format!("->d{d}"))
            ));
        }
        if router.counter > 0 {
            piece.push_str(&format!(" w{}", router.counter));
        }
        if router.budget > 0 {
            piece.push_str(&format!(" b{}", router.budget));
        }
        parts.push(piece);
    }
    for (n, ni) in s.nis.iter().enumerate() {
        if ni.queued > 0 || !ni.reservations.is_empty() {
            let res: Vec<String> = ni.reservations.iter().map(|r| format!("r{r}")).collect();
            parts.push(format!("ni{n}{{q{} res[{}]}}", ni.queued, res.join(",")));
        }
    }
    if !s.circuits.is_empty() {
        let c: Vec<String> = s.circuits.iter().map(|d| format!("d{d}")).collect();
        parts.push(format!("circ[{}]", c.join(",")));
    }
    if !s.reqs.is_empty() {
        let q: Vec<String> = s.reqs.iter().map(|(f, d)| format!("r{f}->d{d}")).collect();
        parts.push(format!("req[{}]", q.join(",")));
    }
    if !s.acks.is_empty() {
        let a: Vec<String> = s.acks.iter().map(|t| format!("r{t}")).collect();
        parts.push(format!("ack[{}]", a.join(",")));
    }
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_preserves_encoding_shape_and_identity_rotation_is_identity() {
        let cfg = ModelCfg::flagship(3);
        let mut s = State::initial(&cfg);
        s.routers[0].queue = vec![1, 2];
        s.routers[2].queue = vec![0];
        s.circuits = vec![1];
        s.reqs = vec![(2, 0)];
        assert_eq!(rotate(&s, 0, 3), s);
        let r1 = rotate(&s, 1, 3);
        assert_eq!(r1.routers[1].queue, vec![2, 0]);
        assert_eq!(r1.circuits, vec![2]);
        assert_eq!(r1.reqs, vec![(0, 1)]);
        // Rotating N times composes to the identity.
        let back = rotate(&rotate(&r1, 1, 3), 1, 3);
        assert_eq!(back, s);
    }

    #[test]
    fn encoding_is_injective_on_a_tricky_pair() {
        // Same multiset of bytes, different structure: the length
        // prefixes must keep these apart.
        let cfg = ModelCfg::flagship(2);
        let mut a = State::initial(&cfg);
        let mut b = State::initial(&cfg);
        a.routers[0].queue = vec![1, 1];
        b.routers[0].queue = vec![1];
        b.routers[1].queue = vec![1];
        assert_ne!(encode(&a), encode(&b));
    }

    #[test]
    fn flagship_two_router_space_is_nontrivial_and_bound_clean() {
        let cfg = ModelCfg::flagship(2);
        let ex = explore(&cfg, true, 2_000_000).expect("explores");
        assert!(
            ex.stats.states > 100,
            "flagship space must be non-trivial, got {}",
            ex.stats.states
        );
        assert_eq!(
            ex.stats.bound_hits, 0,
            "flagship exploration must not clip on channel bounds"
        );
        assert!(ex.stats.deadlock_states > 0, "deadlock must be reachable");
        assert!(ex.stats.drained_states > 0, "drain must be reachable");
        assert_eq!(ex.stats.fingerprint_collisions, 0);
    }

    #[test]
    fn symmetry_reduction_shrinks_but_preserves_structure_counts() {
        let cfg = ModelCfg::flagship(2);
        let full = explore(&cfg, false, 2_000_000).expect("explores");
        let reduced = explore(&cfg, true, 2_000_000).expect("explores");
        assert!(reduced.stats.states <= full.stats.states);
        assert!(
            reduced.stats.states > full.stats.states / 2 - 1,
            "a 2-rotation orbit can at most halve the space"
        );
        assert_eq!(
            full.stats.deadlock_states > 0,
            reduced.stats.deadlock_states > 0
        );
    }
}
