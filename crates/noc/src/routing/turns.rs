//! Turn restrictions and channel-dependency-graph (CDG) analysis.
//!
//! The composable-routing baseline (Yin et al., ISCA'18, as summarised in
//! Sec. III-B of the UPP paper) abstracts everything outside a chiplet into a
//! *virtual node* and places unidirectional turn restrictions on the
//! chiplet's boundary routers until the extended CDG — internal channels plus
//! virtual-node channels — is acyclic. This module provides the restriction
//! set type, the extended CDG and a cycle finder; the search itself lives in
//! `upp-baselines`.

use crate::ids::{ChipletId, NodeId, Port};
use crate::routing::xy::xy_turn_legal;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A set of forbidden `(node, in_port, out_port)` turns.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TurnRestrictions {
    forbidden: HashSet<(NodeId, Port, Port)>,
}

impl TurnRestrictions {
    /// An empty (fully permissive) restriction set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forbids the turn `(node, in_port, out_port)`.
    pub fn forbid(&mut self, node: NodeId, in_port: Port, out_port: Port) {
        self.forbidden.insert((node, in_port, out_port));
    }

    /// Re-allows a previously forbidden turn.
    pub fn allow(&mut self, node: NodeId, in_port: Port, out_port: Port) {
        self.forbidden.remove(&(node, in_port, out_port));
    }

    /// True if the turn is allowed.
    #[inline]
    pub fn allows(&self, node: NodeId, in_port: Port, out_port: Port) -> bool {
        !self.forbidden.contains(&(node, in_port, out_port))
    }

    /// Number of forbidden turns.
    pub fn len(&self) -> usize {
        self.forbidden.len()
    }

    /// True when no turn is forbidden.
    pub fn is_empty(&self) -> bool {
        self.forbidden.is_empty()
    }

    /// Iterates over the forbidden turns.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Port, Port)> + '_ {
        self.forbidden.iter().copied()
    }
}

/// A channel of the extended per-chiplet dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Channel {
    /// An internal mesh channel: the directed link leaving `from` through
    /// `out`.
    Internal {
        /// Source router of the directed link.
        from: NodeId,
        /// Port the link leaves through.
        out: Port,
    },
    /// The upward vertical link into boundary router `boundary` (held by
    /// traffic entering the chiplet).
    ExtIn {
        /// The boundary router the link ascends into.
        boundary: NodeId,
    },
    /// The downward vertical link out of boundary router `boundary` (held by
    /// traffic leaving the chiplet).
    ExtOut {
        /// The boundary router the link descends from.
        boundary: NodeId,
    },
}

/// The extended channel dependency graph of one chiplet.
///
/// Edges are dependencies a blocked packet can induce: `a -> b` when a packet
/// holding channel `a` may request channel `b` next. Virtual-node edges
/// `ExtOut(bi) -> ExtIn(bj)` conservatively model the unknown external
/// network for every ordered pair of boundary routers.
#[derive(Debug, Clone)]
pub struct ExtendedCdg {
    channels: Vec<Channel>,
    index: HashMap<Channel, usize>,
    edges: Vec<Vec<usize>>,
}

impl ExtendedCdg {
    /// Builds the extended CDG of chiplet `c` under XY internal routing and
    /// the given vertical-turn restrictions.
    pub fn build(topo: &Topology, c: ChipletId, restrictions: &TurnRestrictions) -> Self {
        let info = topo.chiplet(c);
        let members: HashSet<NodeId> = info.routers.iter().copied().collect();

        let mut channels = Vec::new();
        let mut index = HashMap::new();
        let add =
            |ch: Channel, channels: &mut Vec<Channel>, index: &mut HashMap<Channel, usize>| {
                let id = channels.len();
                channels.push(ch);
                index.insert(ch, id);
            };
        for &r in &info.routers {
            for p in Port::ALL {
                if !p.is_mesh() {
                    continue;
                }
                if let Some(peer) = topo.neighbor(r, p) {
                    if members.contains(&peer) {
                        add(
                            Channel::Internal { from: r, out: p },
                            &mut channels,
                            &mut index,
                        );
                    }
                }
            }
        }
        for &b in &info.boundary_routers {
            add(Channel::ExtIn { boundary: b }, &mut channels, &mut index);
            add(Channel::ExtOut { boundary: b }, &mut channels, &mut index);
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); channels.len()];
        let legal = |node: NodeId, inp: Port, outp: Port| {
            xy_turn_legal(inp, outp) && restrictions.allows(node, inp, outp)
        };

        for (ci, &ch) in channels.iter().enumerate() {
            match ch {
                Channel::Internal { from, out } => {
                    let n = topo
                        .neighbor(from, out)
                        .expect("channel follows an existing link");
                    let inp = out.opposite();
                    // Continue internally.
                    for q in Port::ALL {
                        if !q.is_mesh() {
                            continue;
                        }
                        if topo
                            .neighbor(n, q)
                            .is_some_and(|peer| members.contains(&peer))
                            && legal(n, inp, q)
                        {
                            let to = index[&Channel::Internal { from: n, out: q }];
                            edges[ci].push(to);
                        }
                    }
                    // Leave the chiplet.
                    if topo.neighbor(n, Port::Down).is_some() && legal(n, inp, Port::Down) {
                        let to = index[&Channel::ExtOut { boundary: n }];
                        edges[ci].push(to);
                    }
                }
                Channel::ExtIn { boundary } => {
                    // Entering traffic turns from the vertical link into the
                    // mesh (its in-port at the boundary router is `Down`).
                    for q in Port::ALL {
                        if !q.is_mesh() {
                            continue;
                        }
                        if topo
                            .neighbor(boundary, q)
                            .is_some_and(|peer| members.contains(&peer))
                            && legal(boundary, Port::Down, q)
                        {
                            let to = index[&Channel::Internal {
                                from: boundary,
                                out: q,
                            }];
                            edges[ci].push(to);
                        }
                    }
                    // Entering traffic never exits again (routing is
                    // three-legged), so no ExtIn -> ExtOut edge.
                }
                Channel::ExtOut { .. } => {
                    // Virtual node: the external network may chain this
                    // channel to any upward link back into this chiplet.
                    for &b2 in &info.boundary_routers {
                        let to = index[&Channel::ExtIn { boundary: b2 }];
                        edges[ci].push(to);
                    }
                }
            }
        }

        Self {
            channels,
            index,
            edges,
        }
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// The channel with dense index `i`.
    pub fn channel(&self, i: usize) -> Channel {
        self.channels[i]
    }

    /// Finds one dependency cycle, returned as a channel sequence
    /// (`c0 -> c1 -> ... -> c0` implied), or `None` if the graph is acyclic.
    pub fn find_cycle(&self) -> Option<Vec<Channel>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let n = self.channels.len();
        let mut color = vec![Color::White; n];
        let mut parent: Vec<Option<usize>> = vec![None; n];
        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            // Iterative DFS keeping an explicit edge iterator per frame.
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = Color::Grey;
            while let Some(&(u, ei)) = stack.last() {
                if ei < self.edges[u].len() {
                    let v = self.edges[u][ei];
                    stack.last_mut().expect("stack is non-empty").1 += 1;
                    match color[v] {
                        Color::White => {
                            color[v] = Color::Grey;
                            parent[v] = Some(u);
                            stack.push((v, 0));
                        }
                        Color::Grey => {
                            // Found a cycle v -> ... -> u -> v.
                            let mut cycle = vec![self.channels[u]];
                            let mut cur = u;
                            while cur != v {
                                cur = parent[cur].expect("grey nodes form a parent chain");
                                cycle.push(self.channels[cur]);
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Color::Black => {}
                    }
                } else {
                    color[u] = Color::Black;
                    stack.pop();
                }
            }
        }
        None
    }

    /// True when the graph has no dependency cycle.
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// Channels reachable from `from` (inclusive).
    pub fn reachable(&self, from: Channel) -> HashSet<Channel> {
        let mut seen = HashSet::new();
        let Some(&start) = self.index.get(&from) else {
            return seen;
        };
        let mut stack = vec![start];
        let mut visited = vec![false; self.channels.len()];
        visited[start] = true;
        while let Some(u) = stack.pop() {
            seen.insert(self.channels[u]);
            for &v in &self.edges[u] {
                if !visited[v] {
                    visited[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ChipletSystemSpec;

    fn topo() -> Topology {
        ChipletSystemSpec::baseline().build(0).unwrap()
    }

    #[test]
    fn unrestricted_extended_cdg_has_cycles() {
        // This is the paper's core premise: with all vertical turns allowed,
        // integration induces dependency cycles even though XY is locally
        // deadlock free.
        let t = topo();
        let cdg = ExtendedCdg::build(&t, ChipletId(0), &TurnRestrictions::new());
        assert!(!cdg.is_acyclic(), "integration must induce CDG cycles");
        let cycle = cdg.find_cycle().unwrap();
        assert!(cycle.len() >= 2);
        // Every cycle must pass through the virtual node (internal XY alone
        // is acyclic), i.e. contain an ExtOut -> ExtIn hop.
        assert!(cycle.iter().any(|c| matches!(c, Channel::ExtOut { .. })));
        assert!(cycle.iter().any(|c| matches!(c, Channel::ExtIn { .. })));
    }

    #[test]
    fn internal_xy_alone_is_acyclic() {
        // Forbid every vertical turn: the extended CDG degenerates to the
        // internal XY CDG plus isolated external channels.
        let t = topo();
        let c = ChipletId(0);
        let mut r = TurnRestrictions::new();
        for &b in &t.chiplet(c).boundary_routers {
            for p in Port::ALL {
                if p.is_mesh() {
                    r.forbid(b, Port::Down, p);
                    r.forbid(b, p, Port::Down);
                }
            }
        }
        let cdg = ExtendedCdg::build(&t, c, &r);
        assert!(cdg.is_acyclic());
    }

    #[test]
    fn restriction_set_basics() {
        let mut r = TurnRestrictions::new();
        assert!(r.is_empty());
        r.forbid(NodeId(1), Port::Down, Port::East);
        assert!(!r.allows(NodeId(1), Port::Down, Port::East));
        assert!(r.allows(NodeId(1), Port::Down, Port::West));
        assert_eq!(r.len(), 1);
        r.allow(NodeId(1), Port::Down, Port::East);
        assert!(r.allows(NodeId(1), Port::Down, Port::East));
        assert!(r.is_empty());
    }

    #[test]
    fn reachability_includes_source() {
        let t = topo();
        let cdg = ExtendedCdg::build(&t, ChipletId(0), &TurnRestrictions::new());
        let b = t.chiplet(ChipletId(0)).boundary_routers[0];
        let reach = cdg.reachable(Channel::ExtIn { boundary: b });
        assert!(reach.contains(&Channel::ExtIn { boundary: b }));
        assert!(
            reach.len() > 1,
            "entering traffic reaches internal channels"
        );
    }
}
