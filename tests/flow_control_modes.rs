//! Flow-control modularity (Table I): UPP must work unchanged under both
//! wormhole and virtual cut-through. Deadlocks still form under VCT — it
//! bounds where a blocked packet sits, not the cyclic dependencies — and UPP
//! recovers either way.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use upp_core::{Upp, UppConfig, UppStatsHandle};
use upp_noc::config::{FlowControl, NocConfig};
use upp_noc::ids::{NodeId, VnetId};
use upp_noc::network::Network;
use upp_noc::ni::ConsumePolicy;
use upp_noc::routing::ChipletRouting;
use upp_noc::scheme::{NoScheme, Scheme};
use upp_noc::sim::{RunOutcome, System};
use upp_noc::topology::ChipletSystemSpec;

fn build(fc: FlowControl, scheme: Box<dyn Scheme>, seed: u64) -> System {
    let topo = ChipletSystemSpec::baseline().build(0).unwrap();
    let cfg = match fc {
        FlowControl::Wormhole => NocConfig::default(),
        FlowControl::VirtualCutThrough => NocConfig::default().with_virtual_cut_through(),
    };
    let net = Network::new(
        cfg,
        topo,
        Arc::new(ChipletRouting::xy()),
        ConsumePolicy::Immediate { latency: 1 },
        seed,
    );
    System::new(net, scheme)
}

fn drive(sys: &mut System, seed: u64, cycles: u64, rate: f64) -> u64 {
    let cores: Vec<NodeId> = sys
        .net()
        .topo()
        .chiplets()
        .iter()
        .flat_map(|c| c.routers.iter().copied())
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sent = 0;
    for _ in 0..cycles {
        for &src in &cores {
            if rng.gen::<f64>() >= rate {
                continue;
            }
            let dest = cores[rng.gen_range(0..cores.len())];
            if dest == src {
                continue;
            }
            let vnet = VnetId(rng.gen_range(0..3u8));
            let len = if vnet.0 == 2 { 5 } else { 1 };
            if sys.send(src, dest, vnet, len).is_some() {
                sent += 1;
            }
        }
        sys.step();
    }
    sent
}

#[test]
fn vct_systems_also_deadlock_without_a_scheme() {
    let mut wedged = 0;
    for seed in 0..4u64 {
        let mut sys = build(FlowControl::VirtualCutThrough, Box::new(NoScheme), seed);
        drive(&mut sys, seed, 3_000, 0.30);
        if matches!(sys.run_until_drained(30_000), RunOutcome::Deadlocked { .. }) {
            wedged += 1;
        }
    }
    assert!(
        wedged > 0,
        "VCT does not remove integration-induced deadlocks"
    );
}

#[test]
fn upp_recovers_under_virtual_cut_through() {
    for seed in 0..3u64 {
        let upp = Upp::new(UppConfig::default());
        let stats: UppStatsHandle = upp.stats_handle();
        let mut sys = build(FlowControl::VirtualCutThrough, Box::new(upp), seed);
        let sent = drive(&mut sys, seed, 3_000, 0.30);
        let out = sys.run_until_drained(300_000);
        assert!(
            matches!(out, RunOutcome::Drained { .. }),
            "VCT seed {seed}: {out:?}"
        );
        assert_eq!(sys.net().stats().packets_ejected, sent);
        let s = *stats.lock().unwrap();
        assert!(
            s.upward_packets > 0,
            "VCT seed {seed}: recovery must have engaged"
        );
        // Under VCT a blocked packet is fully buffered at one router, so
        // mid-worm (partial) popups should be rarer than full popups.
        assert!(
            s.partial_popups <= s.popups_completed,
            "VCT seed {seed}: {s:?}"
        );
    }
}

#[test]
fn vct_zero_load_latency_matches_wormhole() {
    // At zero load the two disciplines behave identically per hop.
    for fc in [FlowControl::Wormhole, FlowControl::VirtualCutThrough] {
        let mut sys = build(fc, Box::new(NoScheme), 1);
        let c = sys.net().topo().chiplets()[0].clone();
        sys.send(c.routers[0], c.routers[15], VnetId(2), 5).unwrap();
        let out = sys.run_until_drained(500);
        assert!(matches!(out, RunOutcome::Drained { .. }));
        let lat = sys.net().stats().avg_net_latency();
        assert!((15.0..=40.0).contains(&lat), "{fc:?}: {lat}");
    }
}

#[test]
fn vct_conserves_under_moderate_load() {
    let upp = Upp::new(UppConfig::default());
    let mut sys = build(FlowControl::VirtualCutThrough, Box::new(upp), 5);
    let sent = drive(&mut sys, 5, 2_000, 0.10);
    let out = sys.run_until_drained(200_000);
    assert!(matches!(out, RunOutcome::Drained { .. }));
    assert_eq!(sys.net().stats().packets_ejected, sent);
    assert_eq!(
        sys.net().stats().flits_injected,
        sys.net().stats().flits_ejected
    );
}
