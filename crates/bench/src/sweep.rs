//! The parallel sweep engine: fans any experiment grid out over N worker
//! threads with work stealing, streams finished points to a JSONL journal,
//! and resumes interrupted sweeps by skipping already-recorded points.
//!
//! Every point carries a stable string key derived from its full parameter
//! tuple (scheme, system, pattern, faults, seed, windows, rate). Seeds are
//! per-point and independent of worker scheduling, so results are
//! bit-identical regardless of the jobs count — the determinism tests in
//! `tests/determinism.rs` enforce this against committed goldens.
//!
//! The engine is plain `std::thread`; no external dependencies.

use serde::Serialize;
use serde_json::Value;
use std::collections::{HashMap, VecDeque};
use std::fs::OpenOptions;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use upp_noc::config::NocConfig;
use upp_noc::topology::ChipletSystemSpec;
use upp_workloads::runner::{run_point, AlertCounts, SchemeKind, SweepPoint, SweepWindows};
use upp_workloads::synthetic::Pattern;

// ------------------------------------------------------------ jobs control

/// Process-wide default worker count, set once by the CLI `--jobs` flag.
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count (the binaries' `--jobs` flag).
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs.max(1), Ordering::SeqCst);
}

/// The default worker count: the value set via [`set_default_jobs`], else
/// the `UPP_JOBS` environment variable, else the machine's available
/// parallelism.
pub fn default_jobs() -> usize {
    let set = DEFAULT_JOBS.load(Ordering::SeqCst);
    if set > 0 {
        return set;
    }
    if let Ok(v) = std::env::var("UPP_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

// ---------------------------------------------------------------- journal

/// Results parseable back out of the journal's JSON `Value` tree (the
/// vendored serde stub has no typed deserialization, so resumable result
/// types implement this by hand).
pub trait FromJsonValue: Sized {
    /// Reconstructs the result from its serialized form; `None` when the
    /// recorded shape does not match (the point is then re-run).
    fn from_json_value(v: &Value) -> Option<Self>;
}

/// Short stable fingerprint of a sweep configuration (FNV-1a 64), hashed
/// into the journal header so `--resume` can detect that the CLI args no
/// longer match the journal's recorded points.
pub fn config_fingerprint(desc: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in desc.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// A JSONL journal of completed sweep points: one `{"key":…,"data":…}`
/// object per line, appended (and flushed) as each point finishes. The
/// first line may be a `{"config":…}` header naming the sweep-config
/// fingerprint the points were recorded under.
pub struct Journal {
    seen: Mutex<HashMap<String, Value>>,
    writer: Mutex<BufWriter<std::fs::File>>,
}

impl Journal {
    /// Opens (or creates) a journal at `path`. With `resume`, existing
    /// lines are indexed so matching points can be skipped; without it the
    /// file is truncated.
    ///
    /// When `fingerprint` is given, it is written as a `{"config":…}`
    /// header on fresh journals and checked against the recorded header on
    /// resume: a journal recorded under a different sweep config would
    /// silently serve stale points, so the mismatch is a hard error.
    ///
    /// # Errors
    ///
    /// Returns `Err` when the file cannot be opened or read, or when
    /// resuming a journal whose recorded config fingerprint does not match
    /// `fingerprint` (kind [`std::io::ErrorKind::InvalidData`]).
    pub fn open(path: &Path, resume: bool, fingerprint: Option<&str>) -> std::io::Result<Journal> {
        let mut seen = HashMap::new();
        let mut recorded_cfg: Option<String> = None;
        if resume && path.exists() {
            let reader = BufReader::new(std::fs::File::open(path)?);
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                // Tolerate truncated trailing lines from a killed run.
                let Ok(v) = serde_json::from_str(&line) else {
                    continue;
                };
                if let Some(cfg) = v.get("config").and_then(|c| c.as_str()) {
                    recorded_cfg = Some(cfg.to_string());
                    continue;
                }
                if let (Some(key), Some(data)) =
                    (v.get("key").and_then(|k| k.as_str()), v.get("data"))
                {
                    seen.insert(key.to_string(), data.clone());
                }
            }
        }
        if resume {
            if let Some(fp) = fingerprint {
                match &recorded_cfg {
                    Some(rec) if rec == fp => {}
                    Some(rec) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!(
                                "journal {} was recorded under a different sweep config \
                                 (recorded {rec}, current {fp}); resuming would reuse stale \
                                 points — delete the journal or rerun without --resume",
                                path.display()
                            ),
                        ));
                    }
                    None if seen.is_empty() => {}
                    None => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!(
                                "journal {} has recorded points but no config header, so its \
                                 sweep config cannot be checked against the current one — \
                                 delete the journal or rerun without --resume",
                                path.display()
                            ),
                        ));
                    }
                }
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(resume)
            .truncate(!resume)
            .write(true)
            .open(path)?;
        let journal = Journal {
            seen: Mutex::new(seen),
            writer: Mutex::new(BufWriter::new(file)),
        };
        // Stamp fresh journals (and resumed-but-empty legacy ones) with the
        // config header so the next resume can be checked.
        if let Some(fp) = fingerprint {
            if recorded_cfg.is_none() {
                let fp_json =
                    serde_json::to_string(&fp.to_string()).expect("stub serializer is infallible");
                let mut w = journal.writer.lock().unwrap();
                let _ = writeln!(w, "{{\"config\":{fp_json}}}");
                let _ = w.flush();
            }
        }
        Ok(journal)
    }

    /// Number of points indexed from previous runs.
    pub fn resumed_points(&self) -> usize {
        self.seen.lock().unwrap().len()
    }

    fn lookup<R: FromJsonValue>(&self, key: &str) -> Option<R> {
        let seen = self.seen.lock().unwrap();
        seen.get(key).and_then(R::from_json_value)
    }

    fn record<R: Serialize>(&self, key: &str, result: &R) {
        let data = serde_json::to_string(result).expect("stub serializer is infallible");
        let key_json =
            serde_json::to_string(&key.to_string()).expect("stub serializer is infallible");
        let mut w = self.writer.lock().unwrap();
        let _ = writeln!(w, "{{\"key\":{key_json},\"data\":{data}}}");
        let _ = w.flush();
    }
}

/// Global journal shared by every [`engine`] instance in the process (wired
/// up by `repro --journal`).
static JOURNAL: OnceLock<Mutex<Option<Arc<Journal>>>> = OnceLock::new();

fn journal_slot() -> &'static Mutex<Option<Arc<Journal>>> {
    JOURNAL.get_or_init(|| Mutex::new(None))
}

/// Installs (or clears) the process-wide journal. Returns the number of
/// points indexed for resume. `fingerprint` (see [`config_fingerprint`])
/// pins the sweep config the journal belongs to.
///
/// # Errors
///
/// Returns `Err` when the journal file cannot be opened, or when resuming
/// under a config fingerprint that does not match the journal's header.
pub fn configure_journal(
    path: Option<PathBuf>,
    resume: bool,
    fingerprint: Option<&str>,
) -> std::io::Result<usize> {
    let journal = match path {
        Some(p) => {
            if let Some(dir) = p.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)?;
                }
            }
            Some(Arc::new(Journal::open(&p, resume, fingerprint)?))
        }
        None => None,
    };
    let resumed = journal.as_ref().map(|j| j.resumed_points()).unwrap_or(0);
    *journal_slot().lock().unwrap() = journal;
    Ok(resumed)
}

// ----------------------------------------------------------------- engine

/// A work-stealing fan-out over N worker threads.
pub struct SweepEngine {
    jobs: usize,
    journal: Option<Arc<Journal>>,
}

/// The engine with the process-wide jobs count and journal.
pub fn engine() -> SweepEngine {
    SweepEngine {
        jobs: default_jobs(),
        journal: journal_slot().lock().unwrap().clone(),
    }
}

impl SweepEngine {
    /// An engine with an explicit worker count and no journal.
    pub fn new(jobs: usize) -> SweepEngine {
        SweepEngine {
            jobs: jobs.max(1),
            journal: None,
        }
    }

    /// Attaches a journal to this engine instance.
    #[must_use]
    pub fn with_journal(mut self, journal: Arc<Journal>) -> SweepEngine {
        self.journal = Some(journal);
        self
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `f` over `items` on the worker pool, preserving input order in
    /// the output.
    ///
    /// Each worker owns a deque seeded round-robin; idle workers steal from
    /// the tail of their peers, so stragglers (long simulation points) do
    /// not serialize the sweep.
    ///
    /// # Panics
    ///
    /// Propagates the first worker panic.
    pub fn map<I, R, F>(&self, items: &[I], f: F) -> Vec<R>
    where
        I: Sync,
        R: Send,
        F: Fn(usize, &I) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.jobs.min(n);
        if workers == 1 {
            return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
        }
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..n).step_by(workers).collect()))
            .collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for w in 0..workers {
                let queues = &queues;
                let results = &results;
                let f = &f;
                s.spawn(move || loop {
                    let next = queues[w].lock().unwrap().pop_front().or_else(|| {
                        // Steal from the back of the first non-empty peer.
                        (1..workers)
                            .find_map(|off| queues[(w + off) % workers].lock().unwrap().pop_back())
                    });
                    let Some(i) = next else { break };
                    let r = f(i, &items[i]);
                    *results[i].lock().unwrap() = Some(r);
                });
            }
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("no worker panicked")
                    .expect("every queued job completed")
            })
            .collect()
    }

    /// Keyed fan-out with journal streaming and resume: points whose key is
    /// already recorded are restored from the journal instead of re-run;
    /// fresh results are appended to the journal as they complete.
    pub fn run_keyed<P, R, K, F>(&self, points: &[P], key: K, f: F) -> Vec<R>
    where
        P: Sync,
        R: Serialize + FromJsonValue + Send,
        K: Fn(&P) -> String,
        F: Fn(&P) -> R + Sync,
    {
        let keys: Vec<String> = points.iter().map(&key).collect();
        let mut out: Vec<Option<R>> = keys
            .iter()
            .map(|k| self.journal.as_ref().and_then(|j| j.lookup(k)))
            .collect();
        let missing: Vec<usize> = (0..points.len()).filter(|&i| out[i].is_none()).collect();
        let fresh = self.map(&missing, |_, &i| {
            let r = f(&points[i]);
            if let Some(j) = &self.journal {
                j.record(&keys[i], &r);
            }
            r
        });
        for (&i, r) in missing.iter().zip(fresh) {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every point computed or restored"))
            .collect()
    }
}

// ------------------------------------------------ experiment-facing sweeps

impl FromJsonValue for SweepPoint {
    fn from_json_value(v: &Value) -> Option<SweepPoint> {
        Some(SweepPoint {
            rate: v.get("rate")?.as_f64()?,
            net_latency: v.get("net_latency")?.as_f64()?,
            queue_latency: v.get("queue_latency")?.as_f64()?,
            total_latency: v.get("total_latency")?.as_f64()?,
            throughput: v.get("throughput")?.as_f64()?,
            packets_ejected: v.get("packets_ejected")?.as_u64()?,
            upward_packets: v.get("upward_packets")?.as_u64()?,
            control_hops: v.get("control_hops")?.as_u64()?,
            // Journals from before the percentile columns lack these keys;
            // returning None makes the engine re-run the point.
            p50: v.get("p50")?.as_f64()?,
            p95: v.get("p95")?.as_f64()?,
            p99: v.get("p99")?.as_f64()?,
            p999: v.get("p999")?.as_f64()?,
            deadlocked: matches!(v.get("deadlocked")?, Value::Bool(true)),
            // Journals from before the watch column lack this object;
            // returning None makes the engine re-run the point.
            alerts: {
                let a = v.get("alerts")?;
                AlertCounts {
                    throughput_collapse: a.get("throughput_collapse")?.as_u64()?,
                    injection_starvation: a.get("injection_starvation")?.as_u64()?,
                    popup_storm: a.get("popup_storm")?.as_u64()?,
                    watchdog_cascade: a.get("watchdog_cascade")?.as_u64()?,
                    circuit_saturation: a.get("circuit_saturation")?.as_u64()?,
                    permit_queue_runaway: a.get("permit_queue_runaway")?.as_u64()?,
                    shard_imbalance: a.get("shard_imbalance")?.as_u64()?,
                }
            },
        })
    }
}

/// Stable journal key for one `(tag, cfg, kind, faults, pattern, windows,
/// seed, rate)` point.
#[allow(clippy::too_many_arguments)]
pub fn point_key(
    tag: &str,
    cfg: &NocConfig,
    kind: &SchemeKind,
    faults: usize,
    pattern: Pattern,
    windows: SweepWindows,
    seed: u64,
    rate: f64,
) -> String {
    format!(
        "{tag}|vcs{}|{:?}|f{faults}|{}|w{}+{}|s{seed}|r{rate}",
        cfg.vcs_per_vnet,
        kind,
        pattern.label(),
        windows.warmup,
        windows.measure
    )
}

/// Runs a full latency-vs-injection sweep on the engine: the parallel,
/// journaled replacement for `upp_workloads::runner::sweep`. `tag` scopes
/// the journal keys (experiment id plus any parameters not captured by the
/// other arguments, e.g. `"fig10/b2"`).
#[allow(clippy::too_many_arguments)]
pub fn sweep_rates(
    tag: &str,
    spec: &ChipletSystemSpec,
    cfg: &NocConfig,
    kind: &SchemeKind,
    faults: usize,
    pattern: Pattern,
    rates: &[f64],
    windows: SweepWindows,
    seed: u64,
) -> Vec<SweepPoint> {
    engine().run_keyed(
        rates,
        |&rate| point_key(tag, cfg, kind, faults, pattern, windows, seed, rate),
        |&rate| run_point(spec, cfg, kind, faults, pattern, rate, windows, seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_and_runs_everything() {
        let items: Vec<u64> = (0..37).collect();
        for jobs in [1, 3, 8] {
            let out = SweepEngine::new(jobs).map(&items, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_results_are_jobs_independent() {
        let items: Vec<u64> = (0..16).collect();
        let work = |_: usize, &x: &u64| {
            // Deterministic per-item pseudo-work.
            let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for _ in 0..100 {
                h = h.rotate_left(7) ^ 0xABCD;
            }
            h
        };
        let serial = SweepEngine::new(1).map(&items, work);
        let parallel = SweepEngine::new(4).map(&items, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn workers_steal_from_stragglers() {
        // One item is much slower than the rest; with 2 workers the fast
        // worker must steal the slow worker's backlog. We can't assert
        // timing, but we can assert completion and order with a skewed
        // distribution.
        let items: Vec<u64> = (0..9).collect();
        let out = SweepEngine::new(2).map(&items, |_, &x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            x + 1
        });
        assert_eq!(out, (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn journal_resume_skips_recorded_points() {
        #[derive(Serialize, PartialEq, Debug)]
        struct R {
            v: u64,
        }
        impl FromJsonValue for R {
            fn from_json_value(val: &Value) -> Option<R> {
                Some(R {
                    v: val.get("v")?.as_u64()?,
                })
            }
        }
        let dir = std::env::temp_dir().join(format!("upp-sweep-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);

        let runs = AtomicUsize::new(0);
        let compute = |p: &u64| {
            runs.fetch_add(1, Ordering::SeqCst);
            R { v: p * 10 }
        };
        let keyf = |p: &u64| format!("k{p}");

        // First run: 3 points, all computed.
        let j = Arc::new(Journal::open(&path, true, None).unwrap());
        let eng = SweepEngine::new(2).with_journal(j);
        let out = eng.run_keyed(&[1u64, 2, 3], keyf, compute);
        assert_eq!(out, vec![R { v: 10 }, R { v: 20 }, R { v: 30 }]);
        assert_eq!(runs.load(Ordering::SeqCst), 3);

        // Second run: 5 points, only the 2 new ones computed, order kept.
        let j = Arc::new(Journal::open(&path, true, None).unwrap());
        assert_eq!(j.resumed_points(), 3);
        let eng = SweepEngine::new(2).with_journal(j);
        let out = eng.run_keyed(&[1u64, 4, 2, 5, 3], keyf, compute);
        assert_eq!(
            out,
            vec![
                R { v: 10 },
                R { v: 40 },
                R { v: 20 },
                R { v: 50 },
                R { v: 30 }
            ]
        );
        assert_eq!(runs.load(Ordering::SeqCst), 5, "1/2/3 restored, 4/5 run");

        // Opening without resume truncates.
        let j = Journal::open(&path, false, None).unwrap();
        assert_eq!(j.resumed_points(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_resume_rejects_config_mismatch() {
        #[derive(Serialize, PartialEq, Debug)]
        struct R {
            v: u64,
        }
        impl FromJsonValue for R {
            fn from_json_value(val: &Value) -> Option<R> {
                Some(R {
                    v: val.get("v")?.as_u64()?,
                })
            }
        }
        let dir = std::env::temp_dir().join(format!("upp-sweep-cfg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);

        let fp_a = config_fingerprint("scheme=upp seed=1");
        let fp_b = config_fingerprint("scheme=none seed=1");
        assert_ne!(fp_a, fp_b);
        // The shard count is part of simulate's fingerprint input: a
        // journal recorded serially must not be resumable by a sharded
        // sweep (or vice versa) without the mismatch being detected —
        // results are defined to be identical, but a fingerprint that
        // ignored a config knob would also mask genuine divergence.
        assert_ne!(
            config_fingerprint("scheme=upp seed=1|sh1"),
            config_fingerprint("scheme=upp seed=1|sh4")
        );

        // Record one point under config A.
        {
            let j = Arc::new(Journal::open(&path, false, Some(&fp_a)).unwrap());
            let eng = SweepEngine::new(1).with_journal(j);
            let out = eng.run_keyed(&[7u64], |p| format!("k{p}"), |&p| R { v: p });
            assert_eq!(out, vec![R { v: 7 }]);
        }

        // Resuming under the same config restores the point.
        let j = Journal::open(&path, true, Some(&fp_a)).unwrap();
        assert_eq!(j.resumed_points(), 1);
        drop(j);

        // Resuming under config B must hard-error, not reuse stale points.
        let err = match Journal::open(&path, true, Some(&fp_b)) {
            Err(e) => e,
            Ok(_) => panic!("config mismatch must be rejected"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("different sweep config"), "{err}");

        // A legacy journal with points but no header is also rejected when
        // a fingerprint is demanded.
        std::fs::write(&path, "{\"key\":\"k7\",\"data\":{\"v\":7}}\n").unwrap();
        let err = match Journal::open(&path, true, Some(&fp_a)) {
            Err(e) => e,
            Ok(_) => panic!("headerless journal with points must be rejected"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("no config header"), "{err}");

        // ... but stays resumable with no fingerprint (repro's shared
        // multi-experiment journal).
        let j = Journal::open(&path, true, None).unwrap();
        assert_eq!(j.resumed_points(), 1);
        drop(j);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sweep_point_round_trips_through_journal_encoding() {
        let p = SweepPoint {
            rate: 0.06,
            net_latency: 23.5,
            queue_latency: 1.25,
            total_latency: 24.75,
            throughput: 0.0597,
            packets_ejected: 1234,
            upward_packets: 7,
            control_hops: 99,
            p50: 21.0,
            p95: 48.5,
            p99: 62.25,
            p999: 80.0,
            deadlocked: false,
            alerts: AlertCounts {
                throughput_collapse: 2,
                injection_starvation: 1,
                popup_storm: 0,
                watchdog_cascade: 0,
                circuit_saturation: 0,
                permit_queue_runaway: 0,
                shard_imbalance: 3,
            },
        };
        let v = serde_json::to_value(p).unwrap();
        let back = SweepPoint::from_json_value(&v).unwrap();
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&p).unwrap()
        );
    }
}
