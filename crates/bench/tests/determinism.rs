//! Golden-stats regression tests: fixed-seed runs must produce
//! byte-identical `--json` summaries (a) against the committed goldens in
//! `tests/goldens/`, and (b) between serial and `--jobs N` execution.
//!
//! The goldens were recorded before the hot-path kernel optimisation pass
//! and are kept byte-for-byte, so they also prove the optimised simulator
//! produces exactly the output the allocation-heavy one did.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! UPP_UPDATE_GOLDENS=1 cargo test -p upp-bench --test determinism
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

fn goldens_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("upp-goldens-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Runs the `simulate` binary with the given args plus `--json OUT`, and
/// returns the JSON summary bytes.
fn simulate_json(args: &[&str], out_name: &str) -> String {
    let out = tmp_path(out_name);
    let _ = std::fs::remove_file(&out);
    let status = Command::new(env!("CARGO_BIN_EXE_simulate"))
        .args(args)
        .arg("--json")
        .arg(&out)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("simulate binary runs");
    assert!(status.success(), "simulate {args:?} failed: {status}");
    std::fs::read_to_string(&out).expect("simulate wrote the JSON summary")
}

/// Compares `actual` against the committed golden `name`, or rewrites the
/// golden when `UPP_UPDATE_GOLDENS=1`.
fn check_golden(name: &str, actual: &str) {
    let path = goldens_dir().join(name);
    if std::env::var("UPP_UPDATE_GOLDENS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(goldens_dir()).expect("goldens dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPP_UPDATE_GOLDENS=1 to record",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "{name}: output differs from committed golden.\n\
         If the change is intentional, refresh with UPP_UPDATE_GOLDENS=1.\n\
         --- golden ---\n{expected}\n--- actual ---\n{actual}"
    );
}

/// A single UPP run at high load: exercises detection, popup bypass, and
/// the control plane. Must match the committed golden byte-for-byte.
#[test]
fn upp_single_run_matches_golden() {
    let json = simulate_json(
        &[
            "--scheme",
            "upp",
            "--pattern",
            "transpose",
            "--rate",
            "0.10",
            "--cycles",
            "4000",
            "--seed",
            "7",
        ],
        "upp_single.json",
    );
    check_golden("upp_single_run.json", &json);
}

/// A composable-routing run (no recovery scheme): pins the baseline router
/// pipeline, VC allocation, and stat counters.
#[test]
fn composable_single_run_matches_golden() {
    let json = simulate_json(
        &[
            "--scheme",
            "composable",
            "--pattern",
            "uniform_random",
            "--rate",
            "0.08",
            "--cycles",
            "4000",
            "--seed",
            "11",
        ],
        "composable_single.json",
    );
    check_golden("composable_single_run.json", &json);
}

/// A faulty-link UPP run: covers the fault-rerouting paths.
#[test]
fn faulty_upp_run_matches_golden() {
    let json = simulate_json(
        &[
            "--scheme",
            "upp",
            "--pattern",
            "uniform_random",
            "--rate",
            "0.06",
            "--cycles",
            "4000",
            "--faults",
            "3",
            "--seed",
            "5",
        ],
        "faulty_upp.json",
    );
    check_golden("faulty_upp_run.json", &json);
}

/// The parallel sweep must be bit-identical serial vs `--jobs 4`, and match
/// the committed golden.
#[test]
fn sweep_is_jobs_invariant_and_matches_golden() {
    let base = [
        "--scheme",
        "upp",
        "--pattern",
        "uniform_random",
        "--sweep",
        "0.02,0.05,0.08",
        "--cycles",
        "1500",
        "--seed",
        "3",
    ];
    let serial = simulate_json(&[&base[..], &["--jobs", "1"]].concat(), "sweep_serial.json");
    let parallel = simulate_json(&[&base[..], &["--jobs", "4"]].concat(), "sweep_jobs4.json");
    assert!(
        serial == parallel,
        "per-point stats must be bit-identical for any --jobs value.\n\
         --- jobs 1 ---\n{serial}\n--- jobs 4 ---\n{parallel}"
    );
    check_golden("upp_sweep.json", &serial);
}
