//! Network configuration knobs (Table II of the paper).

use serde::{Deserialize, Serialize};

/// The link-level flow control discipline (Table I's flow-control
/// modularity column: UPP supports both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowControl {
    /// Flits advance independently; a blocked worm spans multiple routers.
    Wormhole,
    /// A head flit advances only when the downstream VC can hold the whole
    /// packet, so blocked packets are always fully buffered in one router.
    VirtualCutThrough,
}

/// Static configuration of the simulated network.
///
/// The defaults reproduce Table II of the paper: 3 VNets with 1 VC each,
/// 4 flit-deep VC buffers, a 3-stage router pipeline, 1-cycle links, wormhole
/// flow control, 5-flit data packets and 1-flit control packets.
///
/// # Examples
///
/// ```
/// use upp_noc::config::NocConfig;
///
/// let cfg = NocConfig::default().with_vcs_per_vnet(4);
/// assert_eq!(cfg.vcs_per_vnet, 4);
/// assert_eq!(cfg.num_vnets, 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Number of virtual networks (message classes).
    pub num_vnets: usize,
    /// Virtual channels per VNet (1 or 4 in the paper's experiments).
    pub vcs_per_vnet: usize,
    /// Depth of each VC buffer, in flits.
    pub vc_buffer_depth: usize,
    /// Link / flit width in bits (used by the energy and area models).
    pub flit_width_bits: usize,
    /// Size of a data packet, in flits.
    pub data_packet_flits: usize,
    /// Size of a control packet, in flits.
    pub control_packet_flits: usize,
    /// Link traversal latency in cycles.
    pub link_latency: u64,
    /// Credit return latency in cycles.
    pub credit_latency: u64,
    /// Capacity of each per-VNet NI ejection queue, in packets.
    pub ejection_queue_entries: usize,
    /// Capacity of each per-VNet NI injection queue, in packets.
    pub injection_queue_entries: usize,
    /// Cycles without any flit movement (while packets are in flight) after
    /// which the watchdog declares the network globally stalled.
    pub watchdog_threshold: u64,
    /// Link-level flow control discipline.
    pub flow_control: FlowControl,
}

impl NocConfig {
    /// Configuration used by the paper's baseline experiments (1 VC per VNet).
    pub fn baseline() -> Self {
        Self::default()
    }

    /// Returns a copy with a different number of VCs per VNet.
    pub fn with_vcs_per_vnet(mut self, vcs: usize) -> Self {
        self.vcs_per_vnet = vcs;
        self
    }

    /// Returns a copy with a different VC buffer depth.
    pub fn with_vc_buffer_depth(mut self, depth: usize) -> Self {
        self.vc_buffer_depth = depth;
        self
    }

    /// Returns a copy using virtual cut-through flow control (buffers are
    /// deepened to hold a whole data packet when necessary).
    pub fn with_virtual_cut_through(mut self) -> Self {
        self.flow_control = FlowControl::VirtualCutThrough;
        self.vc_buffer_depth = self.vc_buffer_depth.max(self.max_packet_flits());
        self
    }

    /// Total number of VCs on one port.
    #[inline]
    pub fn vcs_per_port(&self) -> usize {
        self.num_vnets * self.vcs_per_vnet
    }

    /// The largest packet size the network carries, in flits.
    #[inline]
    pub fn max_packet_flits(&self) -> usize {
        self.data_packet_flits.max(self.control_packet_flits)
    }

    /// Validates the configuration, returning a human-readable reason when it
    /// is unusable.
    ///
    /// # Errors
    ///
    /// Returns `Err` when any dimension is zero or when buffers cannot hold a
    /// single flit.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_vnets == 0 {
            return Err("num_vnets must be at least 1".into());
        }
        if self.num_vnets > 8 {
            return Err("num_vnets above 8 exceeds the one-hot signal encoding width".into());
        }
        if self.vcs_per_vnet == 0 {
            return Err("vcs_per_vnet must be at least 1".into());
        }
        if self.vc_buffer_depth == 0 {
            return Err("vc_buffer_depth must be at least 1".into());
        }
        if self.data_packet_flits == 0 || self.control_packet_flits == 0 {
            return Err("packet sizes must be at least 1 flit".into());
        }
        if self.link_latency == 0 {
            return Err("link_latency must be at least 1 cycle".into());
        }
        if self.credit_latency == 0 {
            return Err("credit_latency must be at least 1 cycle".into());
        }
        if self.ejection_queue_entries == 0 || self.injection_queue_entries == 0 {
            return Err("NI queues must hold at least 1 packet".into());
        }
        if self.flow_control == FlowControl::VirtualCutThrough
            && self.vc_buffer_depth < self.max_packet_flits()
        {
            return Err("virtual cut-through needs VC buffers at least one max packet deep".into());
        }
        Ok(())
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        Self {
            num_vnets: 3,
            vcs_per_vnet: 1,
            vc_buffer_depth: 4,
            flit_width_bits: 128,
            data_packet_flits: 5,
            control_packet_flits: 1,
            link_latency: 1,
            credit_latency: 1,
            ejection_queue_entries: 4,
            injection_queue_entries: 16,
            watchdog_threshold: 1_000,
            flow_control: FlowControl::Wormhole,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_ii() {
        let cfg = NocConfig::default();
        assert_eq!(cfg.num_vnets, 3);
        assert_eq!(cfg.vcs_per_vnet, 1);
        assert_eq!(cfg.vc_buffer_depth, 4);
        assert_eq!(cfg.flit_width_bits, 128);
        assert_eq!(cfg.data_packet_flits, 5);
        assert_eq!(cfg.control_packet_flits, 1);
        assert_eq!(cfg.link_latency, 1);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn builder_style_setters() {
        let cfg = NocConfig::default()
            .with_vcs_per_vnet(4)
            .with_vc_buffer_depth(8);
        assert_eq!(cfg.vcs_per_port(), 12);
        assert_eq!(cfg.vc_buffer_depth, 8);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn validation_rejects_degenerate_configs() {
        let mut cfg = NocConfig::default();
        cfg.num_vnets = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = NocConfig::default();
        cfg.vcs_per_vnet = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = NocConfig::default();
        cfg.vc_buffer_depth = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = NocConfig::default();
        cfg.num_vnets = 9;
        assert!(cfg.validate().is_err());

        let mut cfg = NocConfig::default();
        cfg.link_latency = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn max_packet_flits_covers_both_kinds() {
        let cfg = NocConfig::default();
        assert_eq!(cfg.max_packet_flits(), 5);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn virtual_cut_through_deepens_buffers_and_validates() {
        let cfg = NocConfig::default().with_virtual_cut_through();
        assert_eq!(cfg.flow_control, FlowControl::VirtualCutThrough);
        assert_eq!(cfg.vc_buffer_depth, 5);
        assert!(cfg.validate().is_ok());

        let mut bad = NocConfig::default();
        bad.flow_control = FlowControl::VirtualCutThrough;
        assert!(
            bad.validate().is_err(),
            "4-deep buffers cannot hold a 5-flit packet"
        );
    }
}
