//! Exhaustive model-checking CLI for the popup protocol.
//!
//! ```text
//! upp-check explore --routers N --queue-depth D --bound B
//!                   [--threshold T] [--ni-slots S] [--circuit-cap C]
//!                   [--chan-cap K] [--mutation M] [--no-symmetry]
//!                   [--max-states N] [--stats] [--dot FILE]
//!                   [--artifact FILE]
//! upp-check replay FILE
//! ```
//!
//! `explore` exhausts the reachable space of the abstract popup model and
//! checks bounded recovery and livelock freedom; on a violation it prints
//! (and with `--artifact`, writes) a counterexample artifact whose
//! embedded scenario `upp-check replay` — or `upp-verify`'s bridge —
//! re-executes in the full simulator. Exit codes: 0 both properties hold,
//! 3 violation found, 4 replay contradicts the artifact's prediction,
//! 2 usage error.

use std::process::ExitCode;

use upp_check::artifact::{clean_artifact, livelock_artifact, recovery_artifact};
use upp_check::explore::explore;
use upp_check::model::{ModelCfg, Mutation};
use upp_check::props::{check_bounded_recovery, check_no_livelock};
use upp_verify::bridge::{replay_artifact, CheckArtifact};

struct ExploreOpts {
    cfg: ModelCfg,
    symmetry: bool,
    max_states: usize,
    stats: bool,
    dot: Option<String>,
    artifact: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: upp-check explore --routers N --queue-depth D --bound B \
         [--threshold T] [--ni-slots S] [--circuit-cap C] [--chan-cap K] \
         [--mutation never-expire-watchdog|skip-circuit-insert|drop-absorber|bounce-ack] \
         [--no-symmetry] [--max-states N] [--stats] [--dot FILE] [--artifact FILE]\n       \
         upp-check replay FILE"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("explore") => run_explore(parse_explore(&args[1..])),
        Some("replay") => match args.get(1) {
            Some(path) => run_replay(path),
            None => usage(),
        },
        _ => usage(),
    }
}

fn parse_explore(args: &[String]) -> ExploreOpts {
    let mut o = ExploreOpts {
        cfg: ModelCfg::flagship(2),
        symmetry: true,
        max_states: 5_000_000,
        stats: false,
        dot: None,
        artifact: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage()).clone();
        match flag.as_str() {
            "--routers" => {
                o.cfg.routers = val().parse().unwrap_or_else(|_| usage());
                o.cfg.circuit_cap =
                    upp_core::protocol::circuit_capacity(o.cfg.routers as usize) as u8;
                o.cfg.chan_cap = o.cfg.routers;
            }
            "--queue-depth" => o.cfg.queue_depth = val().parse().unwrap_or_else(|_| usage()),
            "--bound" => o.cfg.bound = val().parse().unwrap_or_else(|_| usage()),
            "--threshold" => o.cfg.threshold = val().parse().unwrap_or_else(|_| usage()),
            "--ni-slots" => o.cfg.ni_slots = val().parse().unwrap_or_else(|_| usage()),
            "--circuit-cap" => o.cfg.circuit_cap = val().parse().unwrap_or_else(|_| usage()),
            "--chan-cap" => o.cfg.chan_cap = val().parse().unwrap_or_else(|_| usage()),
            "--mutation" => {
                o.cfg.mutation = Some(Mutation::parse(&val()).unwrap_or_else(|| usage()))
            }
            "--no-symmetry" => o.symmetry = false,
            "--max-states" => o.max_states = val().parse().unwrap_or_else(|_| usage()),
            "--stats" => o.stats = true,
            "--dot" => o.dot = Some(val()),
            "--artifact" => o.artifact = Some(val()),
            _ => usage(),
        }
    }
    o
}

fn write_artifact(path: &Option<String>, artifact: &CheckArtifact) {
    if let Some(path) = path {
        std::fs::write(path, artifact.to_json()).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("artifact written to {path}");
    }
}

fn run_explore(o: ExploreOpts) -> ExitCode {
    let ex = match explore(&o.cfg, o.symmetry, o.max_states) {
        Ok(ex) => ex,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    println!("model: {}", o.cfg.describe());
    println!(
        "explored {} states, {} transitions (symmetry {})",
        ex.stats.states,
        ex.stats.transitions,
        if o.symmetry { "on" } else { "off" }
    );
    if o.stats {
        println!("  max depth            {}", ex.stats.max_depth);
        println!(
            "  dedup ratio          {:.3} ({} hits)",
            ex.stats.dedup_ratio(),
            ex.stats.dedup_hits
        );
        println!("  fingerprint clashes  {}", ex.stats.fingerprint_collisions);
        println!("  channel-bound clips  {}", ex.stats.bound_hits);
        println!("  deadlock states      {}", ex.stats.deadlock_states);
        println!("  drained states       {}", ex.stats.drained_states);
    }
    if ex.stats.bound_hits > 0 {
        println!(
            "note: {} transition(s) clipped by --chan-cap; exhaustive only up to that bound",
            ex.stats.bound_hits
        );
    }
    if let Some(path) = &o.dot {
        if let Err(e) = std::fs::write(path, ex.to_dot()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("state graph written to {path}");
    }

    let recovery = check_bounded_recovery(&ex);
    let livelock = check_no_livelock(&ex);

    match (&recovery, &livelock) {
        (Ok(proof), Ok(())) => {
            println!(
                "P1 bounded recovery: HOLDS — every state drains within {} transitions \
                 ({} deadlock states covered, {} drained states)",
                proof.bound, proof.deadlock_states, proof.drained_states
            );
            println!("P2 no popup livelock: HOLDS — no non-progress cycle is reachable");
            write_artifact(&o.artifact, &clean_artifact(&ex));
            ExitCode::SUCCESS
        }
        (Err(v), _) => {
            println!(
                "P1 bounded recovery: VIOLATED — {} reachable state(s) can never drain",
                v.count
            );
            let artifact = recovery_artifact(&ex, v);
            print_trace(&artifact);
            write_artifact(&o.artifact, &artifact);
            ExitCode::from(3)
        }
        (Ok(_), Err(v)) => {
            println!(
                "P2 no popup livelock: VIOLATED — non-progress cycle of length {} reachable",
                v.cycle.len()
            );
            let artifact = livelock_artifact(&ex, v);
            print_trace(&artifact);
            write_artifact(&o.artifact, &artifact);
            ExitCode::from(3)
        }
    }
}

fn print_trace(artifact: &CheckArtifact) {
    println!("counterexample ({} steps):", artifact.steps.len());
    for (i, step) in artifact.steps.iter().enumerate() {
        println!("  {:>3}. {:<22} {}", i + 1, step.transition, step.state);
    }
    println!(
        "concrete replay: scheme {:?}, predicted outcome: {}",
        artifact.scenario.scheme, artifact.expected
    );
}

fn run_replay(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let artifact = match CheckArtifact::from_json(&text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying {} artifact (model {}, mutation {}) through the concrete simulator...",
        artifact.property,
        artifact.model,
        artifact.mutation.as_deref().unwrap_or("none")
    );
    let report = replay_artifact(&artifact);
    println!("{}", report.summary());
    if report.confirmed {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(4)
    }
}
