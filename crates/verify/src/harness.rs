//! Runs scenarios under the oracle and differentially compares schemes.
//!
//! One [`run_scenario`] call executes a [`Scenario`] end to end: the fault
//! plan is applied between cycles, offered traffic is retried until the
//! source NI accepts it, delivered packets are drained every cycle
//! (respecting consumption pauses) and the deadlock oracle observes every
//! cycle. The report carries the *multiset* of accepted sends and of
//! delivered packets keyed by `(src, dest, vnet, len)` — a correct scheme
//! must drain with the two multisets equal (no loss, no duplication, no
//! misdelivery) and nothing left in flight.
//!
//! [`run_differential`] runs the same traffic and faults under several
//! schemes and cross-checks their delivered multisets against each other.

use std::collections::{BTreeMap, VecDeque};

use upp_noc::config::NocConfig;
use upp_noc::fault::FaultPlan;
use upp_noc::ids::{Cycle, NodeId, VnetId};
use upp_noc::ni::ConsumePolicy;
use upp_noc::profile::SpanRecorder;
use upp_tracetools::ProfileSummary;
use upp_workloads::runner::build_system;

use crate::oracle::{DeadlockOracle, OracleConfig, OracleViolation};
use crate::scenario::{scheme_kind, system_spec, Scenario};

/// Multiset key for end-to-end delivery checks.
pub type DeliveryKey = (u32, u32, u8, u16);

/// How one scenario run ended.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// All accepted traffic delivered and nothing left in flight.
    Drained {
        /// Cycle the network emptied.
        at: Cycle,
    },
    /// The scheme-independent oracle confirmed a persistent circular wait.
    OracleViolation(OracleViolation),
    /// The run hit its cycle bound with packets still in flight.
    Stuck {
        /// Packets still in flight at the bound.
        in_flight: usize,
        /// Cycle of the last observed flit movement.
        last_progress: Cycle,
    },
}

/// Everything observed over one scenario run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scheme label the run used.
    pub scheme: String,
    /// Packets accepted into source NIs.
    pub created: usize,
    /// Multiset of accepted sends.
    pub sent: BTreeMap<DeliveryKey, usize>,
    /// Multiset of delivered packets.
    pub delivered: BTreeMap<DeliveryKey, usize>,
    /// How the run ended.
    pub verdict: Verdict,
    /// Cycle the run stopped.
    pub end_cycle: Cycle,
    /// Per-packet latency attribution for the run (phases, histograms,
    /// contention counters) — lets campaign reports explain *where* each
    /// scheme's cycles went, not just whether it drained.
    pub profile: ProfileSummary,
    /// Health-monitor alert stream of the run: one `upp-alerts/v1` JSONL
    /// line per hysteresis transition, in emission order. Every scenario
    /// run arms the watcher, so harness assertions can demand clean runs
    /// stay alert-free and wedged runs fire the deadlock-adjacent
    /// detectors. Byte-equality across kernels/schedulers is enforced by
    /// the equivalence suites.
    pub alerts: Vec<String>,
}

impl RunReport {
    /// A human-readable failure description, or `None` when the run is
    /// fully healthy (drained, conserved, delivery multiset matches sends).
    pub fn failure(&self) -> Option<String> {
        match &self.verdict {
            Verdict::OracleViolation(v) => Some(format!("oracle: {v}")),
            Verdict::Stuck {
                in_flight,
                last_progress,
            } => Some(format!(
                "stuck at cycle {}: {} packets in flight, no progress since {}",
                self.end_cycle, in_flight, last_progress
            )),
            Verdict::Drained { .. } => {
                if self.sent == self.delivered {
                    None
                } else {
                    Some(multiset_diff(
                        "sent",
                        &self.sent,
                        "delivered",
                        &self.delivered,
                    ))
                }
            }
        }
    }
}

fn multiset_diff(
    la: &str,
    a: &BTreeMap<DeliveryKey, usize>,
    lb: &str,
    b: &BTreeMap<DeliveryKey, usize>,
) -> String {
    let mut diffs = Vec::new();
    for (k, &n) in a {
        let m = b.get(k).copied().unwrap_or(0);
        if n != m {
            diffs.push(format!(
                "n{}->n{} vnet{} len{}: {la} {n} {lb} {m}",
                k.0, k.1, k.2, k.3
            ));
        }
    }
    for (k, &m) in b {
        if !a.contains_key(k) {
            diffs.push(format!(
                "n{}->n{} vnet{} len{}: {la} 0 {lb} {m}",
                k.0, k.1, k.2, k.3
            ));
        }
    }
    let shown = diffs.len().min(8);
    let mut msg = format!("multiset mismatch ({} keys differ): ", diffs.len());
    msg.push_str(&diffs[..shown].join("; "));
    if diffs.len() > shown {
        msg.push_str("; ...");
    }
    msg
}

/// Oracle parameters matched to a scenario's scale: sample densely, demand
/// persistence long enough that every correct scheme has recovered (UPP's
/// detection threshold plus popup drain fit comfortably), but short enough
/// to confirm within the scenario's cycle bound.
pub fn oracle_for(sc: &Scenario) -> OracleConfig {
    OracleConfig {
        sample_every: 25,
        persist_threshold: (sc.max_cycles / 4).clamp(600, 2_000),
    }
}

/// Runs one scenario to completion under the oracle.
///
/// # Panics
///
/// Panics when the scenario names an unknown system or scheme (use
/// [`Scenario::from_json`]'s validation for untrusted input).
pub fn run_scenario(sc: &Scenario, oracle_cfg: OracleConfig) -> RunReport {
    run_scenario_with(sc, oracle_cfg, true)
}

/// [`run_scenario`] with explicit control over the network's active-set
/// cycle scheduler — the handle equivalence tests use to run the same
/// scenario with and without idle-component skipping and demand identical
/// reports. No environment variables are involved, so concurrent test
/// threads can't race on the setting.
pub fn run_scenario_with(sc: &Scenario, oracle_cfg: OracleConfig, scheduler: bool) -> RunReport {
    run_scenario_sharded(sc, oracle_cfg, scheduler, 1)
}

/// [`run_scenario_with`] on the spatially sharded parallel kernel
/// (`shards` > 1 selects it; see `Network::set_shards`). The
/// shard-equivalence suite demands reports identical to the serial
/// kernel's, byte for byte.
pub fn run_scenario_sharded(
    sc: &Scenario,
    oracle_cfg: OracleConfig,
    scheduler: bool,
    shards: usize,
) -> RunReport {
    run_scenario_watched(
        sc,
        oracle_cfg,
        scheduler,
        shards,
        upp_noc::watch::WatchConfig::default(),
    )
}

/// [`run_scenario_sharded`] with explicit health-monitor tuning — the
/// watch differential tests lower thresholds to exercise scheme-specific
/// detectors (popup storms, permit runaway) on mini scenarios whose
/// absolute rates never reach the production defaults.
pub fn run_scenario_watched(
    sc: &Scenario,
    oracle_cfg: OracleConfig,
    scheduler: bool,
    shards: usize,
    watch_cfg: upp_noc::watch::WatchConfig,
) -> RunReport {
    let spec = system_spec(&sc.system).expect("known system");
    let kind = scheme_kind(&sc.scheme).expect("known scheme");
    let cfg = NocConfig::default().with_vcs_per_vnet(sc.vcs_per_vnet);
    let mut built = build_system(&spec, cfg, &kind, 0, sc.seed, ConsumePolicy::External);
    built.sys.net_mut().set_active_scheduler(scheduler);
    if shards > 1 {
        let eff = built.sys.set_shards(shards);
        assert!(
            eff > 1,
            "sharded scenario run degraded to the serial kernel"
        );
    }
    built
        .sys
        .net_mut()
        .tracer_mut()
        .set_profiler(Some(Box::new(SpanRecorder::new())));
    // The health monitor observes every run (obs is registry-only and the
    // watcher reads cumulative values, so neither perturbs the protocols
    // or the delivered multisets).
    built.sys.net_mut().enable_obs();
    let watch_every = watch_cfg.every;
    let mut watcher = upp_noc::watch::Watcher::new(watch_cfg);
    watcher.arm(built.sys.net());
    let endpoints: Vec<NodeId> = {
        let topo = built.sys.net().topo();
        topo.chiplets()
            .iter()
            .flat_map(|c| c.routers.iter().copied())
            .collect()
    };
    let num_vnets = built.sys.net().router(endpoints[0]).num_vnets();

    let mut plan = FaultPlan::new(sc.faults.clone());
    let mut oracle = DeadlockOracle::new(oracle_cfg);
    let mut sent: BTreeMap<DeliveryKey, usize> = BTreeMap::new();
    let mut delivered: BTreeMap<DeliveryKey, usize> = BTreeMap::new();
    let mut created = 0usize;
    let mut pending: VecDeque<usize> = VecDeque::new();
    let mut next_entry = 0usize;

    let verdict = loop {
        let now = built.sys.net().cycle();
        plan.apply_due(built.sys.net_mut());
        while next_entry < sc.traffic.len() && sc.traffic[next_entry].at <= now {
            pending.push_back(next_entry);
            next_entry += 1;
        }
        // Offer pending sends in order; keep what the NIs reject for the
        // next cycle (offered traffic is delayed, never dropped).
        for _ in 0..pending.len() {
            let i = pending.pop_front().expect("non-empty");
            let e = &sc.traffic[i];
            if built.sys.send(e.src, e.dest, e.vnet, e.len_flits).is_some() {
                created += 1;
                *sent
                    .entry((e.src.0, e.dest.0, e.vnet.0, e.len_flits))
                    .or_default() += 1;
            } else {
                pending.push_back(i);
            }
        }
        built.sys.step();
        for &node in &endpoints {
            if built.sys.net().ni(node).consumption_paused() {
                continue;
            }
            for v in 0..num_vnets {
                while let Some(d) = built.sys.net_mut().pop_delivered(node, VnetId(v as u8)) {
                    *delivered
                        .entry((d.pkt.src.0, d.pkt.dest.0, d.pkt.vnet.0, d.pkt.len_flits))
                        .or_default() += 1;
                }
            }
        }
        if built.sys.net().cycle().is_multiple_of(watch_every) {
            built.sys.observe();
            watcher.feed(built.sys.net());
        }
        oracle.observe(built.sys.net());
        if let Some(v) = oracle.violation() {
            break Verdict::OracleViolation(v.clone());
        }
        let net = built.sys.net();
        if next_entry == sc.traffic.len()
            && pending.is_empty()
            && plan.exhausted()
            && net.in_flight() == 0
        {
            break Verdict::Drained { at: net.cycle() };
        }
        if net.cycle() >= sc.max_cycles {
            break Verdict::Stuck {
                in_flight: net.in_flight(),
                last_progress: net.last_progress(),
            };
        }
    };

    let mut profile = ProfileSummary::new(sc.system.clone(), sc.scheme.clone());
    if let Some(mut rec) = built.sys.net_mut().tracer_mut().set_profiler(None) {
        profile.absorb_recorder(&mut rec);
    }
    RunReport {
        scheme: sc.scheme.clone(),
        created,
        sent,
        delivered,
        verdict,
        end_cycle: built.sys.net().cycle(),
        profile,
        alerts: watcher.alerts().iter().map(|a| a.jsonl()).collect(),
    }
}

/// Differential comparison of several schemes over identical traffic and
/// faults.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// One report per scheme, in the order given.
    pub reports: Vec<RunReport>,
    /// Human-readable failures: per-run problems plus cross-scheme
    /// delivered-multiset mismatches. Empty means all schemes agree and
    /// are healthy.
    pub failures: Vec<String>,
}

impl DiffReport {
    /// True when every scheme drained, conserved and agreed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs `base` under each scheme label and cross-checks the outcomes.
pub fn run_differential(base: &Scenario, schemes: &[&str], oracle_cfg: OracleConfig) -> DiffReport {
    let mut reports = Vec::new();
    let mut failures = Vec::new();
    for &label in schemes {
        let mut sc = base.clone();
        sc.scheme = label.to_string();
        let report = run_scenario(&sc, oracle_cfg);
        if let Some(f) = report.failure() {
            failures.push(format!("[{label}] {f}"));
        }
        reports.push(report);
    }
    for pair in reports.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if a.delivered != b.delivered {
            failures.push(format!(
                "[{} vs {}] {}",
                a.scheme,
                b.scheme,
                multiset_diff(&a.scheme, &a.delivered, &b.scheme, &b.delivered)
            ));
        }
    }
    DiffReport { reports, failures }
}
