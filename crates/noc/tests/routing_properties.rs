//! Property tests over topologies and routing: every route terminates at its
//! destination, never uses faulty links, crosses the vertical boundary the
//! right number of times, and the static binding invariant of Sec. V-D holds
//! for every seed.

use proptest::prelude::*;
use std::sync::Arc;
use upp_noc::ids::Port;
use upp_noc::routing::{trace_route, ChipletRouting, RouteComputer, RouteTables};
use upp_noc::topology::{chiplet::inject_random_faults, ChipletSystemSpec, SystemKind};

fn system_kind() -> impl Strategy<Value = SystemKind> {
    prop_oneof![
        Just(SystemKind::Baseline),
        Just(SystemKind::Large),
        Just(SystemKind::BoundaryCount(2)),
        Just(SystemKind::BoundaryCount(8)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn topologies_validate_for_any_seed(kind in system_kind(), seed in 0u64..1_000) {
        let topo = ChipletSystemSpec::of_kind(kind).build(seed).expect("spec builds");
        topo.validate().expect("built topologies validate");
        // Binding is minimal-distance for every router.
        for c in topo.chiplets() {
            for &r in &c.routers {
                let d = topo.manhattan(r, topo.bound_boundary(r));
                for &b in &c.boundary_routers {
                    prop_assert!(topo.manhattan(r, b) >= d);
                }
            }
        }
    }

    #[test]
    fn xy_routes_terminate_and_cross_once(
        kind in system_kind(),
        seed in 0u64..100,
        si in 0usize..4096,
        di in 0usize..4096,
    ) {
        let topo = ChipletSystemSpec::of_kind(kind).build(seed).expect("spec builds");
        let nodes: Vec<_> = topo.nodes().iter().map(|n| n.id).collect();
        let (src, dest) = (nodes[si % nodes.len()], nodes[di % nodes.len()]);
        prop_assume!(src != dest);
        let routing = ChipletRouting::xy();
        let hops = trace_route(&topo, &routing, src, dest);
        prop_assert_eq!(hops.last().map(|&(n, _)| n), Some(dest));
        let downs = hops.iter().filter(|&&(_, p)| p == Port::Down).count();
        let ups = hops.iter().filter(|&&(_, p)| p == Port::Up).count();
        let plan = routing.plan(&topo, src, dest);
        prop_assert_eq!(downs, usize::from(plan.class.descends()));
        prop_assert_eq!(ups, usize::from(plan.class.ascends()));
    }

    #[test]
    fn faulty_routes_avoid_failed_links(
        faults in 1usize..16,
        fault_seed in 0u64..50,
        si in 0usize..4096,
        di in 0usize..4096,
    ) {
        let mut topo = ChipletSystemSpec::baseline().build(0).expect("spec builds");
        prop_assume!(inject_random_faults(&mut topo, faults, fault_seed).is_ok());
        let tables = Arc::new(RouteTables::build(&topo));
        let routing = ChipletRouting::with_tables(tables);
        let nodes: Vec<_> = topo.nodes().iter().map(|n| n.id).collect();
        let (src, dest) = (nodes[si % nodes.len()], nodes[di % nodes.len()]);
        prop_assume!(src != dest);
        let hops = trace_route(&topo, &routing, src, dest);
        for &(n, p) in &hops {
            if p != Port::Local {
                prop_assert!(!topo.is_link_faulty(n, p), "route uses faulty {n}:{p}");
            }
        }
        prop_assert_eq!(hops.last().map(|&(n, _)| n), Some(dest));
    }

    #[test]
    fn entry_binding_is_destination_determined(
        seed in 0u64..100,
        di in 0usize..64,
        s1 in 0usize..64,
        s2 in 0usize..64,
    ) {
        // Sec. V-D: all packets to one chiplet router enter its chiplet via
        // the same interposer router, regardless of source.
        let topo = ChipletSystemSpec::baseline().build(seed).expect("spec builds");
        let cores: Vec<_> = topo
            .chiplets()
            .iter()
            .flat_map(|c| c.routers.iter().copied())
            .collect();
        let dest = cores[di % cores.len()];
        let routing = ChipletRouting::xy();
        let mut entries = Vec::new();
        for &src in &[cores[s1 % cores.len()], cores[s2 % cores.len()]] {
            if topo.chiplet_of(src) == topo.chiplet_of(dest) {
                continue;
            }
            entries.push(routing.plan(&topo, src, dest).entry_interposer);
        }
        entries.dedup();
        prop_assert!(entries.len() <= 1, "entry interposer must be unique per destination");
    }
}
