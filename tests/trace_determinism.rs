//! The flight recorder's zero-interference guarantee: attaching a tracer —
//! disabled or recording — must not change a single simulation outcome.
//! Two systems with identical seeds and traffic, one with
//! `TraceSink::Disabled` (the default) and one with a recording ring sink,
//! must produce byte-identical statistics.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use upp_core::{Upp, UppConfig};
use upp_noc::config::NocConfig;
use upp_noc::ids::{NodeId, VnetId};
use upp_noc::network::Network;
use upp_noc::ni::ConsumePolicy;
use upp_noc::routing::ChipletRouting;
use upp_noc::scheme::NoScheme;
use upp_noc::sim::System;
use upp_noc::trace::Tracer;

fn build(scheme: &str, seed: u64) -> System {
    let topo = upp_noc::topology::ChipletSystemSpec::baseline()
        .build(0)
        .unwrap();
    let net = Network::new(
        NocConfig::default(),
        topo,
        Arc::new(ChipletRouting::xy()),
        ConsumePolicy::Immediate { latency: 1 },
        seed,
    );
    let scheme: Box<dyn upp_noc::scheme::Scheme> = match scheme {
        "none" => Box::new(NoScheme),
        "upp" => Box::new(Upp::new(UppConfig::with_threshold(5))),
        other => panic!("unknown scheme {other}"),
    };
    System::new(net, scheme)
}

/// Identical pseudo-random traffic for both systems.
fn drive(sys: &mut System, seed: u64, cycles: u64, rate: f64) {
    let nodes: Vec<NodeId> = sys
        .net()
        .topo()
        .chiplets()
        .iter()
        .flat_map(|c| c.routers.iter().copied())
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..cycles {
        for &src in &nodes {
            if rng.gen::<f64>() >= rate {
                continue;
            }
            let dest = nodes[rng.gen_range(0..nodes.len())];
            if dest == src {
                continue;
            }
            let vnet = VnetId(rng.gen_range(0..3u8));
            let len = if vnet.0 == 2 { 5 } else { 1 };
            let _ = sys.send(src, dest, vnet, len);
        }
        sys.step();
    }
}

fn run_pair(scheme: &str, seed: u64) {
    let mut plain = build(scheme, seed);
    let mut traced = build(scheme, seed);
    traced.net_mut().set_tracer(Tracer::ring(1 << 16));

    drive(&mut plain, seed, 2_000, 0.20);
    drive(&mut traced, seed, 2_000, 0.20);
    let _ = plain.run_until_drained(100_000);
    let _ = traced.run_until_drained(100_000);

    let tracer = traced.net_mut().set_tracer(Tracer::disabled());
    assert!(
        !tracer.is_empty(),
        "{scheme}: the recording run must actually have captured events"
    );
    // Byte-identical statistics: tracing observed the run without touching
    // RNG draws, arbitration order or timing.
    assert_eq!(
        format!("{:?}", plain.net().stats()),
        format!("{:?}", traced.net().stats()),
        "{scheme} seed {seed}: tracer perturbed the simulation"
    );
    assert_eq!(plain.net().cycle(), traced.net().cycle());
    assert_eq!(plain.net().in_flight(), traced.net().in_flight());
}

#[test]
fn disabled_and_recording_tracers_agree_without_scheme() {
    run_pair("none", 3);
}

#[test]
fn disabled_and_recording_tracers_agree_under_upp() {
    run_pair("upp", 3);
}
