//! `upp-trace` — analysis CLI over flight-recorder traces and profiles.
//!
//! ```text
//! upp-trace analyze <input> [--json] [--out FILE]
//! upp-trace heatmap <input> [--csv-out FILE] [--svg-out FILE]
//! upp-trace critical-path <input> [--top N]
//! upp-trace diff <a> <b>
//! upp-trace obs <input> [--csv-out FILE] [--svg-out FILE] [--metric NAME]
//! ```
//!
//! `<input>` is either a profile summary JSON written by
//! `simulate --profile-out` (detected by its `"upp_profile": 1` marker) or
//! a raw JSONL flight-recorder trace from `simulate --trace`; both yield
//! the same `ProfileSummary`. Use `--system`/`--scheme` to label raw
//! traces (profiles carry their own labels).
//!
//! `obs` instead reads protocol-state telemetry: a summary JSON from
//! `simulate --obs` (also embedded as the `"obs"` field of `--json`
//! payloads) or an epoch JSONL stream from `--obs-every`/`--obs-out`,
//! auto-detected by their markers.

use std::fs::File;
use std::io::{BufReader, Read};
use std::process::ExitCode;

use upp_tracetools::render;
use upp_tracetools::summary::ProfileSummary;

fn usage() -> ! {
    eprintln!(
        "usage:\n\
         upp-trace analyze <input> [--json] [--out FILE] [--system S] [--scheme S]\n\
         upp-trace heatmap <input> [--csv-out FILE] [--svg-out FILE] [--system S]\n\
         upp-trace critical-path <input> [--top N] [--system S] [--scheme S]\n\
         upp-trace diff <a> <b>\n\
         upp-trace obs <input> [--csv-out FILE] [--svg-out FILE] [--metric NAME]\n\
         upp-trace alerts <input> [--csv-out FILE] [--svg-out FILE]\n\
         upp-trace live <input> [--follow] [--poll-ms N] [--idle-ms N]\n\
         \n\
         <input>: profile JSON from `simulate --profile-out` or JSONL from\n\
         `simulate --trace`; the kind is auto-detected. `obs` reads telemetry\n\
         summaries (`simulate --obs`, or `--json` payloads embedding one) and\n\
         epoch streams (`--obs-every`/`--obs-out`); repeat --metric to select\n\
         the series plotted by --svg-out (default: all). `alerts` renders an\n\
         upp-alerts/v1 stream (`simulate --watch-out`) as a table, CSV\n\
         timeline or SVG lane chart. `live` tails an alert or obs-epoch JSONL\n\
         stream as it is written: --follow keeps polling for appended lines\n\
         (every --poll-ms, default 200) until the file goes --idle-ms\n\
         (default 5000) without growth; without --follow it renders what is\n\
         there and exits."
    );
    std::process::exit(2)
}

/// Loads either input shape into a summary; `system`/`scheme` label raw
/// JSONL traces and are ignored when the profile document carries its own.
fn load(path: &str, system: &str, scheme: &str) -> Result<ProfileSummary, String> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("{path}: {e}"))?;
    let head = text.trim_start();
    if head.starts_with('{') {
        if let Ok(v) = serde_json::from_str(head) {
            if ProfileSummary::is_profile_value(&v) {
                return ProfileSummary::from_json(head).map_err(|e| format!("{path}: {e}"));
            }
        }
    }
    let (summary, malformed) =
        ProfileSummary::from_jsonl(BufReader::new(text.as_bytes()), system, scheme)
            .map_err(|e| format!("{path}: {e}"))?;
    if malformed > 0 {
        eprintln!("warning: {path}: skipped {malformed} malformed trace lines");
    }
    Ok(summary)
}

fn write_or_die(path: &str, content: &str) {
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("error: {path}: {e}");
        std::process::exit(1);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };

    // Shared flag parsing: positional inputs plus `--flag value` pairs.
    let mut inputs: Vec<&str> = Vec::new();
    let mut json = false;
    let mut out: Option<&str> = None;
    let mut csv_out: Option<&str> = None;
    let mut svg_out: Option<&str> = None;
    let mut system = String::new();
    let mut scheme = String::new();
    let mut top = 10usize;
    let mut metrics: Vec<String> = Vec::new();
    let mut follow = false;
    let mut poll_ms = 200u64;
    let mut idle_ms = 5_000u64;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().map(String::as_str).unwrap_or_else(|| usage());
        match a.as_str() {
            "--json" => json = true,
            "--out" => out = Some(val()),
            "--csv-out" => csv_out = Some(val()),
            "--svg-out" => svg_out = Some(val()),
            "--system" => system = val().to_string(),
            "--scheme" => scheme = val().to_string(),
            "--top" => top = val().parse().unwrap_or_else(|_| usage()),
            "--metric" => metrics.push(val().to_string()),
            "--follow" => follow = true,
            "--poll-ms" => poll_ms = val().parse().unwrap_or_else(|_| usage()),
            "--idle-ms" => idle_ms = val().parse().unwrap_or_else(|_| usage()),
            flag if flag.starts_with("--") => usage(),
            input => inputs.push(input),
        }
    }

    let one_input = || -> &str {
        if inputs.len() != 1 {
            usage()
        }
        inputs[0]
    };
    let load_or_die = |path: &str| -> ProfileSummary {
        match load(path, &system, &scheme) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    };

    match cmd.as_str() {
        "analyze" => {
            let p = load_or_die(one_input());
            let rendered = if json {
                p.to_json()
            } else {
                render::analyze_text(&p)
            };
            match out {
                Some(path) => write_or_die(path, &rendered),
                None => print!("{rendered}"),
            }
        }
        "heatmap" => {
            let p = load_or_die(one_input());
            let csv = format!("{}\n{}", render::router_csv(&p), render::link_csv(&p));
            match csv_out {
                Some(path) => write_or_die(path, &csv),
                None => print!("{csv}"),
            }
            if let Some(path) = svg_out {
                match render::heatmap_svg(&p) {
                    Some(svg) => write_or_die(path, &svg),
                    None => {
                        eprintln!(
                            "error: unknown system {:?}; pass --system \
                             baseline|large|b2|b8 for SVG layout",
                            p.system
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        "critical-path" => {
            let p = load_or_die(one_input());
            print!("{}", render::critical_path_text(&p, top));
        }
        "diff" => {
            if inputs.len() != 2 {
                usage()
            }
            let a = load_or_die(inputs[0]);
            let b = load_or_die(inputs[1]);
            print!("{}", render::diff_text(&a, &b));
        }
        "obs" => {
            let path = one_input();
            let mut text = String::new();
            if let Err(e) = File::open(path).and_then(|mut f| f.read_to_string(&mut text)) {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
            let report = match upp_tracetools::obs::ObsReport::parse(&text) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            print!("{}", upp_tracetools::obs::report_text(&report));
            if let Some(p) = csv_out {
                match upp_tracetools::obs::timeseries_csv(&report) {
                    Some(csv) => write_or_die(p, &csv),
                    None => eprintln!("error: --csv-out needs epoch input (simulate --obs-every)"),
                }
            }
            if let Some(p) = svg_out {
                match upp_tracetools::obs::timeseries_svg(&report, &metrics) {
                    Some(svg) => write_or_die(p, &svg),
                    None => eprintln!("error: --svg-out needs epoch input (simulate --obs-every)"),
                }
            }
        }
        "alerts" => {
            let path = one_input();
            let mut text = String::new();
            if let Err(e) = File::open(path).and_then(|mut f| f.read_to_string(&mut text)) {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
            let report = match upp_tracetools::alerts::AlertsReport::parse(&text) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            print!("{}", upp_tracetools::alerts::report_text(&report));
            if let Some(p) = csv_out {
                write_or_die(p, &upp_tracetools::alerts::timeline_csv(&report));
            }
            if let Some(p) = svg_out {
                write_or_die(p, &upp_tracetools::alerts::lanes_svg(&report));
            }
        }
        "live" => {
            let path = one_input();
            if let Err(e) = live_tail(path, follow, poll_ms, idle_ms) {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        _ => usage(),
    }
    ExitCode::SUCCESS
}

/// Renders one freshly appended JSONL line for `live`: alert headers and
/// records get the alert table shape, obs epoch streams a compact cut
/// line, anything else is echoed raw.
fn render_live_line(line: &str) {
    if let Some(rec) = upp_tracetools::alerts::AlertRecord::from_json_line(line) {
        println!("{}", rec.render_line());
        return;
    }
    let parsed: Result<serde_json::Value, _> = serde_json::from_str(line);
    match parsed {
        Ok(v) if upp_tracetools::alerts::is_alerts_header(&v) => {
            let every = v
                .get("every")
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(0);
            println!("live: upp-alerts stream (epoch {every} cycles)");
        }
        Ok(v) if upp_tracetools::obs::is_obs_epochs_header(&v) => {
            println!("live: obs epoch stream");
        }
        Ok(v) => match v.get("cycle").and_then(serde_json::Value::as_u64) {
            Some(c) => println!("epoch cut at cycle {c}"),
            None => println!("{line}"),
        },
        Err(_) => println!("{line}"),
    }
}

/// Tails `path`, rendering complete lines as they appear. With `follow`,
/// polls every `poll_ms` until the file stops growing for `idle_ms`
/// (bounded, so scripted pipelines terminate); without it, renders the
/// current contents once. Partial trailing lines (a writer mid-append)
/// are held back until their newline arrives.
fn live_tail(path: &str, follow: bool, poll_ms: u64, idle_ms: u64) -> Result<(), String> {
    use std::io::{Seek, SeekFrom};
    let mut offset = 0u64;
    let mut carry = String::new();
    let mut idle = 0u64;
    loop {
        let mut f = File::open(path).map_err(|e| e.to_string())?;
        let len = f.metadata().map_err(|e| e.to_string())?.len();
        if len > offset {
            f.seek(SeekFrom::Start(offset)).map_err(|e| e.to_string())?;
            let mut new = String::new();
            f.read_to_string(&mut new).map_err(|e| e.to_string())?;
            offset = len;
            idle = 0;
            carry.push_str(&new);
            while let Some(nl) = carry.find('\n') {
                let line: String = carry.drain(..=nl).collect();
                let line = line.trim_end();
                if !line.is_empty() {
                    render_live_line(line);
                }
            }
        } else if !follow {
            break;
        } else {
            idle += poll_ms;
            if idle >= idle_ms {
                eprintln!("live: idle for {idle_ms} ms, exiting");
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(poll_ms.max(1)));
        }
        if !follow && len <= offset {
            break;
        }
    }
    if !carry.trim().is_empty() {
        render_live_line(carry.trim_end());
    }
    Ok(())
}
