//! Measurement: latency, throughput and event counters.

use crate::ids::{Cycle, NodeId, PacketId, VnetId};
use crate::packet::{PacketClass, PacketRef};
use serde::{Deserialize, Serialize};

/// Lifetime record of one packet, kept while it is in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Class relative to the vertical boundary.
    pub class: PacketClass,
    /// VNet.
    pub vnet: VnetId,
    /// Length in flits.
    pub len_flits: u16,
    /// Cycle the packet was enqueued at the source NI.
    pub created_at: Cycle,
    /// Cycle the head flit entered the network (left the NI), if it has.
    pub injected_at: Option<Cycle>,
    /// Cycle the tail flit was assembled at the destination NI, if it has.
    pub ejected_at: Option<Cycle>,
}

/// Aggregate statistics for one measurement window.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NetStats {
    /// Packets enqueued at NIs.
    pub packets_created: u64,
    /// Packets whose head flit entered the network.
    pub packets_injected: u64,
    /// Packets fully assembled at their destination NI.
    pub packets_ejected: u64,
    /// Flits that entered the network.
    pub flits_injected: u64,
    /// Flits delivered to destination NIs.
    pub flits_ejected: u64,
    /// Sum over ejected packets of network latency (inject -> eject).
    pub net_latency_sum: u64,
    /// Sum over ejected packets of source-queueing latency (create -> inject).
    pub queue_latency_sum: u64,
    /// Ejected-packet count per VNet.
    pub ejected_per_vnet: Vec<u64>,
    /// Histogram of total packet latency in power-of-two buckets
    /// (`bucket[i]` counts latencies in `[2^i, 2^(i+1))`).
    pub latency_histogram: Vec<u64>,
    /// Worst observed total latency.
    pub max_latency: u64,
    /// Control messages transmitted over links (popup protocol bandwidth).
    pub control_hops: u64,
    /// Upward (bypass) flit hops.
    pub bypass_hops: u64,
    /// Normal flit hops (switch traversals).
    pub flit_hops: u64,
    /// High-water mark of the req/stop control buffer across all routers.
    pub max_req_buffer_occupancy: usize,
    /// High-water mark of the ack control buffer across all routers.
    pub max_ack_buffer_occupancy: usize,
    /// Ejected packets and network-latency sums per packet class, indexed
    /// `[intra, c2i, i2c, c2c]` (the paper's three routing cases of
    /// Sec. V-D, with inter-chiplet split out).
    pub per_class: [(u64, u64); 4],
    /// Flits transmitted per directed link, flat-indexed
    /// `node.index() * Port::COUNT + port.index()` and grown on demand
    /// (`Local` counts ejections into the NI). Feeds the per-link
    /// utilization columns of [`crate::trace::MetricsSampler`].
    pub link_flits: Vec<u64>,
}

/// Dense index of a [`PacketClass`] into [`NetStats::per_class`].
pub fn class_index(c: PacketClass) -> usize {
    match c {
        PacketClass::Intra => 0,
        PacketClass::ChipletToInterposer => 1,
        PacketClass::InterposerToChiplet => 2,
        PacketClass::InterChiplet => 3,
    }
}

impl NetStats {
    /// Creates zeroed statistics for `num_vnets` VNets.
    pub fn new(num_vnets: usize) -> Self {
        Self {
            ejected_per_vnet: vec![0; num_vnets],
            latency_histogram: vec![0; 24],
            ..Self::default()
        }
    }

    /// Records a finished packet.
    pub fn record_ejection(&mut self, rec: &PacketRecord, now: Cycle) {
        let injected = rec.injected_at.unwrap_or(rec.created_at);
        let net = now.saturating_sub(injected);
        let queue = injected.saturating_sub(rec.created_at);
        self.packets_ejected += 1;
        self.net_latency_sum += net;
        self.queue_latency_sum += queue;
        if let Some(slot) = self.ejected_per_vnet.get_mut(rec.vnet.index()) {
            *slot += 1;
        }
        let slot = &mut self.per_class[class_index(rec.class)];
        slot.0 += 1;
        slot.1 += net;
        let total = net + queue;
        self.max_latency = self.max_latency.max(total);
        let bucket = (64 - u64::leading_zeros(total.max(1)) as usize - 1)
            .min(self.latency_histogram.len() - 1);
        self.latency_histogram[bucket] += 1;
    }

    /// Mean network latency (inject to eject) over ejected packets.
    pub fn avg_net_latency(&self) -> f64 {
        if self.packets_ejected == 0 {
            0.0
        } else {
            self.net_latency_sum as f64 / self.packets_ejected as f64
        }
    }

    /// Mean source-queueing latency over ejected packets.
    pub fn avg_queue_latency(&self) -> f64 {
        if self.packets_ejected == 0 {
            0.0
        } else {
            self.queue_latency_sum as f64 / self.packets_ejected as f64
        }
    }

    /// Mean total latency (create to eject).
    pub fn avg_total_latency(&self) -> f64 {
        self.avg_net_latency() + self.avg_queue_latency()
    }

    /// Mean network latency of one packet class, or `None` if no packet of
    /// that class finished in the window.
    pub fn avg_class_latency(&self, class: PacketClass) -> Option<f64> {
        let (n, sum) = self.per_class[class_index(class)];
        (n > 0).then(|| sum as f64 / n as f64)
    }

    /// Counts one flit leaving `node` through `port`.
    #[inline]
    pub fn bump_link(&mut self, node: NodeId, port: crate::ids::Port) {
        let idx = node.index() * crate::ids::Port::COUNT + port.index();
        if self.link_flits.len() <= idx {
            self.link_flits.resize(idx + 1, 0);
        }
        self.link_flits[idx] += 1;
    }

    /// Flits transmitted so far from `node` through `port`.
    #[inline]
    pub fn link_flit_count(&self, node: NodeId, port: crate::ids::Port) -> u64 {
        self.link_flits
            .get(node.index() * crate::ids::Port::COUNT + port.index())
            .copied()
            .unwrap_or(0)
    }

    /// Folds a shard-local delta into this aggregate and zeroes the delta
    /// for reuse next cycle. Every field is merged by its monoid (counters,
    /// sums and histograms add; high-water marks max), all of which are
    /// commutative and associative with a zero identity — so folding the
    /// per-shard deltas in any order reproduces the serial totals exactly.
    /// `link_touch` lists the flat `link_flits` indices the delta touched
    /// (first-touch log kept by the router ctx), making the per-link merge
    /// O(touched links) instead of O(all links); the on-demand growth then
    /// reaches exactly the same final length as the serial kernel's.
    pub fn absorb_shard_delta(&mut self, delta: &mut NetStats, link_touch: &[u32]) {
        use std::mem::take;
        self.packets_created += take(&mut delta.packets_created);
        self.packets_injected += take(&mut delta.packets_injected);
        self.packets_ejected += take(&mut delta.packets_ejected);
        self.flits_injected += take(&mut delta.flits_injected);
        self.flits_ejected += take(&mut delta.flits_ejected);
        self.net_latency_sum += take(&mut delta.net_latency_sum);
        self.queue_latency_sum += take(&mut delta.queue_latency_sum);
        for (g, d) in self
            .ejected_per_vnet
            .iter_mut()
            .zip(&mut delta.ejected_per_vnet)
        {
            *g += take(d);
        }
        for (g, d) in self
            .latency_histogram
            .iter_mut()
            .zip(&mut delta.latency_histogram)
        {
            *g += take(d);
        }
        self.max_latency = self.max_latency.max(take(&mut delta.max_latency));
        self.control_hops += take(&mut delta.control_hops);
        self.bypass_hops += take(&mut delta.bypass_hops);
        self.flit_hops += take(&mut delta.flit_hops);
        self.max_req_buffer_occupancy = self
            .max_req_buffer_occupancy
            .max(take(&mut delta.max_req_buffer_occupancy));
        self.max_ack_buffer_occupancy = self
            .max_ack_buffer_occupancy
            .max(take(&mut delta.max_ack_buffer_occupancy));
        for (g, d) in self.per_class.iter_mut().zip(&mut delta.per_class) {
            g.0 += take(&mut d.0);
            g.1 += take(&mut d.1);
        }
        for &ix in link_touch {
            let ix = ix as usize;
            if self.link_flits.len() <= ix {
                self.link_flits.resize(ix + 1, 0);
            }
            self.link_flits[ix] += take(&mut delta.link_flits[ix]);
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) of total packet latency by
    /// linear interpolation inside the power-of-two histogram buckets. The
    /// estimate is exact at bucket boundaries and never exceeds the worst
    /// observed latency; with no ejected packets it is `0.0`.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        let total: u64 = self.latency_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0.0;
        for (i, &n) in self.latency_histogram.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cum + n as f64;
            if next >= target {
                let lo = (1u64 << i) as f64;
                let hi = (1u64 << (i + 1)) as f64;
                let frac = ((target - cum) / n as f64).clamp(0.0, 1.0);
                return (lo + frac * (hi - lo)).min(self.max_latency.max(1) as f64);
            }
            cum = next;
        }
        self.max_latency as f64
    }

    /// Delivered throughput in flits per cycle per node.
    pub fn throughput(&self, cycles: u64, nodes: usize) -> f64 {
        if cycles == 0 || nodes == 0 {
            0.0
        } else {
            self.flits_ejected as f64 / cycles as f64 / nodes as f64
        }
    }
}

/// Tracks in-flight packets and the global-progress watchdog.
///
/// Records live in a slab indexed by the packet's [`PacketRef`] arena
/// handle, so the hot per-flit-event lookups are direct indexing rather
/// than hashing. Handles are recycled by the arena only after ejection
/// removes the record here, so a slot is never overwritten while live.
#[derive(Debug, Clone, Default)]
pub struct PacketTracker {
    live: Vec<Option<(PacketId, PacketRecord)>>,
    live_count: usize,
    next_id: u64,
    last_progress: Cycle,
}

impl PacketTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-reserves slab capacity for `n` concurrently-live packets.
    pub fn reserve(&mut self, n: usize) {
        if self.live.capacity() < n {
            self.live.reserve(n - self.live.len());
        }
    }

    /// Allocates a fresh packet id.
    pub fn alloc_id(&mut self) -> PacketId {
        let id = PacketId(self.next_id);
        self.next_id += 1;
        id
    }

    #[inline]
    fn slot(&mut self, h: PacketRef) -> &mut Option<(PacketId, PacketRecord)> {
        if self.live.len() <= h.index() {
            self.live.resize(h.index() + 1, None);
        }
        &mut self.live[h.index()]
    }

    /// Registers a newly-created packet under its arena handle.
    pub fn on_created(&mut self, h: PacketRef, id: PacketId, rec: PacketRecord) {
        let slot = self.slot(h);
        debug_assert!(slot.is_none(), "tracker slot {h} reused while live");
        *slot = Some((id, rec));
        self.live_count += 1;
    }

    /// Marks the head flit's network entry.
    pub fn on_injected(&mut self, h: PacketRef, now: Cycle) {
        if let Some(Some((_, r))) = self.live.get_mut(h.index()) {
            r.injected_at.get_or_insert(now);
        }
    }

    /// Marks complete ejection; removes and returns the record.
    pub fn on_ejected(&mut self, h: PacketRef, now: Cycle) -> Option<PacketRecord> {
        let (_, mut rec) = self.live.get_mut(h.index())?.take()?;
        self.live_count -= 1;
        rec.ejected_at = Some(now);
        Some(rec)
    }

    /// Looks up an in-flight packet by its arena handle.
    pub fn get(&self, h: PacketRef) -> Option<&PacketRecord> {
        self.live.get(h.index())?.as_ref().map(|(_, r)| r)
    }

    /// Looks up an in-flight packet by id (linear scan — cold path only).
    pub fn get_by_id(&self, id: PacketId) -> Option<&PacketRecord> {
        self.live
            .iter()
            .flatten()
            .find_map(|(i, r)| (*i == id).then_some(r))
    }

    /// Iterates all in-flight packets (unordered; callers needing a stable
    /// order sort by id). Powers the deadlock forensics of
    /// [`crate::trace::StallReport`].
    pub fn live_packets(&self) -> impl Iterator<Item = (PacketId, &PacketRecord)> {
        self.live.iter().flatten().map(|(id, rec)| (*id, rec))
    }

    /// Number of packets created but not yet fully ejected.
    pub fn in_flight(&self) -> usize {
        self.live_count
    }

    /// Exact heap bytes of the live-packet slab at its current length.
    pub fn mem_bytes(&self) -> usize {
        self.live.len() * std::mem::size_of::<Option<(PacketId, PacketRecord)>>()
    }

    /// Notes forward progress at `now` (any flit movement).
    pub fn touch(&mut self, now: Cycle) {
        self.last_progress = self.last_progress.max(now);
    }

    /// Cycle of the last observed movement.
    pub fn last_progress(&self) -> Cycle {
        self.last_progress
    }

    /// True when packets are in flight but nothing has moved for
    /// `threshold` cycles — the network is globally stalled (deadlocked or
    /// starved beyond plausibility).
    pub fn stalled(&self, now: Cycle, threshold: u64) -> bool {
        self.live_count > 0 && now.saturating_sub(self.last_progress) >= threshold
    }

    /// Whether fast-forwarding the clock to `to` keeps the watchdog
    /// cycle-exact: the jump must not skip over the cycle at which
    /// [`PacketTracker::stalled`] would first have fired. Since quiescent
    /// gaps are bounded by the calendar horizon (a few cycles) and every
    /// pending event was emitted by a movement that touched the tracker,
    /// this can only refuse in pathological states — but refusing is what
    /// makes the scheduler provably conservative rather than probably fine.
    pub fn advance_to(&self, to: Cycle, threshold: u64) -> bool {
        self.live_count == 0 || !self.stalled(to, threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(created: Cycle) -> PacketRecord {
        PacketRecord {
            src: NodeId(0),
            dest: NodeId(1),
            class: PacketClass::InterChiplet,
            vnet: VnetId(0),
            len_flits: 5,
            created_at: created,
            injected_at: Some(created + 3),
            ejected_at: None,
        }
    }

    #[test]
    fn latency_decomposition() {
        let mut s = NetStats::new(3);
        s.record_ejection(&rec(10), 33);
        assert_eq!(s.packets_ejected, 1);
        assert_eq!(s.net_latency_sum, 20);
        assert_eq!(s.queue_latency_sum, 3);
        assert!((s.avg_total_latency() - 23.0).abs() < 1e-9);
        assert_eq!(s.max_latency, 23);
        assert_eq!(s.ejected_per_vnet[0], 1);
        assert_eq!(s.avg_class_latency(PacketClass::InterChiplet), Some(20.0));
        assert_eq!(s.avg_class_latency(PacketClass::Intra), None);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut s = NetStats::new(1);
        let mut r = rec(0);
        r.injected_at = Some(0);
        s.record_ejection(&r, 1); // latency 1 -> bucket 0
        s.record_ejection(&r, 5); // latency 5 -> bucket 2
        assert_eq!(s.latency_histogram[0], 1);
        assert_eq!(s.latency_histogram[2], 1);
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        let mut s = NetStats::new(1);
        assert_eq!(s.latency_percentile(0.5), 0.0, "empty stats report 0");
        let mut r = rec(0);
        r.injected_at = Some(0);
        // 8 packets at latency 1 (bucket 0), 2 at latency 100 (bucket 6).
        for _ in 0..8 {
            s.record_ejection(&r, 1);
        }
        for _ in 0..2 {
            s.record_ejection(&r, 100);
        }
        let p50 = s.latency_percentile(0.5);
        assert!((1.0..2.0).contains(&p50), "p50 in bucket 0: {p50}");
        let p95 = s.latency_percentile(0.95);
        assert!((64.0..=100.0).contains(&p95), "p95 in top bucket: {p95}");
        assert!(
            s.latency_percentile(1.0) <= s.max_latency as f64,
            "never exceeds the observed max"
        );
    }

    #[test]
    fn tracker_lifecycle() {
        let mut t = PacketTracker::new();
        let id = t.alloc_id();
        let h = PacketRef(0);
        t.on_created(h, id, rec(0));
        assert_eq!(t.in_flight(), 1);
        assert_eq!(t.get_by_id(id), t.get(h));
        t.on_injected(h, 4);
        let r = t.on_ejected(h, 9).unwrap();
        assert_eq!(r.ejected_at, Some(9));
        assert_eq!(t.in_flight(), 0);
        assert!(t.on_ejected(h, 10).is_none());
        // A recycled handle starts a fresh record.
        let id2 = t.alloc_id();
        t.on_created(h, id2, rec(5));
        assert_eq!(t.live_packets().next().unwrap().0, id2);
        assert!(t.mem_bytes() > 0);
    }

    #[test]
    fn watchdog_requires_in_flight_packets() {
        let mut t = PacketTracker::new();
        t.touch(0);
        assert!(!t.stalled(5_000, 1_000), "empty network is never stalled");
        let id = t.alloc_id();
        t.on_created(PacketRef(0), id, rec(0));
        assert!(t.stalled(1_000, 1_000));
        t.touch(900);
        assert!(!t.stalled(1_000, 1_000));
        assert!(t.stalled(1_900, 1_000));
    }

    #[test]
    fn link_counters_grow_on_demand() {
        use crate::ids::Port;
        let mut s = NetStats::new(1);
        assert_eq!(s.link_flit_count(NodeId(9), Port::Up), 0);
        s.bump_link(NodeId(9), Port::Up);
        s.bump_link(NodeId(9), Port::Up);
        s.bump_link(NodeId(2), Port::East);
        assert_eq!(s.link_flit_count(NodeId(9), Port::Up), 2);
        assert_eq!(s.link_flit_count(NodeId(2), Port::East), 1);
        assert_eq!(s.link_flit_count(NodeId(2), Port::West), 0);
    }

    #[test]
    fn shard_delta_merge_matches_direct_accumulation() {
        use crate::ids::Port;
        let mut r = rec(0);
        r.injected_at = Some(2);
        // Serial reference: everything lands in one accumulator.
        let mut serial = NetStats::new(2);
        serial.flit_hops = 3;
        serial.max_req_buffer_occupancy = 7;
        serial.bump_link(NodeId(3), Port::East);
        serial.bump_link(NodeId(3), Port::East);
        serial.bump_link(NodeId(11), Port::Up);
        serial.record_ejection(&r, 20);
        // Sharded: the same operations split across two per-shard deltas,
        // each with a first-touch link log, folded into a global aggregate.
        let mut global = NetStats::new(2);
        global.max_req_buffer_occupancy = 7;
        let mut d0 = NetStats::new(2);
        let mut touch0 = Vec::new();
        d0.flit_hops = 3;
        if d0.link_flit_count(NodeId(3), Port::East) == 0 {
            touch0.push((NodeId(3).index() * Port::COUNT + Port::East.index()) as u32);
        }
        d0.bump_link(NodeId(3), Port::East);
        d0.bump_link(NodeId(3), Port::East);
        let mut d1 = NetStats::new(2);
        let mut touch1 = Vec::new();
        if d1.link_flit_count(NodeId(11), Port::Up) == 0 {
            touch1.push((NodeId(11).index() * Port::COUNT + Port::Up.index()) as u32);
        }
        d1.bump_link(NodeId(11), Port::Up);
        d1.record_ejection(&r, 20);
        global.absorb_shard_delta(&mut d0, &touch0);
        global.absorb_shard_delta(&mut d1, &touch1);
        let a = serde_json::to_string(&serial).unwrap();
        let b = serde_json::to_string(&global).unwrap();
        assert_eq!(a, b, "merged deltas must be byte-identical to serial");
        // The drained deltas are zeroed and safe to reuse.
        assert_eq!(d0.flit_hops, 0);
        assert_eq!(d1.packets_ejected, 0);
        assert_eq!(d1.link_flit_count(NodeId(11), Port::Up), 0);
    }

    #[test]
    fn throughput_is_per_cycle_per_node() {
        let mut s = NetStats::new(1);
        s.flits_ejected = 800;
        assert!((s.throughput(100, 80) - 0.1).abs() < 1e-12);
        assert_eq!(s.throughput(0, 80), 0.0);
    }
}
