//! Fixed-capacity struct-of-arrays ring buffers for port×VC queues.
//!
//! A [`RingBank`] packs every queue of a router or NI into one contiguous
//! slot array indexed by `(queue, offset)`, with per-queue head/len cursors.
//! Capacity is fixed at construction (sized from `NocConfig` buffer depths),
//! so steady-state enqueue/dequeue never touches the allocator — overflow is
//! a protocol violation and surfaces as a hard error at the call site.

/// A bank of `queues` fixed-capacity FIFO rings backed by one contiguous
/// slot array.
#[derive(Debug, Clone)]
pub struct RingBank<T: Copy> {
    slots: Box<[T]>,
    head: Box<[u32]>,
    len: Box<[u32]>,
    cap: u32,
    occupied: usize,
}

impl<T: Copy> RingBank<T> {
    /// A bank of `queues` rings, each holding up to `cap` entries, with
    /// slots initialized to `fill` (never read before being overwritten by
    /// a push).
    ///
    /// # Panics
    /// If `cap` is zero — `NocConfig::validate` rejects zero-depth buffers
    /// before any ring is built, so this indicates a config that bypassed
    /// validation.
    pub fn new(queues: usize, cap: usize, fill: T) -> Self {
        assert!(
            cap > 0,
            "ring capacity must be positive (zero-depth VC buffers are rejected by NocConfig::validate)"
        );
        let cap = u32::try_from(cap).expect("ring capacity exceeds u32");
        Self {
            slots: vec![fill; queues * cap as usize].into_boxed_slice(),
            head: vec![0; queues].into_boxed_slice(),
            len: vec![0; queues].into_boxed_slice(),
            cap,
            occupied: 0,
        }
    }

    /// Number of queues in the bank.
    #[inline]
    pub fn queues(&self) -> usize {
        self.head.len()
    }

    /// Per-queue capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap as usize
    }

    #[inline]
    fn slot(&self, q: usize, i: u32) -> usize {
        debug_assert!(i < self.len[q]);
        let off = (self.head[q] + i) % self.cap;
        q * self.cap as usize + off as usize
    }

    /// Appends `v` to queue `q`; returns `Err(v)` if the queue is full.
    #[inline]
    pub fn push_back(&mut self, q: usize, v: T) -> Result<(), T> {
        if self.len[q] == self.cap {
            return Err(v);
        }
        let off = (self.head[q] + self.len[q]) % self.cap;
        self.slots[q * self.cap as usize + off as usize] = v;
        self.len[q] += 1;
        self.occupied += 1;
        Ok(())
    }

    /// Removes and returns the front of queue `q`.
    #[inline]
    pub fn pop_front(&mut self, q: usize) -> Option<T> {
        if self.len[q] == 0 {
            return None;
        }
        let v = self.slots[q * self.cap as usize + self.head[q] as usize];
        self.head[q] = (self.head[q] + 1) % self.cap;
        self.len[q] -= 1;
        self.occupied -= 1;
        Some(v)
    }

    /// The front of queue `q`, if any.
    #[inline]
    pub fn front(&self, q: usize) -> Option<&T> {
        if self.len[q] == 0 {
            None
        } else {
            Some(&self.slots[q * self.cap as usize + self.head[q] as usize])
        }
    }

    /// The `i`-th entry (front is 0) of queue `q`.
    #[inline]
    pub fn get(&self, q: usize, i: usize) -> Option<&T> {
        if i >= self.len[q] as usize {
            None
        } else {
            Some(&self.slots[self.slot(q, i as u32)])
        }
    }

    /// Mutable access to the `i`-th entry of queue `q`.
    #[inline]
    pub fn get_mut(&mut self, q: usize, i: usize) -> Option<&mut T> {
        if i >= self.len[q] as usize {
            None
        } else {
            let s = self.slot(q, i as u32);
            Some(&mut self.slots[s])
        }
    }

    /// Iterates queue `q` front-to-back.
    pub fn iter(&self, q: usize) -> impl Iterator<Item = &T> + '_ {
        (0..self.len[q] as usize).map(move |i| &self.slots[self.slot(q, i as u32)])
    }

    /// Occupancy of queue `q`.
    #[inline]
    pub fn len(&self, q: usize) -> usize {
        self.len[q] as usize
    }

    /// True if queue `q` is empty.
    #[inline]
    pub fn is_empty(&self, q: usize) -> bool {
        self.len[q] == 0
    }

    /// True if any queue in the bank holds an entry.
    #[inline]
    pub fn any_nonempty(&self) -> bool {
        self.occupied > 0
    }

    /// Total entries across all queues.
    #[inline]
    pub fn total_len(&self) -> usize {
        self.occupied
    }

    /// Exact heap bytes of the bank's backing storage.
    pub fn mem_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<T>()
            + self.head.len() * std::mem::size_of::<u32>()
            + self.len.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_with_wraparound() {
        let mut b = RingBank::new(2, 3, 0u64);
        for round in 0..5u64 {
            for i in 0..3 {
                b.push_back(1, round * 10 + i).unwrap();
            }
            assert_eq!(b.len(1), 3);
            assert_eq!(b.front(1), Some(&(round * 10)));
            assert_eq!(b.get(1, 2), Some(&(round * 10 + 2)));
            let drained: Vec<u64> = (0..3).map(|_| b.pop_front(1).unwrap()).collect();
            assert_eq!(drained, vec![round * 10, round * 10 + 1, round * 10 + 2]);
        }
        assert!(b.is_empty(1));
        assert!(!b.any_nonempty());
        assert_eq!(b.pop_front(1), None);
    }

    #[test]
    fn overflow_is_reported_not_silently_dropped() {
        let mut b = RingBank::new(1, 2, 0u32);
        b.push_back(0, 1).unwrap();
        b.push_back(0, 2).unwrap();
        assert_eq!(b.push_back(0, 3), Err(3));
        assert_eq!(b.len(0), 2);
    }

    #[test]
    fn queues_are_independent() {
        let mut b = RingBank::new(3, 2, 0u32);
        b.push_back(0, 7).unwrap();
        b.push_back(2, 9).unwrap();
        assert!(b.any_nonempty());
        assert_eq!(b.total_len(), 2);
        assert!(b.is_empty(1));
        assert_eq!(b.pop_front(2), Some(9));
        assert_eq!(b.pop_front(0), Some(7));
        assert_eq!(b.total_len(), 0);
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut b = RingBank::new(1, 4, 0u32);
        b.push_back(0, 1).unwrap();
        b.push_back(0, 2).unwrap();
        *b.get_mut(0, 1).unwrap() = 20;
        assert_eq!(b.iter(0).copied().collect::<Vec<_>>(), vec![1, 20]);
        assert!(b.get_mut(0, 2).is_none());
    }

    #[test]
    #[should_panic(expected = "ring capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = RingBank::new(1, 0, 0u32);
    }

    #[test]
    fn mem_bytes_counts_backing_storage() {
        let b = RingBank::new(2, 4, 0u64);
        assert_eq!(b.mem_bytes(), 2 * 4 * 8 + 2 * 4 + 2 * 4);
    }
}
