//! Self-contained, replayable descriptions of one adversarial run.
//!
//! A [`Scenario`] pins down everything the harness needs to reproduce a run
//! bit-for-bit: the system shape, the scheme under test, the build seed,
//! the full offered-traffic trace and the dynamic fault schedule. The JSON
//! form is what the shrinker dumps as a minimal repro artifact and what
//! `verify replay` consumes.

use upp_core::UppConfig;
use upp_noc::fault::{FaultAction, FaultEvent, FaultPlan};
use upp_noc::ids::{Cycle, NodeId, Port, VnetId};
use upp_noc::topology::{ChipletPlacement, ChipletSystemSpec};
use upp_workloads::runner::SchemeKind;

use serde_json::Value;

use crate::traffic::{TrafficEntry, TrafficTrace};

/// Current artifact format version.
pub const SCENARIO_VERSION: u64 = 1;

/// One fully-specified adversarial run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// System shape name: `"baseline"`, `"large"` or `"mini"`.
    pub system: String,
    /// Scheme label, as produced by `SchemeKind::label()`.
    pub scheme: String,
    /// Seed for topology binding and router RNGs.
    pub seed: u64,
    /// VCs per VNet.
    pub vcs_per_vnet: usize,
    /// Cycle bound on offered traffic and fault activity.
    pub horizon: Cycle,
    /// Absolute run bound (a run still undrained here is stuck).
    pub max_cycles: Cycle,
    /// Offered traffic, sorted by ready cycle.
    pub traffic: Vec<TrafficEntry>,
    /// Dynamic fault schedule.
    pub faults: Vec<FaultEvent>,
    /// Failure description attached by the harness/shrinker, if any.
    pub failure: Option<String>,
}

/// A 2-chiplet mini system (two 4x4 chiplets on a 4x2 interposer): the
/// smallest shape whose cross-chiplet traffic exercises the full
/// up-across-down dependency structure, used to keep randomized campaigns
/// cheap.
pub fn mini_spec() -> ChipletSystemSpec {
    ChipletSystemSpec {
        interposer_width: 4,
        interposer_height: 2,
        chiplets: vec![
            ChipletPlacement {
                width: 4,
                height: 4,
                vertical_links: vec![((2, 0), (1, 0)), ((1, 3), (0, 1))],
            },
            ChipletPlacement {
                width: 4,
                height: 4,
                vertical_links: vec![((2, 0), (3, 0)), ((1, 3), (2, 1))],
            },
        ],
    }
}

/// Resolves a system name to its spec.
///
/// # Errors
///
/// Returns `Err` for unknown names.
pub fn system_spec(name: &str) -> Result<ChipletSystemSpec, String> {
    match name {
        "baseline" => Ok(ChipletSystemSpec::baseline()),
        "large" => Ok(ChipletSystemSpec::large()),
        "mini" => Ok(mini_spec()),
        other => Err(format!(
            "unknown system {other:?} (want baseline|large|mini)"
        )),
    }
}

/// Knobs for one seeded randomized campaign point.
#[derive(Debug, Clone)]
pub struct CampaignParams {
    /// System shape name (see [`system_spec`]).
    pub system: String,
    /// VCs per VNet.
    pub vcs_per_vnet: usize,
    /// Cycle bound on offered traffic and fault activity.
    pub horizon: Cycle,
    /// Per-endpoint, per-cycle offer probability.
    pub rate: f64,
    /// Dynamic link fail/heal pairs to attempt.
    pub link_faults: usize,
    /// Endpoint pause/resume pairs to attempt.
    pub throttles: usize,
    /// Absolute run bound.
    pub max_cycles: Cycle,
}

impl Default for CampaignParams {
    fn default() -> Self {
        Self {
            system: "mini".into(),
            vcs_per_vnet: 2,
            horizon: 300,
            rate: 0.03,
            link_faults: 2,
            throttles: 1,
            max_cycles: 8_000,
        }
    }
}

/// Generates the fully-specified scenario for one campaign seed. The
/// scheme is left empty; the differential runner fills it per scheme.
///
/// # Errors
///
/// Returns `Err` for an unknown system name or a malformed spec.
pub fn random_scenario(p: &CampaignParams, seed: u64) -> Result<Scenario, String> {
    let spec = system_spec(&p.system)?;
    let topo = spec.build(seed)?;
    let trace = TrafficTrace::random(&topo, seed, p.horizon, p.rate);
    let plan = FaultPlan::random(&topo, seed, p.horizon, p.link_faults, p.throttles);
    Ok(Scenario {
        system: p.system.clone(),
        scheme: String::new(),
        seed,
        vcs_per_vnet: p.vcs_per_vnet,
        horizon: p.horizon,
        max_cycles: p.max_cycles,
        traffic: trace.entries,
        faults: plan.events().to_vec(),
        failure: None,
    })
}

/// Resolves a scheme label to its kind.
///
/// Beyond the plain labels, `UPP@t=<cycles>` selects UPP with a custom
/// detection threshold (Fig. 13's sweep axis). The `upp-check` bridge uses
/// a huge threshold to concretize its "watchdog never expires" mutation —
/// the machinery is all present but detection cannot fire within the run's
/// cycle bound.
///
/// # Errors
///
/// Returns `Err` for unknown labels.
pub fn scheme_kind(label: &str) -> Result<SchemeKind, String> {
    if let Some(t) = label.strip_prefix("UPP@t=") {
        let threshold: u64 = t
            .parse()
            .map_err(|e| format!("bad UPP threshold {t:?}: {e}"))?;
        if threshold == 0 {
            return Err("UPP threshold must be >= 1".into());
        }
        return Ok(SchemeKind::Upp(UppConfig::with_threshold(threshold)));
    }
    match label {
        "none" => Ok(SchemeKind::None),
        "UPP" => Ok(SchemeKind::Upp(UppConfig::default())),
        "composable" => Ok(SchemeKind::Composable),
        "remote-control" => Ok(SchemeKind::RemoteControl),
        other => Err(format!(
            "unknown scheme {other:?} (want none|UPP|UPP@t=<cycles>|composable|remote-control)"
        )),
    }
}

fn port_letter(p: Port) -> &'static str {
    match p {
        Port::Local => "L",
        Port::North => "N",
        Port::East => "E",
        Port::South => "S",
        Port::West => "W",
        Port::Up => "U",
        Port::Down => "D",
    }
}

fn parse_port(s: &str) -> Result<Port, String> {
    match s {
        "L" => Ok(Port::Local),
        "N" => Ok(Port::North),
        "E" => Ok(Port::East),
        "S" => Ok(Port::South),
        "W" => Ok(Port::West),
        "U" => Ok(Port::Up),
        "D" => Ok(Port::Down),
        other => Err(format!("unknown port {other:?}")),
    }
}

fn fault_json(ev: &FaultEvent) -> String {
    let (kind, node, port) = match ev.action {
        FaultAction::FailLink { node, port } => ("fail_link", node, Some(port)),
        FaultAction::HealLink { node, port } => ("heal_link", node, Some(port)),
        FaultAction::PauseInjection { node } => ("pause_injection", node, None),
        FaultAction::ResumeInjection { node } => ("resume_injection", node, None),
        FaultAction::PauseConsumption { node } => ("pause_consumption", node, None),
        FaultAction::ResumeConsumption { node } => ("resume_consumption", node, None),
    };
    match port {
        Some(p) => format!(
            "{{\"at\":{},\"kind\":\"{}\",\"node\":{},\"port\":\"{}\"}}",
            ev.at,
            kind,
            node.0,
            port_letter(p)
        ),
        None => format!(
            "{{\"at\":{},\"kind\":\"{}\",\"node\":{}}}",
            ev.at, kind, node.0
        ),
    }
}

fn parse_fault(v: &Value) -> Result<FaultEvent, String> {
    let at = v
        .get("at")
        .and_then(Value::as_u64)
        .ok_or("fault missing \"at\"")?;
    let kind = v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("fault missing \"kind\"")?;
    let node = NodeId(
        v.get("node")
            .and_then(Value::as_u64)
            .ok_or("fault missing \"node\"")? as u32,
    );
    let port = || -> Result<Port, String> {
        parse_port(
            v.get("port")
                .and_then(Value::as_str)
                .ok_or("fault missing \"port\"")?,
        )
    };
    let action = match kind {
        "fail_link" => FaultAction::FailLink {
            node,
            port: port()?,
        },
        "heal_link" => FaultAction::HealLink {
            node,
            port: port()?,
        },
        "pause_injection" => FaultAction::PauseInjection { node },
        "resume_injection" => FaultAction::ResumeInjection { node },
        "pause_consumption" => FaultAction::PauseConsumption { node },
        "resume_consumption" => FaultAction::ResumeConsumption { node },
        other => return Err(format!("unknown fault kind {other:?}")),
    };
    Ok(FaultEvent { at, action })
}

impl Scenario {
    /// Renders the scenario as a pretty-stable JSON artifact.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"version\": {SCENARIO_VERSION},\n"));
        s.push_str(&format!("  \"system\": \"{}\",\n", self.system));
        s.push_str(&format!("  \"scheme\": \"{}\",\n", self.scheme));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"vcs_per_vnet\": {},\n", self.vcs_per_vnet));
        s.push_str(&format!("  \"horizon\": {},\n", self.horizon));
        s.push_str(&format!("  \"max_cycles\": {},\n", self.max_cycles));
        if let Some(f) = &self.failure {
            s.push_str(&format!("  \"failure\": {},\n", render_json_string(f)));
        }
        s.push_str("  \"traffic\": [\n");
        for (i, e) in self.traffic.iter().enumerate() {
            let sep = if i + 1 == self.traffic.len() { "" } else { "," };
            s.push_str(&format!(
                "    [{},{},{},{},{}]{}\n",
                e.at, e.src.0, e.dest.0, e.vnet.0, e.len_flits, sep
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"faults\": [\n");
        for (i, ev) in self.faults.iter().enumerate() {
            let sep = if i + 1 == self.faults.len() { "" } else { "," };
            s.push_str(&format!("    {}{}\n", fault_json(ev), sep));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a scenario from its JSON artifact form.
    ///
    /// # Errors
    ///
    /// Returns `Err` on malformed JSON or missing/ill-typed fields.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("bad JSON: {e}"))?;
        let version = v
            .get("version")
            .and_then(Value::as_u64)
            .ok_or("missing \"version\"")?;
        if version != SCENARIO_VERSION {
            return Err(format!(
                "unsupported scenario version {version} (this build reads {SCENARIO_VERSION})"
            ));
        }
        let field_str = |k: &str| -> Result<String, String> {
            Ok(v.get(k)
                .and_then(Value::as_str)
                .ok_or(format!("missing \"{k}\""))?
                .to_string())
        };
        let field_u64 = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or(format!("missing \"{k}\""))
        };
        let traffic = v
            .get("traffic")
            .and_then(Value::as_array)
            .ok_or("missing \"traffic\"")?
            .iter()
            .map(|row| {
                let row = row.as_array().ok_or("traffic row is not an array")?;
                let n = |i: usize| -> Result<u64, String> {
                    row.get(i)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| "traffic row field is not a number".to_string())
                };
                Ok(TrafficEntry {
                    at: n(0)?,
                    src: NodeId(n(1)? as u32),
                    dest: NodeId(n(2)? as u32),
                    vnet: VnetId(n(3)? as u8),
                    len_flits: n(4)? as u16,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let faults = v
            .get("faults")
            .and_then(Value::as_array)
            .ok_or("missing \"faults\"")?
            .iter()
            .map(parse_fault)
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            system: field_str("system")?,
            scheme: field_str("scheme")?,
            seed: field_u64("seed")?,
            vcs_per_vnet: field_u64("vcs_per_vnet")? as usize,
            horizon: field_u64("horizon")?,
            max_cycles: field_u64("max_cycles")?,
            traffic,
            faults,
            failure: v.get("failure").and_then(Value::as_str).map(str::to_string),
        })
    }
}

fn render_json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficTrace;
    use upp_noc::fault::FaultPlan;

    #[test]
    fn json_round_trips() {
        let topo = mini_spec().build(5).unwrap();
        let trace = TrafficTrace::random(&topo, 5, 100, 0.05);
        let plan = FaultPlan::random(&topo, 5, 100, 2, 2);
        let sc = Scenario {
            system: "mini".into(),
            scheme: "UPP".into(),
            seed: 5,
            vcs_per_vnet: 2,
            horizon: 100,
            max_cycles: 4_000,
            traffic: trace.entries,
            faults: plan.events().to_vec(),
            failure: Some("example \"failure\"\nwith escapes".into()),
        };
        let json = sc.to_json();
        let back = Scenario::from_json(&json).expect("parses");
        assert_eq!(back.system, sc.system);
        assert_eq!(back.scheme, sc.scheme);
        assert_eq!(back.seed, sc.seed);
        assert_eq!(back.vcs_per_vnet, sc.vcs_per_vnet);
        assert_eq!(back.horizon, sc.horizon);
        assert_eq!(back.max_cycles, sc.max_cycles);
        assert_eq!(back.traffic, sc.traffic);
        assert_eq!(back.faults, sc.faults);
        assert_eq!(back.failure, sc.failure);
    }

    #[test]
    fn mini_system_is_valid_and_small() {
        let topo = mini_spec().build(0).unwrap();
        assert_eq!(topo.chiplets().len(), 2);
        assert!(topo.nodes().len() < 48);
        topo.validate().expect("mini system validates");
    }
}
