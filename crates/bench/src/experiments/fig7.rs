//! Fig. 7: latency vs injection rate under four synthetic traffic patterns,
//! baseline system, {composable, remote control, UPP} x {1, 4} VCs per VNet.

use super::{cfg, rates_1vc, rates_4vc, windows, SEED};
use crate::report::{f1, f3, spct, ExperimentResult, MarkdownTable};
use crate::sweep::sweep_rates;
use serde::Serialize;
use upp_noc::topology::ChipletSystemSpec;
use upp_workloads::runner::{presaturation_latency, saturation_throughput, SchemeKind, SweepPoint};
use upp_workloads::synthetic::Pattern;

/// One latency curve.
#[derive(Debug, Clone, Serialize)]
pub struct Curve {
    /// Scheme label.
    pub scheme: String,
    /// VCs per VNet.
    pub vcs: usize,
    /// Traffic pattern label.
    pub pattern: String,
    /// Measured points.
    pub points: Vec<SweepPoint>,
    /// Extracted saturation throughput.
    pub saturation: f64,
    /// Mean pre-saturation latency.
    pub presat_latency: f64,
}

/// Per-pattern comparison summary.
#[derive(Debug, Clone, Serialize)]
pub struct Summary {
    /// Pattern label.
    pub pattern: String,
    /// VCs per VNet.
    pub vcs: usize,
    /// UPP saturation / composable saturation - 1.
    pub upp_sat_gain_vs_composable: f64,
    /// 1 - UPP latency / composable latency.
    pub upp_latency_cut_vs_composable: f64,
    /// UPP saturation / remote saturation - 1.
    pub upp_sat_gain_vs_remote: f64,
    /// 1 - UPP latency / remote latency.
    pub upp_latency_cut_vs_remote: f64,
}

/// Full Fig. 7 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7 {
    /// All measured curves.
    pub curves: Vec<Curve>,
    /// Per-pattern summaries.
    pub summaries: Vec<Summary>,
}

/// Collects all Fig. 7 curves.
pub fn collect(quick: bool) -> Fig7 {
    let spec = ChipletSystemSpec::baseline();
    let w = windows(quick);
    let patterns: &[Pattern] = if quick {
        &[Pattern::UniformRandom, Pattern::Transpose]
    } else {
        &Pattern::ALL
    };
    let mut curves = Vec::new();
    for &pattern in patterns {
        for vcs in [1usize, 4] {
            let rates = if vcs == 1 {
                rates_1vc(quick)
            } else {
                rates_4vc(quick)
            };
            for kind in SchemeKind::evaluated() {
                let pts = sweep_rates("fig7", &spec, &cfg(vcs), &kind, 0, pattern, &rates, w, SEED);
                curves.push(Curve {
                    scheme: kind.label().to_string(),
                    vcs,
                    pattern: pattern.label().to_string(),
                    saturation: saturation_throughput(&pts),
                    presat_latency: presaturation_latency(&pts),
                    points: pts,
                });
            }
        }
    }
    let mut summaries = Vec::new();
    for &pattern in patterns {
        for vcs in [1usize, 4] {
            let find = |scheme: &str| {
                curves
                    .iter()
                    .find(|c| c.scheme == scheme && c.vcs == vcs && c.pattern == pattern.label())
                    .expect("curve exists")
            };
            let (upp, comp, rem) = (find("UPP"), find("composable"), find("remote-control"));
            // Latency comparisons average over the *common* pre-saturation
            // rates so no scheme is penalised for surviving to higher loads.
            let [upp_lat, comp_lat, rem_lat] = common_presat_latency([upp, comp, rem]);
            summaries.push(Summary {
                pattern: pattern.label().to_string(),
                vcs,
                upp_sat_gain_vs_composable: upp.saturation / comp.saturation - 1.0,
                upp_latency_cut_vs_composable: 1.0 - upp_lat / comp_lat,
                upp_sat_gain_vs_remote: upp.saturation / rem.saturation - 1.0,
                upp_latency_cut_vs_remote: 1.0 - upp_lat / rem_lat,
            });
        }
    }
    Fig7 { curves, summaries }
}

/// Mean latency of each curve over the rates at which *every* curve stays
/// below the saturation ceiling.
fn common_presat_latency(curves: [&Curve; 3]) -> [f64; 3] {
    use upp_workloads::runner::SATURATION_LATENCY;
    let n = curves.iter().map(|c| c.points.len()).min().unwrap_or(0);
    let common: Vec<usize> = (0..n)
        .filter(|&i| {
            curves.iter().all(|c| {
                let p = &c.points[i];
                p.total_latency < SATURATION_LATENCY && p.packets_ejected > 0
            })
        })
        .collect();
    let mut out = [f64::NAN; 3];
    if common.is_empty() {
        return out;
    }
    for (k, c) in curves.iter().enumerate() {
        out[k] = common
            .iter()
            .map(|&i| c.points[i].total_latency)
            .sum::<f64>()
            / common.len() as f64;
    }
    out
}

/// Runs Fig. 7 and renders it.
pub fn run(quick: bool) -> ExperimentResult {
    let data = collect(quick);
    let mut out = String::new();
    out.push_str("### Fig. 7 — latency vs injection rate, baseline system\n\n");
    let mut last_key = String::new();
    for c in &data.curves {
        let key = format!("{} / {} VC(s)", c.pattern, c.vcs);
        if key != last_key {
            out.push_str(&format!("\n**{key}**\n\n"));
            last_key = key;
        }
        let rates: Vec<String> = c.points.iter().map(|p| f3(p.rate)).collect();
        let lats: Vec<String> = c
            .points
            .iter()
            .map(|p| f1(p.total_latency.min(999.0)))
            .collect();
        let mut t = MarkdownTable::new(
            std::iter::once("rate ->".to_string())
                .chain(rates)
                .collect::<Vec<_>>(),
        );
        t.row(
            std::iter::once(format!("{} latency", c.scheme))
                .chain(lats)
                .collect::<Vec<_>>(),
        );
        out.push_str(&t.render());
    }
    out.push_str("\n**Summary (paper: UPP +18-72% saturation and -4.5-6.6% latency vs composable; -5.7-8.2% latency vs remote control)**\n\n");
    let mut t = MarkdownTable::new([
        "pattern",
        "VCs",
        "UPP sat vs composable",
        "UPP lat vs composable",
        "UPP sat vs remote",
        "UPP lat vs remote",
    ]);
    for s in &data.summaries {
        t.row([
            s.pattern.clone(),
            s.vcs.to_string(),
            spct(s.upp_sat_gain_vs_composable),
            spct(-s.upp_latency_cut_vs_composable),
            spct(s.upp_sat_gain_vs_remote),
            spct(-s.upp_latency_cut_vs_remote),
        ]);
    }
    out.push_str(&t.render());
    ExperimentResult::new("fig7", "Fig. 7: synthetic latency curves", out, &data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig7_has_expected_shape() {
        let data = collect(true);
        assert_eq!(data.curves.len(), 2 * 2 * 3);
        for s in &data.summaries {
            // UPP must never lose on pre-saturation latency.
            assert!(
                s.upp_latency_cut_vs_composable > -0.02,
                "{} {}VC: UPP latency worse than composable by {}",
                s.pattern,
                s.vcs,
                s.upp_latency_cut_vs_composable
            );
            assert!(
                s.upp_latency_cut_vs_remote > 0.0,
                "{} {}VC: UPP latency must beat remote's injection control",
                s.pattern,
                s.vcs
            );
        }
        // Saturation ordering on uniform random: UPP >= composable.
        let ur: Vec<_> = data
            .summaries
            .iter()
            .filter(|s| s.pattern == "uniform_random")
            .collect();
        for s in ur {
            assert!(
                s.upp_sat_gain_vs_composable > -0.05,
                "UPP saturation must not trail composable ({} VC): {}",
                s.vcs,
                s.upp_sat_gain_vs_composable
            );
        }
    }
}
