//! Fig. 13: sensitivity of UPP to the detection-threshold value
//! (20 / 100 / 1000 cycles): impact on saturation throughput and the share
//! of packets selected as upward packets.

use super::{cfg, rates_1vc, rates_4vc, windows, SEED};
use crate::report::{f3, ExperimentResult, MarkdownTable};
use crate::sweep::sweep_rates;
use serde::Serialize;
use upp_core::UppConfig;
use upp_noc::topology::ChipletSystemSpec;
use upp_workloads::runner::{saturation_throughput, SchemeKind, SweepPoint};
use upp_workloads::synthetic::Pattern;

/// One threshold/VC series.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Detection threshold in cycles.
    pub threshold: u64,
    /// VCs per VNet.
    pub vcs: usize,
    /// Saturation throughput under uniform random traffic.
    pub saturation: f64,
    /// Per-rate share of ejected packets that were selected as upward
    /// packets.
    pub upward_share: Vec<(f64, f64)>,
    /// Raw points.
    pub points: Vec<SweepPoint>,
}

/// Collects the threshold sensitivity grid.
pub fn collect(quick: bool) -> Vec<Series> {
    let spec = ChipletSystemSpec::baseline();
    let w = windows(quick);
    let thresholds: &[u64] = if quick { &[20, 1000] } else { &[20, 100, 1000] };
    let mut out = Vec::new();
    for vcs in [1usize, 4] {
        let rates = if vcs == 1 {
            rates_1vc(quick)
        } else {
            rates_4vc(quick)
        };
        for &th in thresholds {
            let kind = SchemeKind::Upp(UppConfig::with_threshold(th));
            let pts = sweep_rates(
                "fig13",
                &spec,
                &cfg(vcs),
                &kind,
                0,
                Pattern::UniformRandom,
                &rates,
                w,
                SEED,
            );
            let upward_share = pts
                .iter()
                .map(|p| {
                    let share = if p.packets_ejected == 0 {
                        0.0
                    } else {
                        p.upward_packets as f64 / p.packets_ejected as f64
                    };
                    (p.rate, share)
                })
                .collect();
            out.push(Series {
                threshold: th,
                vcs,
                saturation: saturation_throughput(&pts),
                upward_share,
                points: pts,
            });
        }
    }
    out
}

/// Runs Fig. 13 and renders it.
pub fn run(quick: bool) -> ExperimentResult {
    let series = collect(quick);
    let mut out = String::new();
    out.push_str("### Fig. 13 — UPP detection-threshold sensitivity (uniform random)\n\n");
    out.push_str("**(a) saturation throughput**\n\n");
    let mut t = MarkdownTable::new(["threshold", "VCs", "saturation (flits/cyc/node)"]);
    for s in &series {
        t.row([s.threshold.to_string(), s.vcs.to_string(), f3(s.saturation)]);
    }
    out.push_str(&t.render());
    out.push_str("\n**(b) upward packets as a share of ejected packets**\n\n");
    for s in &series {
        let cells: Vec<String> = s
            .upward_share
            .iter()
            .map(|(r, sh)| format!("{}:{:.2}%", f3(*r), sh * 100.0))
            .collect();
        out.push_str(&format!(
            "* threshold {} / {} VC(s): {}\n",
            s.threshold,
            s.vcs,
            cells.join("  ")
        ));
    }
    out.push_str(
        "\nPaper: the threshold has little impact on saturation; at 4 VCs the upward share \
         never exceeds 0.4%.\n",
    );
    ExperimentResult::new("fig13", "Fig. 13: threshold sensitivity", out, &series)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Statistical and ~10 min in debug: quick-mode saturation estimates are
    /// RNG-stream-sensitive near the 1.5x band, so this only runs when the
    /// nightly CI job (or a developer) opts in with `UPP_NIGHTLY=1`.
    #[test]
    fn threshold_has_limited_impact_on_saturation() {
        if std::env::var_os("UPP_NIGHTLY").is_none_or(|v| v != "1") {
            eprintln!("skipping: set UPP_NIGHTLY=1 to run the full fig13 statistical test");
            return;
        }
        let series = collect(true);
        for vcs in [1usize, 4] {
            let sats: Vec<f64> = series
                .iter()
                .filter(|s| s.vcs == vcs)
                .map(|s| s.saturation)
                .collect();
            let (min, max) = sats
                .iter()
                .fold((f64::MAX, 0.0f64), |(lo, hi), &s| (lo.min(s), hi.max(s)));
            assert!(
                max / min < 1.5,
                "{vcs} VC saturation too threshold-sensitive: {sats:?}"
            );
        }
    }

    /// Fast tier-1 smoke variant of `threshold_has_limited_impact_on_saturation`:
    /// a reduced grid (2 thresholds, 4 rates, short windows, 1 VC) with a
    /// loose bound, so gross threshold sensitivity regressions are caught on
    /// every run while the full statistical version stays nightly-only.
    #[test]
    fn threshold_smoke_saturation_within_loose_band() {
        use upp_workloads::runner::SweepWindows;
        let spec = ChipletSystemSpec::baseline();
        let w = SweepWindows {
            warmup: 500,
            measure: 3_000,
        };
        let rates = [0.02, 0.05, 0.08, 0.11];
        let mut sats = Vec::new();
        for th in [20u64, 1000] {
            let kind = SchemeKind::Upp(UppConfig::with_threshold(th));
            let pts = sweep_rates(
                "fig13-smoke",
                &spec,
                &cfg(1),
                &kind,
                0,
                Pattern::UniformRandom,
                &rates,
                w,
                SEED,
            );
            let sat = saturation_throughput(&pts);
            assert!(sat > 0.0, "threshold {th} produced no throughput");
            sats.push(sat);
        }
        let (min, max) = sats
            .iter()
            .fold((f64::MAX, 0.0f64), |(lo, hi), &s| (lo.min(s), hi.max(s)));
        assert!(
            max / min < 2.0,
            "saturation grossly threshold-sensitive on the smoke grid: {sats:?}"
        );
    }

    #[test]
    fn four_vcs_keep_upward_share_small() {
        let series = collect(true);
        for s in series.iter().filter(|s| s.vcs == 4 && s.threshold == 20) {
            for (rate, share) in &s.upward_share {
                assert!(*share < 0.05, "4 VC upward share at rate {rate} is {share}");
            }
        }
    }
}
