//! The central honesty tests of the reproduction:
//!
//! 1. integration-induced deadlocks are *real* — the unprotected baseline
//!    system wedges under inter-chiplet load (watchdog: zero movement with
//!    packets in flight);
//! 2. UPP recovers from exactly those deadlocks — same traffic, same seeds,
//!    every packet delivered;
//! 3. the baselines (composable routing, remote control) avoid them.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use upp_baselines::composable::Composable;
use upp_baselines::remote::{RemoteControl, RemoteControlConfig};
use upp_core::{Upp, UppConfig};
use upp_noc::config::NocConfig;
use upp_noc::ids::{NodeId, VnetId};
use upp_noc::network::Network;
use upp_noc::ni::ConsumePolicy;
use upp_noc::routing::ChipletRouting;
use upp_noc::scheme::{NoScheme, Scheme};
use upp_noc::sim::{RunOutcome, System};
use upp_noc::topology::ChipletSystemSpec;

fn build_system(scheme_kind: &str, seed: u64) -> System {
    let topo = ChipletSystemSpec::baseline().build(0).unwrap();
    let cfg = NocConfig::default();
    match scheme_kind {
        "none" => {
            let net = Network::new(
                cfg,
                topo,
                Arc::new(ChipletRouting::xy()),
                ConsumePolicy::Immediate { latency: 1 },
                seed,
            );
            System::new(net, Box::new(NoScheme))
        }
        "upp" => {
            let net = Network::new(
                cfg,
                topo,
                Arc::new(ChipletRouting::xy()),
                ConsumePolicy::Immediate { latency: 1 },
                seed,
            );
            System::new(net, Box::new(Upp::new(UppConfig::default())))
        }
        "composable" => {
            let (scheme, routing) = Composable::build(&topo).unwrap();
            let net = Network::new(
                cfg,
                topo,
                Arc::new(routing),
                ConsumePolicy::Immediate { latency: 1 },
                seed,
            );
            System::new(net, Box::new(scheme))
        }
        "remote" => {
            let net = Network::new(
                cfg,
                topo,
                Arc::new(ChipletRouting::xy()),
                ConsumePolicy::Immediate { latency: 1 },
                seed,
            );
            System::new(
                net,
                Box::new(RemoteControl::new(RemoteControlConfig::default())),
            )
        }
        other => panic!("unknown scheme {other}"),
    }
}

/// Heavy uniform-random traffic with the Table II control/data mix, biased
/// toward inter-chiplet pairs to stress the vertical links.
fn drive(sys: &mut System, seed: u64, cycles: u64, rate: f64) -> u64 {
    let nodes: Vec<NodeId> = sys
        .net()
        .topo()
        .chiplets()
        .iter()
        .flat_map(|c| c.routers.iter().copied())
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sent = 0u64;
    for _ in 0..cycles {
        for &src in &nodes {
            if rng.gen::<f64>() >= rate {
                continue;
            }
            let dest = nodes[rng.gen_range(0..nodes.len())];
            if dest == src {
                continue;
            }
            let vnet = VnetId(rng.gen_range(0..3u8));
            let len = if vnet.0 == 2 { 5 } else { 1 };
            if sys.send(src, dest, vnet, len).is_some() {
                sent += 1;
            }
        }
        sys.step();
    }
    sent
}

#[test]
fn unprotected_system_deadlocks_under_load() {
    // At least one of a handful of seeds must wedge the unprotected network:
    // this is the paper's premise that integration induces real routing
    // deadlocks. (Higher rate -> denser cyclic waits.)
    let mut wedged = 0;
    for seed in 0..4u64 {
        let mut sys = build_system("none", seed);
        drive(&mut sys, seed, 3_000, 0.30);
        let out = sys.run_until_drained(30_000);
        if matches!(out, RunOutcome::Deadlocked { .. }) {
            wedged += 1;
        }
    }
    assert!(
        wedged > 0,
        "the unprotected baseline system never deadlocked; the reproduction's \
         premise does not hold"
    );
}

#[test]
fn upp_recovers_from_the_same_load() {
    for seed in 0..4u64 {
        let mut sys = build_system("upp", seed);
        let sent = drive(&mut sys, seed, 3_000, 0.30);
        let out = sys.run_until_drained(200_000);
        assert!(
            matches!(out, RunOutcome::Drained { .. }),
            "UPP seed {seed}: {out:?} after sending {sent}"
        );
        assert_eq!(
            sys.net().stats().packets_ejected,
            sent,
            "UPP must deliver everything"
        );
    }
}

#[test]
fn composable_routing_avoids_deadlock() {
    for seed in 0..2u64 {
        let mut sys = build_system("composable", seed);
        let sent = drive(&mut sys, seed, 3_000, 0.30);
        let out = sys.run_until_drained(200_000);
        assert!(
            matches!(out, RunOutcome::Drained { .. }),
            "composable seed {seed}: {out:?}"
        );
        assert_eq!(sys.net().stats().packets_ejected, sent);
    }
}

#[test]
fn remote_control_avoids_deadlock() {
    for seed in 0..2u64 {
        let mut sys = build_system("remote", seed);
        let sent = drive(&mut sys, seed, 3_000, 0.30);
        let out = sys.run_until_drained(200_000);
        assert!(
            matches!(out, RunOutcome::Drained { .. }),
            "remote seed {seed}: {out:?}"
        );
        assert_eq!(sys.net().stats().packets_ejected, sent);
    }
}

#[test]
fn stall_report_names_the_wedged_dependency_cycle() {
    // Forensics on a real integration-induced deadlock: the report must
    // identify the participants and the circular wait, and its bookkeeping
    // must agree with the network's own occupancy counters.
    let mut examined = 0;
    for seed in 0..4u64 {
        let mut sys = build_system("none", seed);
        drive(&mut sys, seed, 3_000, 0.30);
        if !matches!(sys.run_until_drained(30_000), RunOutcome::Deadlocked { .. }) {
            continue;
        }
        examined += 1;
        let report = sys.stall_report();
        assert!(
            report.wedged.len() >= 2,
            "a wormhole deadlock involves at least two packets, got {}",
            report.wedged.len()
        );
        assert!(
            report.is_deadlock() && !report.wait_cycle.is_empty(),
            "watchdog tripped but no circular wait was extracted"
        );
        assert_eq!(report.in_flight, sys.net().in_flight());
        // Occupancy agreement: every buffered flit belongs to some live
        // packet's held VC, so the holds must account for exactly the
        // network's buffered-flit population.
        let occupied: usize = sys.net().occupancy().iter().map(|&(_, f)| f).sum();
        assert_eq!(
            report.held_flits(),
            occupied,
            "holds must attribute every buffered flit (seed {seed})"
        );
        // The text rendering names every wedged packet and the cycle.
        let text = report.render_text();
        assert!(text.contains("DEADLOCK (circular wait found)"), "{text}");
        for w in &report.wedged {
            assert!(
                text.contains(&w.id.to_string()),
                "missing {} in:\n{text}",
                w.id
            );
        }
        assert!(text.contains("circular wait over"), "{text}");
    }
    assert!(
        examined > 0,
        "no seed deadlocked; cannot exercise the forensics path (see \
         unprotected_system_deadlocks_under_load)"
    );
}

#[test]
fn all_schemes_report_table_i_properties() {
    let topo = ChipletSystemSpec::baseline().build(0).unwrap();
    let (composable, _) = Composable::build(&topo).unwrap();
    let schemes: Vec<Box<dyn Scheme>> = vec![
        Box::new(NoScheme),
        Box::new(Upp::new(UppConfig::default())),
        Box::new(composable),
        Box::new(RemoteControl::new(RemoteControlConfig::default())),
    ];
    for s in &schemes {
        let p = s.properties();
        // Every modular scheme in Table I keeps the three modularity columns.
        assert!(p.topology_modularity && p.vc_modularity && p.flow_control_modularity);
    }
}
