//! Active-set-scheduler golden guard: the scheduler (on by default) must
//! reproduce the committed golden summaries byte for byte, and so must the
//! `UPP_ALWAYS_TICK=1` reference kernel. Unlike `determinism.rs`, this
//! test deliberately has **no** `UPP_UPDATE_GOLDENS` refresh path — if it
//! fails, the scheduler changed simulation behaviour, and the fix is in the
//! scheduler, never in the goldens.
//!
//! The kernel variant is selected per child process through the
//! environment, so concurrently running tests in this process can never
//! race on the setting.

use std::path::{Path, PathBuf};
use std::process::Command;

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed golden {}: {e}", path.display()))
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("upp-sched-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Runs `simulate` with an explicit kernel choice and returns the `--json`
/// summary bytes.
fn simulate_json(args: &[&str], out_name: &str, always_tick: bool) -> String {
    let out = tmp_path(out_name);
    let _ = std::fs::remove_file(&out);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_simulate"));
    if always_tick {
        cmd.env("UPP_ALWAYS_TICK", "1");
    } else {
        cmd.env_remove("UPP_ALWAYS_TICK");
    }
    let status = cmd
        .args(args)
        .arg("--json")
        .arg(&out)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("simulate binary runs");
    assert!(status.success(), "simulate {args:?} failed: {status}");
    std::fs::read_to_string(&out).expect("simulate wrote the JSON summary")
}

/// Every committed single-run and sweep golden, with the exact CLI that
/// recorded it (mirrors `determinism.rs`).
const CONFIGS: [(&str, &[&str]); 4] = [
    (
        "upp_single_run.json",
        &[
            "--scheme",
            "upp",
            "--pattern",
            "transpose",
            "--rate",
            "0.10",
            "--cycles",
            "4000",
            "--seed",
            "7",
        ],
    ),
    (
        "composable_single_run.json",
        &[
            "--scheme",
            "composable",
            "--pattern",
            "uniform_random",
            "--rate",
            "0.08",
            "--cycles",
            "4000",
            "--seed",
            "11",
        ],
    ),
    (
        "faulty_upp_run.json",
        &[
            "--scheme",
            "upp",
            "--pattern",
            "uniform_random",
            "--rate",
            "0.06",
            "--cycles",
            "4000",
            "--faults",
            "3",
            "--seed",
            "5",
        ],
    ),
    (
        "upp_sweep.json",
        &[
            "--scheme",
            "upp",
            "--pattern",
            "uniform_random",
            "--sweep",
            "0.02,0.05,0.08",
            "--cycles",
            "1500",
            "--seed",
            "3",
            "--jobs",
            "1",
        ],
    ),
];

/// The sharded parallel kernel must reproduce every committed golden byte
/// for byte at 2 and 4 shards — same no-refresh policy: a failure means
/// sharding changed simulation behaviour, and the fix is in the shard
/// merge order, never in the goldens. The sweep golden additionally pins
/// `--shards` against `--jobs` interference (sweep workers each run their
/// own sharded kernel).
#[test]
fn sharded_kernel_reproduces_every_committed_golden() {
    for shards in ["2", "4"] {
        for (i, (name, args)) in CONFIGS.iter().enumerate() {
            let expected = golden(name);
            let mut sharded_args: Vec<&str> = args.to_vec();
            sharded_args.extend_from_slice(&["--shards", shards]);
            let got = simulate_json(&sharded_args, &format!("sharded_{shards}_{i}.json"), false);
            assert!(
                got == expected,
                "{name}: --shards {shards} diverged from the committed golden \
                 (no refresh path — fix the sharded kernel).\n\
                 --- golden ---\n{expected}\n--- shards {shards} ---\n{got}"
            );
        }
    }
}

#[test]
fn scheduler_reproduces_every_committed_golden() {
    for (i, (name, args)) in CONFIGS.iter().enumerate() {
        let expected = golden(name);
        let on = simulate_json(args, &format!("sched_on_{i}.json"), false);
        assert!(
            on == expected,
            "{name}: active-set scheduler diverged from the committed golden \
             (no refresh path — fix the scheduler).\n\
             --- golden ---\n{expected}\n--- scheduler on ---\n{on}"
        );
        let off = simulate_json(args, &format!("sched_off_{i}.json"), true);
        assert!(
            off == expected,
            "{name}: UPP_ALWAYS_TICK=1 reference kernel diverged from the \
             committed golden.\n\
             --- golden ---\n{expected}\n--- always tick ---\n{off}"
        );
    }
}
