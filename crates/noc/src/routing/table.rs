//! Table-based routing for irregular (faulty) regions.
//!
//! When links fail (Fig. 11), XY no longer connects every pair. Each region
//! then falls back to shortest-path routing over the surviving links, made
//! locally deadlock-free with up*/down* turn legality derived from a BFS
//! spanning tree (the reconfiguration style of ARIADNE and up*/down*
//! routing, which the paper names as the locally-optimised routing of
//! irregular chiplets).

use crate::ids::{NodeId, Port};
use crate::topology::{Region, Topology};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Direction of a directed link relative to the region's BFS spanning tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum LinkDir {
    /// Toward the root (lower BFS level, ties broken by lower node id).
    Up,
    /// Away from the root.
    Down,
}

/// Per-region routing tables with up*/down* legality.
///
/// Lookup is `next_port(node, in_port, target)` where `target` lies in the
/// same region as `node`. Tables are rebuilt whenever the fault set changes.
///
/// # Examples
///
/// ```
/// use upp_noc::topology::{ChipletSystemSpec, Region};
/// use upp_noc::routing::table::RouteTables;
/// use upp_noc::ids::Port;
///
/// let topo = ChipletSystemSpec::baseline().build(0).expect("valid spec");
/// let tables = RouteTables::build(&topo);
/// let c = &topo.chiplets()[0];
/// let port = tables
///     .next_port(c.routers[0], Port::Local, c.routers[15])
///     .expect("connected region");
/// assert!(port.is_mesh());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouteTables {
    /// `(node, in_port, target) -> out_port` for every reachable combination.
    next: HashMap<(NodeId, Port, NodeId), Port>,
    /// BFS level of each node within its region (diagnostics / tests).
    level: HashMap<NodeId, u32>,
}

impl RouteTables {
    /// Builds tables for every region of `topo`, honouring its current fault
    /// set.
    pub fn build(topo: &Topology) -> Self {
        let mut regions: Vec<Region> = topo
            .chiplets()
            .iter()
            .map(|c| Region::Chiplet(c.id))
            .collect();
        regions.push(Region::Interposer);

        let mut next = HashMap::new();
        let mut level = HashMap::new();
        for r in regions {
            Self::build_region(topo, r, &mut next, &mut level);
        }
        Self { next, level }
    }

    fn build_region(
        topo: &Topology,
        region: Region,
        next: &mut HashMap<(NodeId, Port, NodeId), Port>,
        level_out: &mut HashMap<NodeId, u32>,
    ) {
        let members = topo.region_nodes(region).to_vec();
        let member_set: HashMap<NodeId, ()> = members.iter().map(|&n| (n, ())).collect();
        let in_region = |n: NodeId| member_set.contains_key(&n);

        // BFS levels over surviving links, restarting from the lowest-id
        // unleveled member so that every connected component gets its own
        // root. Faults may split a region; pairs in different components are
        // simply absent from the tables (explicit unreachability), while
        // routing within each component keeps working.
        let mut roots = members.clone();
        roots.sort_unstable();
        let mut level: HashMap<NodeId, u32> = HashMap::new();
        for &root in &roots {
            if level.contains_key(&root) {
                continue;
            }
            level.insert(root, 0);
            let mut q = VecDeque::from([root]);
            while let Some(n) = q.pop_front() {
                let l = level[&n];
                for p in Port::ALL {
                    if !p.is_mesh() {
                        continue;
                    }
                    if let Some(m) = topo.neighbor(n, p) {
                        if in_region(m) && !level.contains_key(&m) {
                            level.insert(m, l + 1);
                            q.push_back(m);
                        }
                    }
                }
            }
        }
        level_out.extend(level.iter().map(|(&n, &l)| (n, l)));

        // Direction of a traversal n -> m.
        let dir = |n: NodeId, m: NodeId| -> LinkDir {
            let (ln, lm) = (level[&n], level[&m]);
            if lm < ln || (lm == ln && m < n) {
                LinkDir::Up
            } else {
                LinkDir::Down
            }
        };

        // A turn at node n (arrived via in_port, leaving via out) is legal if
        // it does not go Up after having gone Down. Arrivals from Local, Up
        // or Down ports (injection / vertical links) may depart anywhere.
        let turn_legal = |n: NodeId, in_port: Port, out: Port, m: NodeId| -> bool {
            if in_port == out {
                return false; // no U-turns
            }
            if !in_port.is_mesh() {
                return true;
            }
            let prev = topo
                .neighbor(n, in_port)
                .expect("in_port arrivals come over existing links");
            let d_in = dir(prev, n);
            let d_out = dir(n, m);
            !(d_in == LinkDir::Down && d_out == LinkDir::Up)
        };

        // Reverse BFS per target over (node, in_port) states.
        for &target in &members {
            let mut dist: HashMap<(NodeId, Port), u32> = HashMap::new();
            let mut q: VecDeque<(NodeId, Port)> = VecDeque::new();
            for p in Port::ALL {
                dist.insert((target, p), 0);
                q.push_back((target, p));
            }
            while let Some((m, ip_m)) = q.pop_front() {
                let d = dist[&(m, ip_m)];
                // Predecessor n reaches (m, ip_m) by leaving through
                // p = ip_m.opposite().
                let p = ip_m.opposite();
                if !p.is_mesh() {
                    continue;
                }
                let Some(n) = topo.neighbor(m, ip_m) else {
                    continue;
                };
                if !in_region(n) {
                    continue;
                }
                for inp in Port::ALL {
                    if inp.is_mesh() && topo.neighbor(n, inp).is_none_or(|x| !in_region(x)) {
                        continue; // no such arrival possible
                    }
                    if !turn_legal(n, inp, p, m) {
                        continue;
                    }
                    let key = (n, inp);
                    if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(key) {
                        e.insert(d + 1);
                        next.insert((n, inp, target), p);
                        q.push_back(key);
                    }
                }
            }
        }
    }

    /// The next output port at `node` (arrived via `in_port`) toward
    /// `target`, or `None` if no legal path exists.
    #[inline]
    pub fn next_port(&self, node: NodeId, in_port: Port, target: NodeId) -> Option<Port> {
        if node == target {
            return Some(Port::Local);
        }
        self.next.get(&(node, in_port, target)).copied()
    }

    /// BFS level of a node within its region.
    pub fn level(&self, node: NodeId) -> Option<u32> {
        self.level.get(&node).copied()
    }

    /// Verifies that every ordered pair within every region is routable from
    /// every feasible arrival port.
    ///
    /// # Errors
    ///
    /// Returns the first unroutable `(node, in_port, target)` combination.
    pub fn verify_full_connectivity(&self, topo: &Topology) -> Result<(), String> {
        let mut regions: Vec<Region> = topo
            .chiplets()
            .iter()
            .map(|c| Region::Chiplet(c.id))
            .collect();
        regions.push(Region::Interposer);
        for r in regions {
            let members = topo.region_nodes(r);
            for &n in members {
                for &t in members {
                    if n == t {
                        continue;
                    }
                    for inp in [Port::Local, Port::Up, Port::Down] {
                        // Non-mesh arrivals are always feasible entry points
                        // (injection and vertical links).
                        if inp != Port::Local && topo.raw_neighbor(n, inp).is_none() {
                            continue;
                        }
                        if self.next_port(n, inp, t).is_none() {
                            return Err(format!("no legal route {n} (in {inp}) -> {t}"));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::chiplet::inject_random_faults;
    use crate::topology::ChipletSystemSpec;

    #[test]
    fn healthy_mesh_routes_everything() {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let tables = RouteTables::build(&topo);
        tables.verify_full_connectivity(&topo).unwrap();
    }

    #[test]
    fn faulty_mesh_still_routes_everything() {
        for seed in 0..4 {
            let mut topo = ChipletSystemSpec::baseline().build(0).unwrap();
            inject_random_faults(&mut topo, 12, seed).unwrap();
            let tables = RouteTables::build(&topo);
            tables.verify_full_connectivity(&topo).unwrap();
        }
    }

    #[test]
    fn routes_avoid_faulty_links() {
        let mut topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let failed = inject_random_faults(&mut topo, 8, 5).unwrap();
        let tables = RouteTables::build(&topo);
        let c = &topo.chiplets()[0];
        for &src in &c.routers {
            for &dst in &c.routers {
                if src == dst {
                    continue;
                }
                // Walk the tables and assert no faulty link is used.
                let mut cur = src;
                let mut inp = Port::Local;
                let mut hops = 0;
                while cur != dst {
                    let p = tables.next_port(cur, inp, dst).unwrap();
                    assert!(
                        !topo.is_link_faulty(cur, p),
                        "route {src}->{dst} uses faulty link {cur}:{p} (failed: {failed:?})"
                    );
                    let nxt = topo.neighbor(cur, p).unwrap();
                    inp = p.opposite();
                    cur = nxt;
                    hops += 1;
                    assert!(hops < 64, "route {src}->{dst} does not terminate");
                }
            }
        }
    }

    #[test]
    fn updown_walks_terminate_from_vertical_arrivals() {
        let mut topo = ChipletSystemSpec::baseline().build(0).unwrap();
        inject_random_faults(&mut topo, 10, 11).unwrap();
        let tables = RouteTables::build(&topo);
        let c = &topo.chiplets()[1];
        for &b in &c.boundary_routers {
            for &dst in &c.routers {
                let mut cur = b;
                let mut inp = Port::Down; // entering from the vertical link
                let mut hops = 0;
                while cur != dst {
                    let p = tables.next_port(cur, inp, dst).unwrap();
                    cur = topo.neighbor(cur, p).unwrap();
                    inp = p.opposite();
                    hops += 1;
                    assert!(hops < 64);
                }
            }
        }
    }

    #[test]
    fn levels_cover_all_nodes() {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let tables = RouteTables::build(&topo);
        for n in topo.nodes() {
            assert!(tables.level(n.id).is_some());
        }
    }
}
