//! End-to-end smoke tests for the `upp-check` binary: exploration,
//! verdict reporting, exit codes, artifact emission, DOT dumps, and the
//! replay subcommand driving the full concrete simulator.

use std::path::PathBuf;
use std::process::Command;

fn upp_check() -> Command {
    Command::new(env!("CARGO_BIN_EXE_upp-check"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("upp-check-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn flagship_explore_verifies_both_properties() {
    let out = upp_check()
        .args([
            "explore",
            "--routers",
            "2",
            "--queue-depth",
            "2",
            "--bound",
            "2",
            "--stats",
        ])
        .output()
        .expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "exit: {:?}\n{stdout}", out.status);
    assert!(stdout.contains("P1 bounded recovery: HOLDS"), "{stdout}");
    assert!(stdout.contains("P2 no popup livelock: HOLDS"), "{stdout}");
    assert!(stdout.contains("dedup ratio"), "{stdout}");
    assert!(stdout.contains("channel-bound clips  0"), "{stdout}");
}

#[test]
fn mutation_explore_exits_3_with_counterexample() {
    let out = upp_check()
        .args([
            "explore",
            "--routers",
            "2",
            "--queue-depth",
            "2",
            "--bound",
            "2",
            "--mutation",
            "drop-absorber",
        ])
        .output()
        .expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(3), "{stdout}");
    assert!(stdout.contains("VIOLATED"), "{stdout}");
    assert!(stdout.contains("counterexample ("), "{stdout}");
}

#[test]
fn dot_dump_is_valid_digraph() {
    let dot_path = tmp("graph.dot");
    let out = upp_check()
        .args([
            "explore",
            "--routers",
            "2",
            "--queue-depth",
            "1",
            "--bound",
            "1",
        ])
        .arg("--dot")
        .arg(&dot_path)
        .output()
        .expect("runs");
    assert!(out.status.success());
    let dot = std::fs::read_to_string(&dot_path).expect("dot written");
    assert!(dot.starts_with("digraph upp_check {"));
    assert!(dot.trim_end().ends_with('}'));
    assert!(dot.contains("->"), "graph has edges");
}

#[test]
fn emitted_artifact_replays_end_to_end() {
    let artifact_path = tmp("never_expire.json");
    let out = upp_check()
        .args([
            "explore",
            "--routers",
            "2",
            "--queue-depth",
            "2",
            "--bound",
            "2",
            "--mutation",
            "never-expire-watchdog",
        ])
        .arg("--artifact")
        .arg(&artifact_path)
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(3));

    let out = upp_check()
        .arg("replay")
        .arg(&artifact_path)
        .output()
        .expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "replay must confirm the prediction: {stdout}"
    );
    assert!(
        stdout.contains("confirms the abstract prediction"),
        "{stdout}"
    );
}

#[test]
fn bad_usage_exits_2() {
    for bad in [
        vec!["explore", "--routers", "seven"],
        vec!["explore", "--mutation", "make-it-worse"],
        vec!["replay"],
        vec!["frobnicate"],
    ] {
        let out = upp_check().args(&bad).output().expect("runs");
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
    }
}
