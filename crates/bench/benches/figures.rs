//! Criterion benches: one target per table/figure, exercising reduced
//! configurations of the exact experiment code paths. These measure the
//! simulator's own performance; the scientific outputs come from the `repro`
//! binary.

use criterion::{criterion_group, criterion_main, Criterion};
use upp_core::UppConfig;
use upp_noc::config::NocConfig;
use upp_noc::topology::ChipletSystemSpec;
use upp_workloads::runner::{run_point, SchemeKind, SweepWindows};
use upp_workloads::synthetic::Pattern;

fn tiny_windows() -> SweepWindows {
    SweepWindows {
        warmup: 200,
        measure: 1_500,
    }
}

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table1_qualitative", |b| {
        b.iter(|| upp_bench::run("table1", true).expect("table1 exists"))
    });
    c.bench_function("table2_configuration", |b| {
        b.iter(|| upp_bench::run("table2", true).expect("table2 exists"))
    });
}

fn bench_fig7_point(c: &mut Criterion) {
    let spec = ChipletSystemSpec::baseline();
    let mut group = c.benchmark_group("fig7_sweep_point");
    group.sample_size(10);
    for kind in SchemeKind::evaluated() {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                run_point(
                    &spec,
                    &NocConfig::default(),
                    &kind,
                    0,
                    Pattern::UniformRandom,
                    0.05,
                    tiny_windows(),
                    1,
                )
            })
        });
    }
    group.finish();
}

fn bench_fig8_point(c: &mut Criterion) {
    use upp_noc::ni::ConsumePolicy;
    use upp_workloads::coherence::run_benchmark;
    use upp_workloads::profiles::benchmark;
    use upp_workloads::runner::build_system;
    let spec = ChipletSystemSpec::baseline();
    let mut group = c.benchmark_group("fig8_coherence_run");
    group.sample_size(10);
    group.bench_function("bodytrack_upp", |b| {
        b.iter(|| {
            let mut profile = benchmark("bodytrack").expect("profile exists");
            profile.transactions = 25;
            let built = build_system(
                &spec,
                NocConfig::default(),
                &SchemeKind::Upp(UppConfig::default()),
                0,
                1,
                ConsumePolicy::External,
            );
            let mut sys = built.sys;
            run_benchmark(&mut sys, profile, 1, 5_000_000)
        })
    });
    group.finish();
}

fn bench_fig9_large_point(c: &mut Criterion) {
    let spec = ChipletSystemSpec::large();
    let mut group = c.benchmark_group("fig9_large_system_point");
    group.sample_size(10);
    group.bench_function("upp", |b| {
        b.iter(|| {
            run_point(
                &spec,
                &NocConfig::default(),
                &SchemeKind::Upp(UppConfig::default()),
                0,
                Pattern::UniformRandom,
                0.04,
                tiny_windows(),
                1,
            )
        })
    });
    group.finish();
}

fn bench_fig10_boundary_point(c: &mut Criterion) {
    use upp_noc::topology::SystemKind;
    let mut group = c.benchmark_group("fig10_boundary_point");
    group.sample_size(10);
    for n in [2u16, 8] {
        let spec = ChipletSystemSpec::of_kind(SystemKind::BoundaryCount(n));
        group.bench_function(format!("boundaries_{n}"), |b| {
            b.iter(|| {
                run_point(
                    &spec,
                    &NocConfig::default(),
                    &SchemeKind::Upp(UppConfig::default()),
                    0,
                    Pattern::UniformRandom,
                    0.04,
                    tiny_windows(),
                    1,
                )
            })
        });
    }
    group.finish();
}

fn bench_fig11_faulty_point(c: &mut Criterion) {
    let spec = ChipletSystemSpec::baseline();
    let mut group = c.benchmark_group("fig11_faulty_point");
    group.sample_size(10);
    group.bench_function("faults_10", |b| {
        b.iter(|| {
            run_point(
                &spec,
                &NocConfig::default(),
                &SchemeKind::Upp(UppConfig::default()),
                10,
                Pattern::UniformRandom,
                0.04,
                tiny_windows(),
                1,
            )
        })
    });
    group.finish();
}

fn bench_fig13_threshold_point(c: &mut Criterion) {
    let spec = ChipletSystemSpec::baseline();
    let mut group = c.benchmark_group("fig13_threshold_point");
    group.sample_size(10);
    for th in [20u64, 1000] {
        group.bench_function(format!("threshold_{th}"), |b| {
            b.iter(|| {
                run_point(
                    &spec,
                    &NocConfig::default(),
                    &SchemeKind::Upp(UppConfig::with_threshold(th)),
                    0,
                    Pattern::UniformRandom,
                    0.08,
                    tiny_windows(),
                    1,
                )
            })
        });
    }
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    c.bench_function("fig14_area_model", |b| {
        b.iter(|| upp_bench::run("fig14", true).expect("fig14 exists"))
    });
    c.bench_function("fig12_15_energy_model", |b| {
        use upp_noc::stats::NetStats;
        use upp_workloads::energy::EnergyModel;
        let model = EnergyModel::default();
        let mut stats = NetStats::new(3);
        stats.flit_hops = 1_000_000;
        stats.flits_injected = 150_000;
        stats.flits_ejected = 150_000;
        b.iter(|| model.energy(&NocConfig::default(), &stats, 80, 300, 100_000))
    });
}

criterion_group!(
    benches,
    bench_tables,
    bench_fig7_point,
    bench_fig8_point,
    bench_fig9_large_point,
    bench_fig10_boundary_point,
    bench_fig11_faulty_point,
    bench_fig13_threshold_point,
    bench_models,
);
criterion_main!(benches);
