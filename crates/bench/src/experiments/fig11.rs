//! Fig. 11: UPP in irregular (faulty) systems — latency curves for 0 to 20
//! faulty links, 1 and 4 VCs per VNet, averaged over random fault sets.
//!
//! Composable routing and remote control are excluded, as in the paper: the
//! restriction search is impractical online and the permission subnetwork is
//! hard-wired.

use super::{cfg, rates_1vc, rates_4vc, windows, SEED};
use crate::report::{f1, f3, ExperimentResult, MarkdownTable};
use crate::sweep::sweep_rates;
use serde::Serialize;
use upp_core::UppConfig;
use upp_noc::topology::ChipletSystemSpec;
use upp_workloads::runner::{presaturation_latency, saturation_throughput, SchemeKind};
use upp_workloads::synthetic::Pattern;

/// One (fault count, VC count) series, averaged over fault seeds.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Number of faulty links.
    pub faults: usize,
    /// VCs per VNet.
    pub vcs: usize,
    /// Injection rates measured.
    pub rates: Vec<f64>,
    /// Mean total latency per rate (averaged over fault seeds; capped at
    /// 999 for saturated points).
    pub latency: Vec<f64>,
    /// Mean saturation throughput over seeds.
    pub saturation: f64,
    /// Mean pre-saturation latency over seeds.
    pub presat_latency: f64,
    /// True if any run deadlocked (must stay false: UPP recovers).
    pub any_deadlock: bool,
}

/// Collects the faulty-system series.
pub fn collect(quick: bool) -> Vec<Series> {
    let spec = ChipletSystemSpec::baseline();
    let w = windows(quick);
    let fault_counts: &[usize] = if quick {
        &[0, 5, 15]
    } else {
        &[0, 1, 5, 10, 15, 20]
    };
    let seeds: &[u64] = if quick {
        &[SEED]
    } else {
        &[SEED, SEED + 1, SEED + 2]
    };
    let kind = SchemeKind::Upp(UppConfig::default());
    let mut out = Vec::new();
    for vcs in [1usize, 4] {
        let rates = if vcs == 1 {
            rates_1vc(quick)
        } else {
            rates_4vc(quick)
        };
        for &faults in fault_counts {
            let mut latency = vec![0.0; rates.len()];
            let mut saturation = 0.0;
            let mut presat = 0.0;
            let mut any_deadlock = false;
            for &seed in seeds {
                let pts = sweep_rates(
                    "fig11",
                    &spec,
                    &cfg(vcs),
                    &kind,
                    faults,
                    Pattern::UniformRandom,
                    &rates,
                    w,
                    seed,
                );
                for (i, p) in pts.iter().enumerate() {
                    latency[i] += p.total_latency.min(999.0);
                    any_deadlock |= p.deadlocked;
                }
                saturation += saturation_throughput(&pts);
                presat += presaturation_latency(&pts);
            }
            let n = seeds.len() as f64;
            out.push(Series {
                faults,
                vcs,
                rates: rates.clone(),
                latency: latency.into_iter().map(|l| l / n).collect(),
                saturation: saturation / n,
                presat_latency: presat / n,
                any_deadlock,
            });
        }
    }
    out
}

/// Runs Fig. 11 and renders it.
pub fn run(quick: bool) -> ExperimentResult {
    let series = collect(quick);
    let mut out = String::new();
    out.push_str(
        "### Fig. 11 — UPP in faulty systems (up*/down* local routing, random link faults)\n\n",
    );
    for vcs in [1usize, 4] {
        out.push_str(&format!(
            "\n**({}) {} VC(s) per VNet**\n\n",
            if vcs == 1 { "a" } else { "b" },
            vcs
        ));
        let mut t = MarkdownTable::new([
            "faulty links",
            "saturation",
            "pre-sat latency",
            "deadlock-free",
        ]);
        for s in series.iter().filter(|s| s.vcs == vcs) {
            t.row([
                s.faults.to_string(),
                f3(s.saturation),
                f1(s.presat_latency),
                (!s.any_deadlock).to_string(),
            ]);
        }
        out.push_str(&t.render());
    }
    out.push_str("\nPaper: saturation degrades gracefully and latency rises slightly as faults accumulate; UPP never deadlocks.\n");
    ExperimentResult::new("fig11", "Fig. 11: faulty systems", out, &series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig11_degrades_gracefully_and_never_deadlocks() {
        let series = collect(true);
        for s in &series {
            assert!(
                !s.any_deadlock,
                "UPP must recover in faulty systems ({} faults)",
                s.faults
            );
            assert!(s.saturation > 0.0);
        }
        // Graceful degradation at 1 VC: heavy faults may cost throughput but
        // must not collapse it.
        let sat = |f: usize| {
            series
                .iter()
                .find(|s| s.vcs == 1 && s.faults == f)
                .unwrap()
                .saturation
        };
        // Our up*/down* fallback concentrates traffic near the spanning-tree
        // root, so it degrades harder than the paper's reconfiguration;
        // the requirement is graceful (non-collapsing) degradation.
        assert!(
            sat(15) > 0.15 * sat(0),
            "15 faults keep >15% of fault-free saturation"
        );
    }
}
