//! Human-facing renderers: analysis text, contention heatmaps,
//! critical-path listings and run-vs-run diffs.

use std::fmt::Write as _;

use upp_noc::ids::{NodeId, Port};
use upp_noc::topology::{ChipletSystemSpec, SystemKind, Topology};

use crate::summary::{PhaseTotals, ProfileSummary};

/// Resolves a recorded system label (the `simulate --system` spelling or
/// the `Debug` rendering of [`SystemKind`]) to a topology for SVG layout.
/// Unknown labels return `None`; callers fall back to CSV-only output.
pub fn topology_for(system: &str) -> Option<Topology> {
    let kind = match system {
        "baseline" | "Baseline" => SystemKind::Baseline,
        "large" | "Large" => SystemKind::Large,
        "b2" | "BoundaryCount(2)" => SystemKind::BoundaryCount(2),
        "b8" | "BoundaryCount(8)" => SystemKind::BoundaryCount(8),
        _ => return None,
    };
    ChipletSystemSpec::of_kind(kind).build(0).ok()
}

/// Renders the summary as a human-readable analysis report.
pub fn analyze_text(p: &ProfileSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile: system {} | scheme {} | {} packets | {} popups",
        if p.system.is_empty() { "?" } else { &p.system },
        if p.scheme.is_empty() { "?" } else { &p.scheme },
        p.packets,
        p.popups,
    );
    for (label, h) in [("net", &p.net), ("total", &p.total)] {
        let _ = writeln!(
            out,
            "{label:>7} latency: mean {:.1} | p50 {} | p95 {} | p99 {} | p999 {} | max {}",
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.95),
            h.quantile(0.99),
            h.quantile(0.999),
            h.max(),
        );
    }
    let _ = writeln!(
        out,
        "  hops/packet {:.2} | bypass hops/packet {:.3}",
        p.hops as f64 / p.packets.max(1) as f64,
        p.bypass_hops as f64 / p.packets.max(1) as f64,
    );
    let _ = writeln!(out, "phase attribution (cycles/packet, share of total):");
    let total: u64 = p.phases.values().iter().sum();
    for (label, mean) in PhaseTotals::LABELS.iter().zip(p.phase_means()) {
        let cycles = p.phases.values()[PhaseTotals::LABELS
            .iter()
            .position(|l| l == label)
            .expect("label present")];
        let _ = writeln!(
            out,
            "  {label:>14}: {mean:>9.2}  ({:>5.1}%)",
            100.0 * cycles as f64 / total.max(1) as f64,
        );
    }
    let _ = writeln!(
        out,
        "  upp recovery total: {:.2} cycles/packet",
        p.phases.upp_recovery() as f64 / p.packets.max(1) as f64,
    );
    out
}

/// Per-router contention as CSV (`node,blocked_cycles`), hottest data is in
/// the numbers, order is dense by node id.
pub fn router_csv(p: &ProfileSummary) -> String {
    let mut out = String::from("node,blocked_cycles\n");
    for (i, &v) in p.router_blocked.iter().enumerate() {
        let _ = writeln!(out, "{i},{v}");
    }
    out
}

/// Per-directed-link contention as CSV (`node,port,blocked_cycles`),
/// zero-heat links omitted.
pub fn link_csv(p: &ProfileSummary) -> String {
    let mut out = String::from("node,port,blocked_cycles\n");
    for (i, &v) in p.link_blocked.iter().enumerate() {
        if v == 0 {
            continue;
        }
        let node = i / Port::COUNT;
        let port = Port::ALL[i % Port::COUNT];
        let _ = writeln!(out, "{node},{port},{v}");
    }
    out
}

/// Contention heatmap SVG over the recorded system's plan view, or `None`
/// when the system label is unknown.
pub fn heatmap_svg(p: &ProfileSummary) -> Option<String> {
    let topo = topology_for(&p.system)?;
    let nodes: Vec<(NodeId, u64)> = p
        .router_blocked
        .iter()
        .enumerate()
        .map(|(i, &v)| (NodeId(i as u32), v))
        .collect();
    let links: Vec<(NodeId, Port, u64)> = p
        .link_blocked
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v > 0)
        .map(|(i, &v)| {
            (
                NodeId((i / Port::COUNT) as u32),
                Port::ALL[i % Port::COUNT],
                v,
            )
        })
        .collect();
    Some(upp_noc::viz::contention_svg(
        &topo,
        &nodes,
        &links,
        &format!(
            "blocked VC-cycles | {} / {} | {} packets",
            p.system, p.scheme, p.packets
        ),
    ))
}

/// Renders the slowest packets with their full phase decomposition and
/// per-router wait chain, slowest first.
pub fn critical_path_text(p: &ProfileSummary, top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "critical path: {} slowest of {} packets ({} / {})",
        p.slowest.len().min(top),
        p.packets,
        if p.system.is_empty() { "?" } else { &p.system },
        if p.scheme.is_empty() { "?" } else { &p.scheme },
    );
    for s in p.slowest.iter().take(top) {
        let _ = writeln!(
            out,
            "p{} n{}->n{} v{} len{}: total {} (net {}) = inj_queue {} + vc {} + sa {} \
             + credit {} + wait_ack {} + locate {} + pop {} + serial {} | {} hops",
            s.packet.0,
            s.src.0,
            s.dest.0,
            s.vnet.0,
            s.len_flits,
            s.total_latency(),
            s.net_latency(),
            s.inj_queue,
            s.vc_alloc,
            s.sa_wait,
            s.credit,
            s.wait_ack,
            s.locate,
            s.pop,
            s.serialization,
            s.hops,
        );
        if !s.waits.is_empty() {
            let mut waits = s.waits.clone();
            waits.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let chain: Vec<String> = waits
                .iter()
                .take(6)
                .map(|(n, c)| format!("n{}:{c}", n.0))
                .collect();
            let _ = writeln!(out, "    blocked at: {}", chain.join(" "));
        }
    }
    out
}

/// Side-by-side diff of two profiles: per-phase cycles/packet, percentile
/// latencies and path-shape metrics, with deltas. This is the Fig. 13
/// story in one table — UPP's extra cycles land in wait_ack/locate/pop,
/// a detour baseline's in extra hops and serialization.
pub fn diff_text(a: &ProfileSummary, b: &ProfileSummary) -> String {
    let la = if a.scheme.is_empty() { "A" } else { &a.scheme };
    let lb = if b.scheme.is_empty() { "B" } else { &b.scheme };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "diff: {la} ({} packets) vs {lb} ({} packets) on {}",
        a.packets,
        b.packets,
        if a.system.is_empty() { "?" } else { &a.system },
    );
    let _ = writeln!(out, "{:>16} {la:>12} {lb:>12} {:>12}", "metric", "delta");
    let mut row = |name: &str, va: f64, vb: f64| {
        let _ = writeln!(out, "{name:>16} {va:>12.2} {vb:>12.2} {:>+12.2}", vb - va);
    };
    for (label, (ma, mb)) in PhaseTotals::LABELS
        .iter()
        .zip(a.phase_means().into_iter().zip(b.phase_means()))
    {
        row(label, ma, mb);
    }
    row(
        "upp_recovery",
        a.phases.upp_recovery() as f64 / a.packets.max(1) as f64,
        b.phases.upp_recovery() as f64 / b.packets.max(1) as f64,
    );
    row(
        "hops/packet",
        a.hops as f64 / a.packets.max(1) as f64,
        b.hops as f64 / b.packets.max(1) as f64,
    );
    row(
        "popups/kpkt",
        1000.0 * a.popups as f64 / a.packets.max(1) as f64,
        1000.0 * b.popups as f64 / b.packets.max(1) as f64,
    );
    for q in [0.5, 0.95, 0.99, 0.999] {
        row(
            &format!("net p{}", (q * 1000.0) as u32),
            a.net.quantile(q) as f64,
            b.net.quantile(q) as f64,
        );
    }
    row("net mean", a.net.mean(), b.net.mean());
    row("total mean", a.total.mean(), b.total.mean());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use upp_noc::ids::{PacketId, VnetId};
    use upp_noc::profile::PacketSpan;

    fn summary(scheme: &str, wait_ack: u64, hops: u32) -> ProfileSummary {
        let mut p = ProfileSummary::new("Baseline", scheme);
        for i in 0..10u64 {
            p.absorb_span(&PacketSpan {
                packet: PacketId(i),
                src: NodeId(0),
                dest: NodeId(9),
                vnet: VnetId(0),
                len_flits: 5,
                created_at: 0,
                injected_at: 1,
                ejected_at: 40 + wait_ack,
                inj_queue: 1,
                vc_alloc: 2,
                sa_wait: 1,
                credit: 4,
                wait_ack,
                locate: 0,
                pop: 0,
                serialization: 32,
                hops,
                bypass_hops: 0,
                waits: vec![(NodeId(4), 7)],
            });
        }
        p.router_blocked = vec![0, 0, 0, 0, 70];
        p.link_blocked = {
            let mut v = vec![0; 5 * Port::COUNT];
            v[4 * Port::COUNT + Port::East.index()] = 70;
            v
        };
        p
    }

    #[test]
    fn analyze_names_phases_and_percentiles() {
        let text = analyze_text(&summary("upp", 8, 6));
        assert!(text.contains("scheme upp"));
        assert!(text.contains("wait_ack"));
        assert!(text.contains("p999"));
        assert!(text.contains("upp recovery total"));
    }

    #[test]
    fn heatmap_outputs_exist_for_known_system() {
        let p = summary("upp", 8, 6);
        assert!(router_csv(&p).contains("4,70"));
        assert!(link_csv(&p).contains("4,E,70"));
        let svg = heatmap_svg(&p).expect("Baseline is known");
        assert!(svg.starts_with("<svg"));
        let mut unknown = p.clone();
        unknown.system = "mystery".into();
        assert!(heatmap_svg(&unknown).is_none());
    }

    #[test]
    fn critical_path_lists_slowest_with_wait_chain() {
        let text = critical_path_text(&summary("upp", 8, 6), 4);
        assert!(text.contains("4 slowest of 10"));
        assert!(text.contains("wait_ack 8"));
        assert!(text.contains("blocked at: n4:7"));
    }

    #[test]
    fn diff_shows_phase_deltas() {
        let upp = summary("upp", 20, 6);
        let rc = summary("remote-control", 0, 11);
        let text = diff_text(&upp, &rc);
        assert!(text.contains("upp"));
        assert!(text.contains("remote-control"));
        assert!(text.contains("wait_ack"), "phase rows present");
        assert!(text.contains("-20.00"), "wait_ack delta attributed");
        assert!(text.contains("+5.00"), "hop delta attributed");
    }
}
