//! Sharding-equivalence properties: the spatially sharded parallel cycle
//! kernel (`--shards N`) must be unobservable. For random scenarios across
//! every recovery scheme — including mid-run link faults and heals that
//! cross shard boundaries — a serial run and the same run at 2 and 4
//! shards must produce identical delivered-packet multisets, identical
//! verdicts at identical cycles, identical latency-attribution profiles,
//! identical stats snapshots, identical telemetry bytes and identical
//! health-monitor alert streams. Sharding may
//! only change which thread computes a router's cycle, never what the
//! simulation computes.

use proptest::prelude::*;
use upp_core::UppConfig;
use upp_noc::config::NocConfig;
use upp_noc::ni::ConsumePolicy;
use upp_noc::sim::RunOutcome;
use upp_noc::topology::{ChipletSystemSpec, SystemKind};
use upp_verify::scenario::{random_scenario, CampaignParams};
use upp_verify::{oracle_for, run_scenario_sharded, RunReport};
use upp_workloads::runner::{build_system, SchemeKind};
use upp_workloads::synthetic::{Pattern, SyntheticTraffic};

const SCHEMES: [&str; 3] = ["UPP", "remote-control", "composable"];

/// Everything a run observably computed, with `Verdict` flattened to its
/// debug form (it carries no `PartialEq`).
fn observables(r: &RunReport) -> (usize, String, String) {
    (
        r.created,
        format!("{:?}", r.verdict),
        format!("{}", r.end_cycle),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Full-scenario equivalence: traffic, dynamic faults/heals and
    /// consumption pauses under all three recovery schemes. The fault plan
    /// fails and heals links *mid-run*, including interposer links on the
    /// seam between shards, while the popup/recovery protocols are active.
    #[test]
    fn sharding_is_unobservable_in_scenario_runs(
        seed in 0u64..5_000,
        scheme_ix in 0usize..SCHEMES.len(),
        shards in prop_oneof![Just(2usize), Just(4)],
        rate_milli in 15u64..60,
        faulty in any::<bool>(),
    ) {
        let label = SCHEMES[scheme_ix];
        // The composable search requires a fault-free system (Sec. VI-B).
        prop_assume!(!faulty || label != "composable");
        let params = CampaignParams {
            rate: rate_milli as f64 / 1000.0,
            link_faults: if faulty { 2 } else { 0 },
            throttles: if faulty { 1 } else { 0 },
            ..CampaignParams::default()
        };
        let mut sc = random_scenario(&params, seed).expect("valid params");
        sc.scheme = label.into();
        let oracle = oracle_for(&sc);
        let serial = run_scenario_sharded(&sc, oracle, true, 1);
        let sharded = run_scenario_sharded(&sc, oracle, true, shards);
        prop_assert_eq!(observables(&serial), observables(&sharded), "run shape diverged");
        prop_assert_eq!(&serial.sent, &sharded.sent, "accepted-send multiset diverged");
        prop_assert_eq!(&serial.delivered, &sharded.delivered, "delivered multiset diverged");
        prop_assert_eq!(&serial.profile, &sharded.profile, "latency profile diverged");
        prop_assert_eq!(&serial.alerts, &sharded.alerts, "alert stream diverged");
    }

    /// Drain-loop equivalence on the full baseline system: a traffic burst
    /// followed by `run_until_drained` (fast-forwarding and the active-set
    /// scheduler both compose with sharding). Outcomes, the exact drain
    /// cycle and the complete stats snapshot must match byte for byte.
    #[test]
    fn sharded_drain_preserves_outcome_and_stats(
        kind_ix in 0usize..4,
        pattern_ix in 0usize..3,
        shards in prop_oneof![Just(2usize), Just(4)],
        vcs in prop_oneof![Just(1usize), Just(2)],
        seed in 0u64..5_000,
        rate_milli in 10u64..70,
    ) {
        let kind = match kind_ix {
            0 => SchemeKind::Upp(UppConfig::default()),
            1 => SchemeKind::Upp(UppConfig::with_threshold(6)),
            2 => SchemeKind::Composable,
            _ => SchemeKind::RemoteControl,
        };
        let pattern = match pattern_ix {
            0 => Pattern::UniformRandom,
            1 => Pattern::Transpose,
            _ => Pattern::BitComplement,
        };
        let run = |shards: usize| -> (RunOutcome, u64, String) {
            let spec = ChipletSystemSpec::of_kind(SystemKind::Baseline);
            let cfg = NocConfig::default().with_vcs_per_vnet(vcs);
            let built = build_system(
                &spec,
                cfg,
                &kind,
                0,
                seed,
                ConsumePolicy::Immediate { latency: 1 },
            );
            let mut sys = built.sys;
            if shards > 1 {
                let eff = sys.set_shards(shards);
                assert!(eff > 1, "sharded run degraded to serial (vacuous comparison)");
            }
            let rate = rate_milli as f64 / 1000.0;
            let mut traffic = SyntheticTraffic::new(sys.net().topo(), pattern, rate, seed);
            for _ in 0..300 {
                traffic.tick(&mut sys);
                sys.step();
            }
            let out = sys.run_until_drained(200_000);
            let stats = serde_json::to_string(sys.net().stats()).expect("serializable");
            (out, sys.net().cycle(), stats)
        };
        let serial = run(1);
        let sharded = run(shards);
        prop_assert_eq!(serial.0, sharded.0, "drain outcome diverged");
        prop_assert_eq!(serial.1, sharded.1, "final cycle diverged");
        prop_assert_eq!(serial.2, sharded.2, "stats snapshot diverged");
    }

    /// Telemetry equivalence: the shadow registries record mechanism
    /// counters on worker threads and merge them commutatively, so the
    /// exported bytes — the full summary *and* every epoch line — must be
    /// identical to the serial kernel's. Hotspot traffic with slow
    /// consumption keeps the popup path (and its counters) busy.
    #[test]
    fn telemetry_bytes_are_shard_invariant(
        kind_ix in 0usize..3,
        shards in prop_oneof![Just(2usize), Just(4)],
        seed in 0u64..5_000,
        rate_milli in 20u64..70,
    ) {
        let kind = match kind_ix {
            0 => SchemeKind::Upp(UppConfig::default()),
            1 => SchemeKind::Composable,
            _ => SchemeKind::RemoteControl,
        };
        let run = |shards: usize| -> (String, Vec<String>) {
            let spec = ChipletSystemSpec::of_kind(SystemKind::Baseline);
            let built = build_system(
                &spec,
                NocConfig::default(),
                &kind,
                0,
                seed,
                ConsumePolicy::Immediate { latency: 40 },
            );
            let mut sys = built.sys;
            if shards > 1 {
                let eff = sys.set_shards(shards);
                assert!(eff > 1, "sharded run degraded to serial (vacuous comparison)");
            }
            sys.net_mut().enable_obs();
            let rate = rate_milli as f64 / 1000.0;
            let mut traffic =
                SyntheticTraffic::new(sys.net().topo(), Pattern::Hotspot, rate, seed);
            let mut epochs = Vec::new();
            let cut = |sys: &mut upp_noc::sim::System| {
                sys.observe();
                let c = sys.net().cycle();
                let snap = sys.net_mut().obs_mut().take_epoch(c);
                sys.net().obs().epoch_json(&snap)
            };
            for c in 0..600u64 {
                traffic.tick(&mut sys);
                sys.step();
                if c % 100 == 99 {
                    epochs.push(cut(&mut sys));
                }
            }
            let mut extra = 0u64;
            while sys.net().in_flight() > 0 && !sys.net().stalled() && extra < 100_000 {
                sys.step();
                extra += 1;
                if extra.is_multiple_of(100) {
                    epochs.push(cut(&mut sys));
                }
            }
            sys.observe();
            (sys.net().obs().summary_json(sys.net().cycle()), epochs)
        };
        let serial = run(1);
        let sharded = run(shards);
        prop_assert_eq!(serial.0, sharded.0, "obs summary bytes diverged");
        prop_assert_eq!(serial.1, sharded.1, "obs epoch stream diverged");
    }

    /// Descriptor-arena churn equivalence: sustained traffic long enough
    /// that the packet-descriptor slab recycles every handle many times
    /// over (created packets ≥ 2x the slab's peak footprint). Handle reuse
    /// must be unobservable across kernels: full stats snapshots, the
    /// delivered multiset, latency-profile bytes, telemetry bytes and the
    /// memory report must all be identical to the serial run's.
    #[test]
    fn descriptor_churn_is_shard_invariant(
        kind_ix in 0usize..3,
        shards in prop_oneof![Just(2usize), Just(4)],
        seed in 0u64..5_000,
        rate_milli in 25u64..60,
    ) {
        let kind = match kind_ix {
            0 => SchemeKind::Upp(UppConfig::default()),
            1 => SchemeKind::Composable,
            _ => SchemeKind::RemoteControl,
        };
        let run = |shards: usize| -> (String, String, String, upp_tracetools::ProfileSummary, String) {
            let spec = ChipletSystemSpec::of_kind(SystemKind::Baseline);
            let built = build_system(
                &spec,
                NocConfig::default(),
                &kind,
                0,
                seed,
                ConsumePolicy::External,
            );
            let mut sys = built.sys;
            if shards > 1 {
                let eff = sys.set_shards(shards);
                assert!(eff > 1, "sharded run degraded to serial (vacuous comparison)");
            }
            sys.net_mut().enable_obs();
            sys.net_mut()
                .tracer_mut()
                .set_profiler(Some(Box::new(upp_noc::profile::SpanRecorder::new())));
            let endpoints: Vec<upp_noc::ids::NodeId> = {
                let topo = sys.net().topo();
                topo.chiplets()
                    .iter()
                    .flat_map(|c| c.routers.iter().copied())
                    .collect()
            };
            let num_vnets = sys.net().cfg().num_vnets;
            let rate = rate_milli as f64 / 1000.0;
            let mut traffic =
                SyntheticTraffic::new(sys.net().topo(), Pattern::UniformRandom, rate, seed);
            let mut delivered: std::collections::BTreeMap<(u32, u32, u8, u16), usize> =
                std::collections::BTreeMap::new();
            let mut pop_all = |sys: &mut upp_noc::sim::System| {
                for &node in &endpoints {
                    for v in 0..num_vnets {
                        while let Some(d) =
                            sys.net_mut().pop_delivered(node, upp_noc::ids::VnetId(v as u8))
                        {
                            *delivered
                                .entry((d.pkt.src.0, d.pkt.dest.0, d.pkt.vnet.0, d.pkt.len_flits))
                                .or_default() += 1;
                        }
                    }
                }
            };
            // Long sustained window: at these rates the baseline system
            // creates thousands of packets against a peak-concurrency slab
            // of a few hundred slots, so every handle is recycled many
            // times while the comparison runs.
            for _ in 0..1_500u64 {
                traffic.tick(&mut sys);
                sys.step();
                pop_all(&mut sys);
            }
            let mut extra = 0u64;
            while sys.net().in_flight() > 0 && !sys.net().stalled() && extra < 200_000 {
                sys.step();
                pop_all(&mut sys);
                extra += 1;
            }
            let mem = sys.net().mem_report();
            assert!(
                sys.net().stats().packets_created as usize >= 2 * mem.arena_slots,
                "churn too weak to exercise handle recycling: {} created vs {} slots",
                sys.net().stats().packets_created,
                mem.arena_slots
            );
            let mut profile = upp_tracetools::ProfileSummary::new("baseline", "churn");
            if let Some(mut rec) = sys.net_mut().tracer_mut().set_profiler(None) {
                profile.absorb_recorder(&mut rec);
            }
            sys.observe();
            let delivered_json = format!("{delivered:?}");
            (
                serde_json::to_string(sys.net().stats()).expect("serializable"),
                delivered_json,
                sys.net().obs().summary_json(sys.net().cycle()),
                profile,
                serde_json::to_string(&mem).expect("serializable"),
            )
        };
        let serial = run(1);
        let sharded = run(shards);
        prop_assert_eq!(&serial.0, &sharded.0, "stats snapshot diverged under churn");
        prop_assert_eq!(&serial.1, &sharded.1, "delivered multiset diverged under churn");
        prop_assert_eq!(&serial.2, &sharded.2, "obs bytes diverged under churn");
        prop_assert_eq!(&serial.3, &sharded.3, "profile diverged under churn");
        prop_assert_eq!(&serial.4, &sharded.4, "memory report diverged under churn");
    }
}
