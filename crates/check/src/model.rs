//! The abstracted UPP transition system.
//!
//! A ring of `N` boundary (interposer) routers, each with one bounded
//! input queue of whole packets, models the interposer layer where the
//! paper's upward packets stall. Normal forwarding is one hop clockwise
//! per transition; a packet whose destination is the current router ejects
//! into that router's NI ejection queue. Deadlock arises exactly as in the
//! concrete wormhole network: a cycle of full queues whose heads all wait
//! on each other.
//!
//! On top of that substrate sits the popup protocol, wired to the shared
//! definitions in [`upp_core::protocol`]:
//!
//! * a per-router **watchdog** ticks while the router's head packet is
//!   blocked and fires at the (abstract) detection threshold;
//! * a fired watchdog sends `UPP_req` toward the stalled packet's
//!   destination NI and the router enters [`PopupStage::WaitAck`];
//! * the NI **reserves an ejection-queue entry** before acking — the
//!   paper's guarantee that a popped packet always has somewhere to land —
//!   and the ack's arrival **records a bypass circuit** in the shared
//!   circuit table;
//! * the router then pops its head packet over the circuit directly into
//!   the reserved entry ([`PopupStage::PopInterposer`] — the model works at
//!   packet granularity, so the concrete `LocateHead`/`PopChiplet` worm
//!   hunt collapses into this stage), freeing a queue slot and breaking
//!   the cyclic wait;
//! * if the stalled packet starts moving before the ack is consumed (a
//!   false positive), the router advances it normally and sends `UPP_stop`,
//!   releasing the reservation.
//!
//! Every abstraction is a *superset* or lockstep simplification of the
//! concrete behaviour (see `MODEL.md` in this crate) so that safety
//! verdicts transfer: packets are atomic, signal channels are unpaced
//! FIFOs, and all live watchdogs tick in one synchronous `TickAll`
//! transition. [`Mutation`]s deliberately break individual protocol
//! obligations to prove the checker can see each one fail.

use upp_core::protocol::{circuit_capacity, PopupStage};

/// A packet in the abstract model: just its destination router.
pub type Packet = u8;

/// A deliberately broken protocol variant.
///
/// Each mutation removes one obligation the paper's argument relies on;
/// the mutation tests assert that exploration convicts every one of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Watchdogs never fire: deadlock is never detected (Sec. V-A gone).
    NeverExpireWatchdog,
    /// Acks arrive but no bypass circuit is recorded: the pop has no path
    /// (Sec. V-B2's circuit establishment gone).
    SkipCircuitInsert,
    /// The reserved ejection entry is never actually usable: popped
    /// packets have nowhere to land (Sec. V-B1's absorber gone).
    DropAbsorber,
    /// The router bounces every ack back into a fresh request instead of
    /// popping: the protocol spins req -> ack -> req forever (livelock).
    BounceAck,
}

impl Mutation {
    /// All mutations, for test sweeps.
    pub const ALL: [Mutation; 4] = [
        Mutation::NeverExpireWatchdog,
        Mutation::SkipCircuitInsert,
        Mutation::DropAbsorber,
        Mutation::BounceAck,
    ];

    /// Canonical CLI/artifact label.
    pub fn label(self) -> &'static str {
        match self {
            Mutation::NeverExpireWatchdog => "never-expire-watchdog",
            Mutation::SkipCircuitInsert => "skip-circuit-insert",
            Mutation::DropAbsorber => "drop-absorber",
            Mutation::BounceAck => "bounce-ack",
        }
    }

    /// Parses a CLI/artifact label.
    pub fn parse(s: &str) -> Option<Mutation> {
        Self::ALL.into_iter().find(|m| m.label() == s)
    }
}

/// Model configuration: the shape of the explored system.
#[derive(Debug, Clone)]
pub struct ModelCfg {
    /// Boundary routers on the ring (2..=4).
    pub routers: u8,
    /// Packet slots per router queue.
    pub queue_depth: u8,
    /// Injection budget per router: total packets it may source.
    pub bound: u8,
    /// Abstract watchdog threshold in ticks. The concrete threshold
    /// ([`upp_core::protocol::DEFAULT_DETECTION_THRESHOLD`]) only scales
    /// detection *latency*, not the reachable protocol structure, so the
    /// model defaults to the smallest honest value that still gives the
    /// counter a non-trivial run-up.
    pub threshold: u8,
    /// Ejection-queue entries per NI.
    pub ni_slots: u8,
    /// Circuit-table capacity (default [`circuit_capacity`] of `routers`).
    pub circuit_cap: u8,
    /// Bound on each signal channel (requests / acks in flight).
    pub chan_cap: u8,
    /// Protocol weakening under test, if any.
    pub mutation: Option<Mutation>,
}

impl ModelCfg {
    /// The flagship configuration for a given router count: small enough
    /// to exhaust, large enough that queue deadlock is reachable.
    pub fn flagship(routers: u8) -> Self {
        Self {
            routers,
            queue_depth: 2,
            bound: 2,
            threshold: 2,
            ni_slots: 1,
            circuit_cap: circuit_capacity(routers as usize) as u8,
            chan_cap: routers,
            mutation: None,
        }
    }

    /// One-line rendering for artifacts and `--stats` output.
    pub fn describe(&self) -> String {
        let mut s = format!(
            "routers={} queue_depth={} bound={} threshold={} ni_slots={} circuit_cap={} chan_cap={}",
            self.routers,
            self.queue_depth,
            self.bound,
            self.threshold,
            self.ni_slots,
            self.circuit_cap,
            self.chan_cap
        );
        if let Some(m) = self.mutation {
            s.push_str(&format!(" mutation={}", m.label()));
        }
        s
    }

    /// Validates the configuration bounds.
    ///
    /// # Errors
    ///
    /// Returns `Err` when a knob is outside the supported range.
    pub fn validate(&self) -> Result<(), String> {
        if !(2..=4).contains(&self.routers) {
            return Err(format!("--routers must be 2..=4, got {}", self.routers));
        }
        if self.queue_depth == 0 || self.bound == 0 || self.threshold == 0 {
            return Err("queue depth, bound and threshold must all be >= 1".into());
        }
        if self.ni_slots == 0 || self.circuit_cap == 0 || self.chan_cap == 0 {
            return Err("NI slots, circuit capacity and channel capacity must all be >= 1".into());
        }
        Ok(())
    }
}

/// One boundary router's state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Router {
    /// Input queue, front at index 0. Entries are packet destinations.
    pub queue: Vec<Packet>,
    /// Popup stage; `Idle` / `WaitAck` / `PopInterposer` are the reachable
    /// subset at packet granularity.
    pub stage: PopupStage,
    /// Destination of the in-flight popup (`None` when idle).
    pub popup_dest: Option<Packet>,
    /// Watchdog counter, saturating at the threshold.
    pub counter: u8,
    /// Remaining injection budget.
    pub budget: u8,
}

/// One NI's ejection-side state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ni {
    /// Routers currently holding a reserved ejection entry here.
    pub reservations: Vec<u8>,
    /// Packets sitting in the ejection queue awaiting consumption.
    pub queued: u8,
}

/// A complete abstract system state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct State {
    /// Per-router state, index = ring position.
    pub routers: Vec<Router>,
    /// Per-router NI state.
    pub nis: Vec<Ni>,
    /// Destinations with a live bypass circuit, oldest first. Mirrors the
    /// concrete `(VNet, dest)`-keyed table collapsed to one VNet: a
    /// re-insert for a present destination refreshes it; inserting into a
    /// full table evicts the oldest entry.
    pub circuits: Vec<Packet>,
    /// In-flight `UPP_req` signals: `(from_router, dest)` FIFO.
    pub reqs: Vec<(u8, Packet)>,
    /// In-flight `UPP_ack` signals: `to_router` FIFO (the granted
    /// destination is the router's `popup_dest`).
    pub acks: Vec<u8>,
}

/// A transition label, carried on every edge of the state graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Router sources a fresh packet for the given destination.
    Inject(u8, Packet),
    /// Router forwards its head packet one hop clockwise.
    Hop(u8),
    /// Router ejects its head packet into its own NI queue.
    Eject(u8),
    /// An NI consumes one packet from its ejection queue.
    Consume(u8),
    /// All live watchdogs tick once, synchronously.
    TickAll,
    /// Router's watchdog fires: enter `WaitAck`, send `UPP_req`.
    WatchdogExpire(u8),
    /// The destination NI serves the front request: reserve an ejection
    /// entry and send the ack (recording the bypass circuit).
    ServeReq,
    /// The front ack reaches its router: enter `PopInterposer`.
    DeliverAck,
    /// Router in `WaitAck` advances its no-longer-blocked head normally
    /// and sends `UPP_stop` (the false-positive bail-out, merged with the
    /// advance that triggered it).
    AdvanceStop(u8),
    /// Router pops its head over the circuit into the reserved entry.
    Pop(u8),
}

impl Transition {
    /// True when the transition moves a packet toward consumption — the
    /// progress measure for the livelock check.
    pub fn is_progress(self) -> bool {
        matches!(
            self,
            Transition::Hop(_)
                | Transition::Eject(_)
                | Transition::Consume(_)
                | Transition::AdvanceStop(_)
                | Transition::Pop(_)
        )
    }

    /// Human-readable label for traces and DOT dumps.
    pub fn label(self) -> String {
        match self {
            Transition::Inject(r, d) => format!("Inject(r{r}, d{d})"),
            Transition::Hop(r) => format!("Hop(r{r})"),
            Transition::Eject(r) => format!("Eject(r{r})"),
            Transition::Consume(n) => format!("Consume(ni{n})"),
            Transition::TickAll => "TickAll".into(),
            Transition::WatchdogExpire(r) => format!("WatchdogExpire(r{r})"),
            Transition::ServeReq => "ServeReq".into(),
            Transition::DeliverAck => "DeliverAck".into(),
            Transition::AdvanceStop(r) => format!("AdvanceStop(r{r})"),
            Transition::Pop(r) => format!("Pop(r{r})"),
        }
    }
}

impl State {
    /// The initial state: everything empty, full injection budgets.
    pub fn initial(cfg: &ModelCfg) -> State {
        let n = cfg.routers as usize;
        State {
            routers: (0..n)
                .map(|_| Router {
                    queue: Vec::new(),
                    stage: PopupStage::Idle,
                    popup_dest: None,
                    counter: 0,
                    budget: cfg.bound,
                })
                .collect(),
            nis: (0..n)
                .map(|_| Ni {
                    reservations: Vec::new(),
                    queued: 0,
                })
                .collect(),
            circuits: Vec::new(),
            reqs: Vec::new(),
            acks: Vec::new(),
        }
    }

    /// Free (unreserved, unoccupied) ejection entries at NI `n`.
    pub fn ni_free(&self, cfg: &ModelCfg, n: usize) -> u8 {
        cfg.ni_slots - self.nis[n].queued - self.nis[n].reservations.len() as u8
    }

    /// True when router `r`'s head packet can advance normally right now:
    /// eject into a free local entry, or hop into a non-full next queue.
    pub fn head_can_move(&self, cfg: &ModelCfg, r: usize) -> bool {
        let Some(&d) = self.routers[r].queue.first() else {
            return false;
        };
        if d as usize == r {
            self.ni_free(cfg, r) > 0
        } else {
            let next = (r + 1) % cfg.routers as usize;
            self.routers[next].queue.len() < cfg.queue_depth as usize
        }
    }

    /// True when the network holds no packets, signals or popup state: the
    /// system has drained and every watchdog is quiet.
    pub fn is_drained(&self) -> bool {
        self.routers
            .iter()
            .all(|r| r.queue.is_empty() && r.stage.is_idle())
            && self
                .nis
                .iter()
                .all(|n| n.queued == 0 && n.reservations.is_empty())
            && self.reqs.is_empty()
            && self.acks.is_empty()
    }

    /// True when packets are in flight but no packet-progress transition
    /// is enabled and no popup is under way: a raw deadlock configuration
    /// as the watchdog sees it.
    pub fn is_deadlocked(&self, cfg: &ModelCfg) -> bool {
        let any_packets = self.routers.iter().any(|r| !r.queue.is_empty());
        if !any_packets {
            return false;
        }
        let all_idle = self.routers.iter().all(|r| r.stage.is_idle());
        let no_moves = (0..self.routers.len()).all(|r| !self.head_can_move(cfg, r))
            && self.nis.iter().all(|n| n.queued == 0);
        all_idle && no_moves && self.reqs.is_empty() && self.acks.is_empty()
    }

    /// True when any popup machinery is active (the livelock check's
    /// "popup in flight" predicate).
    pub fn popup_in_flight(&self) -> bool {
        self.routers.iter().any(|r| !r.stage.is_idle())
            || !self.reqs.is_empty()
            || !self.acks.is_empty()
    }

    /// Moves router `r`'s head packet one step (hop or eject), resetting
    /// its watchdog. Caller has checked `head_can_move`.
    fn advance_head(&mut self, cfg: &ModelCfg, r: usize) {
        let d = self.routers[r].queue.remove(0);
        if d as usize == r {
            self.nis[r].queued += 1;
        } else {
            let next = (r + 1) % cfg.routers as usize;
            self.routers[next].queue.push(d);
        }
        self.routers[r].counter = 0;
    }

    /// Records a bypass circuit for `dest`: refresh if present, insert
    /// (evicting the oldest entry when full) otherwise.
    fn record_circuit(&mut self, cfg: &ModelCfg, dest: Packet) {
        if let Some(pos) = self.circuits.iter().position(|&c| c == dest) {
            self.circuits.remove(pos);
        } else if self.circuits.len() >= cfg.circuit_cap as usize {
            self.circuits.remove(0);
        }
        self.circuits.push(dest);
    }

    /// Enumerates every enabled transition and its successor state.
    pub fn successors(&self, cfg: &ModelCfg) -> Vec<(Transition, State)> {
        let n = cfg.routers as usize;
        let mutation = cfg.mutation;
        let mut out = Vec::new();

        // Inject(r, d): source a packet if budget and queue space remain.
        for r in 0..n {
            if self.routers[r].budget == 0
                || self.routers[r].queue.len() >= cfg.queue_depth as usize
            {
                continue;
            }
            for d in 0..n {
                if d == r {
                    continue;
                }
                let mut s = self.clone();
                s.routers[r].budget -= 1;
                s.routers[r].queue.push(d as Packet);
                out.push((Transition::Inject(r as u8, d as Packet), s));
            }
        }

        // Hop / Eject: normal forwarding while the popup machinery is idle.
        for r in 0..n {
            if !self.routers[r].stage.is_idle() || !self.head_can_move(cfg, r) {
                continue;
            }
            let d = self.routers[r].queue[0];
            let mut s = self.clone();
            s.advance_head(cfg, r);
            let t = if d as usize == r {
                Transition::Eject(r as u8)
            } else {
                Transition::Hop(r as u8)
            };
            out.push((t, s));
        }

        // Consume(n): the NI sinks one ejected packet.
        for ni in 0..n {
            if self.nis[ni].queued == 0 {
                continue;
            }
            let mut s = self.clone();
            s.nis[ni].queued -= 1;
            out.push((Transition::Consume(ni as u8), s));
        }

        // TickAll: every idle router with a blocked head ticks once; every
        // other idle router's counter resets. One synchronous transition
        // keeps counters in lockstep (the per-router interleavings differ
        // only in detection order, which WatchdogExpire's nondeterministic
        // firing already covers).
        {
            let mut s = self.clone();
            let mut changed = false;
            for r in 0..n {
                if !s.routers[r].stage.is_idle() {
                    continue;
                }
                let blocked = !s.routers[r].queue.is_empty() && !s.head_can_move(cfg, r);
                let c = s.routers[r].counter;
                let next = if blocked {
                    c.saturating_add(1).min(cfg.threshold)
                } else {
                    0
                };
                if next != c {
                    s.routers[r].counter = next;
                    changed = true;
                }
            }
            if changed {
                out.push((Transition::TickAll, s));
            }
        }

        // WatchdogExpire(r): detection fires; the router requests a popup
        // for its head packet's destination.
        if mutation != Some(Mutation::NeverExpireWatchdog) {
            for r in 0..n {
                if !self.routers[r].stage.is_idle()
                    || self.routers[r].counter < cfg.threshold
                    || self.routers[r].queue.is_empty()
                    || self.reqs.len() >= cfg.chan_cap as usize
                {
                    continue;
                }
                let d = self.routers[r].queue[0];
                let mut s = self.clone();
                s.routers[r].stage = PopupStage::WaitAck;
                s.routers[r].popup_dest = Some(d);
                s.reqs.push((r as u8, d));
                out.push((Transition::WatchdogExpire(r as u8), s));
            }
        }

        // ServeReq: the destination NI reserves an entry and acks. The ack
        // carries the circuit-establishment side effect (Sec. V-B2).
        if let Some(&(from, dest)) = self.reqs.first() {
            let already_reserved = self.nis[dest as usize].reservations.contains(&from);
            let can_reserve = already_reserved || self.ni_free(cfg, dest as usize) > 0;
            if can_reserve && self.acks.len() < cfg.chan_cap as usize {
                let mut s = self.clone();
                s.reqs.remove(0);
                if !already_reserved {
                    s.nis[dest as usize].reservations.push(from);
                    s.nis[dest as usize].reservations.sort_unstable();
                }
                if mutation != Some(Mutation::SkipCircuitInsert) {
                    s.record_circuit(cfg, dest);
                }
                s.acks.push(from);
                out.push((Transition::ServeReq, s));
            }
        }

        // DeliverAck: the front ack reaches its router.
        if let Some(&to) = self.acks.first() {
            let r = to as usize;
            let mut s = self.clone();
            s.acks.remove(0);
            if s.routers[r].stage == PopupStage::WaitAck {
                if mutation == Some(Mutation::BounceAck) {
                    // Broken handshake: re-request instead of popping.
                    if let Some(d) = s.routers[r].popup_dest {
                        if s.reqs.len() < cfg.chan_cap as usize {
                            s.reqs.push((to, d));
                            out.push((Transition::DeliverAck, s));
                        }
                        // Channel full: the delivery is not enabled.
                    }
                } else {
                    debug_assert!(s.routers[r]
                        .stage
                        .can_transition_to(PopupStage::PopInterposer));
                    s.routers[r].stage = PopupStage::PopInterposer;
                    out.push((Transition::DeliverAck, s));
                }
            } else {
                // Stale ack for an already-stopped popup: drop it.
                out.push((Transition::DeliverAck, s));
            }
        }

        // AdvanceStop(r): false positive — the head moved on its own while
        // the popup was pending. Advance it normally and retract the popup
        // (stop signal + reservation release, merged into one step).
        for r in 0..n {
            if self.routers[r].stage != PopupStage::WaitAck || !self.head_can_move(cfg, r) {
                continue;
            }
            let mut s = self.clone();
            s.advance_head(cfg, r);
            debug_assert!(s.routers[r].stage.can_transition_to(PopupStage::Idle));
            s.routers[r].stage = PopupStage::Idle;
            if let Some(d) = s.routers[r].popup_dest.take() {
                let ni = &mut s.nis[d as usize];
                if let Some(pos) = ni.reservations.iter().position(|&x| x == r as u8) {
                    ni.reservations.remove(pos);
                }
            }
            s.reqs.retain(|&(from, _)| from != r as u8);
            s.acks.retain(|&to| to != r as u8);
            out.push((Transition::AdvanceStop(r as u8), s));
        }

        // Pop(r): transmit the head over the circuit into the reserved
        // ejection entry. Requires the circuit (mutations can remove it)
        // and the reservation (the absorber mutation removes its use).
        if mutation != Some(Mutation::DropAbsorber) {
            for r in 0..n {
                if self.routers[r].stage != PopupStage::PopInterposer {
                    continue;
                }
                let Some(d) = self.routers[r].popup_dest else {
                    continue;
                };
                if !self.circuits.contains(&d)
                    || !self.nis[d as usize].reservations.contains(&(r as u8))
                    || self.routers[r].queue.is_empty()
                {
                    continue;
                }
                let mut s = self.clone();
                s.routers[r].queue.remove(0);
                let ni = &mut s.nis[d as usize];
                let pos = ni
                    .reservations
                    .iter()
                    .position(|&x| x == r as u8)
                    .expect("checked");
                ni.reservations.remove(pos);
                ni.queued += 1;
                debug_assert!(s.routers[r].stage.can_transition_to(PopupStage::Idle));
                s.routers[r].stage = PopupStage::Idle;
                s.routers[r].popup_dest = None;
                s.routers[r].counter = 0;
                out.push((Transition::Pop(r as u8), s));
            }
        }

        // Exclude pure stutters: a successor identical to the source is a
        // self-loop carrying no information.
        out.retain(|(_, s)| s != self);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ModelCfg {
        ModelCfg::flagship(2)
    }

    /// Drive the 2-router system by hand into the canonical cyclic-queue
    /// deadlock and check the popup unwinds it.
    #[test]
    fn popup_unwinds_the_handmade_deadlock() {
        let cfg = cfg();
        let mut s = State::initial(&cfg);
        // Fill both queues with packets for the opposite router.
        for r in 0..2usize {
            for _ in 0..2 {
                s.routers[r].budget -= 1;
                s.routers[r].queue.push(((r + 1) % 2) as Packet);
            }
        }
        assert!(!s.head_can_move(&cfg, 0) && !s.head_can_move(&cfg, 1));
        assert!(s.is_deadlocked(&cfg));

        // Tick both watchdogs to the threshold.
        for _ in 0..cfg.threshold {
            let (t, next) = s
                .successors(&cfg)
                .into_iter()
                .find(|(t, _)| *t == Transition::TickAll)
                .expect("tick enabled");
            assert_eq!(t, Transition::TickAll);
            s = next;
        }
        // Expire router 0's watchdog, serve, deliver, pop.
        for want in [
            Transition::WatchdogExpire(0),
            Transition::ServeReq,
            Transition::DeliverAck,
            Transition::Pop(0),
        ] {
            s = s
                .successors(&cfg)
                .into_iter()
                .find(|(t, _)| *t == want)
                .unwrap_or_else(|| panic!("{} must be enabled", want.label()))
                .1;
        }
        // The pop freed a slot in router 0's queue: router 1 can now hop.
        assert!(s.head_can_move(&cfg, 1));
        assert!(!s.is_deadlocked(&cfg));
        assert!(s.circuits.contains(&1), "ack recorded the circuit");
    }

    #[test]
    fn drained_and_deadlocked_are_disjoint() {
        let cfg = cfg();
        let s = State::initial(&cfg);
        assert!(s.is_drained());
        assert!(!s.is_deadlocked(&cfg));
    }

    #[test]
    fn never_expire_mutation_disables_detection() {
        let mut cfg = cfg();
        cfg.mutation = Some(Mutation::NeverExpireWatchdog);
        let mut s = State::initial(&cfg);
        for r in 0..2usize {
            s.routers[r].queue = vec![((r + 1) % 2) as Packet; 2];
            s.routers[r].budget = 0;
            s.routers[r].counter = cfg.threshold;
        }
        assert!(s
            .successors(&cfg)
            .iter()
            .all(|(t, _)| !matches!(t, Transition::WatchdogExpire(_))));
    }

    #[test]
    fn circuit_table_evicts_oldest_when_full() {
        let mut cfg = ModelCfg::flagship(4);
        cfg.circuit_cap = 2;
        let mut s = State::initial(&cfg);
        s.record_circuit(&cfg, 0);
        s.record_circuit(&cfg, 1);
        s.record_circuit(&cfg, 2);
        assert_eq!(s.circuits, vec![1, 2], "oldest entry evicted");
        s.record_circuit(&cfg, 1);
        assert_eq!(s.circuits, vec![2, 1], "re-insert refreshes recency");
    }

    #[test]
    fn mutation_labels_round_trip() {
        for m in Mutation::ALL {
            assert_eq!(Mutation::parse(m.label()), Some(m));
        }
        assert_eq!(Mutation::parse("bogus"), None);
    }
}
