//! One module per table/figure of the paper's evaluation section.

pub mod ablations;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fig_scaling;
pub mod tables;

use crate::report::ExperimentResult;
use upp_noc::config::NocConfig;
use upp_workloads::runner::SweepWindows;

/// All experiment ids, in paper order.
pub const ALL_IDS: [&str; 13] = [
    "table1",
    "table2",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig_scaling",
    "ablations",
];

/// Runs one experiment by id. `quick` trades fidelity for speed (short
/// windows, coarser grids) — used by tests and criterion benches.
pub fn run(id: &str, quick: bool) -> Option<ExperimentResult> {
    match id {
        "table1" => Some(tables::table1()),
        "table2" => Some(tables::table2()),
        "fig7" => Some(fig7::run(quick)),
        "fig8" => Some(fig8::run(quick)),
        "fig9" => Some(fig9::run(quick)),
        "fig10" => Some(fig10::run(quick)),
        "fig11" => Some(fig11::run(quick)),
        "fig12" => Some(fig12::run(quick)),
        "fig13" => Some(fig13::run(quick)),
        "fig14" => Some(fig14::run()),
        "fig15" => Some(fig15::run(quick)),
        "fig_scaling" => Some(fig_scaling::run(quick)),
        "ablations" => Some(ablations::run(quick)),
        _ => None,
    }
}

/// Measurement windows for the mode.
pub fn windows(quick: bool) -> SweepWindows {
    if quick {
        SweepWindows {
            warmup: 1_000,
            measure: 6_000,
        }
    } else {
        SweepWindows::default()
    }
}

/// Network config with the given VC count.
pub fn cfg(vcs: usize) -> NocConfig {
    NocConfig::default().with_vcs_per_vnet(vcs)
}

/// Injection-rate grid for 1 VC per VNet runs.
pub fn rates_1vc(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.02, 0.06, 0.09, 0.12]
    } else {
        vec![0.01, 0.02, 0.04, 0.06, 0.08, 0.09, 0.10, 0.11, 0.12, 0.14]
    }
}

/// Injection-rate grid for 4 VCs per VNet runs.
pub fn rates_4vc(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.04, 0.10, 0.16, 0.20]
    } else {
        vec![0.01, 0.04, 0.08, 0.12, 0.14, 0.16, 0.18, 0.20, 0.22]
    }
}

/// The deterministic seed used for every experiment.
pub const SEED: u64 = 2022;
