//! Rebuilding [`TraceEvent`]s from flight-recorder JSONL lines.
//!
//! The JSONL sink renders one `{"event": NAME, "args": {...}}` object per
//! line (see `upp_noc::trace::TraceEvent::jsonl`). This module parses the
//! subset of events the latency-attribution pipeline consumes back into
//! typed [`TraceEvent`]s; lines for other event kinds (control hops, popup
//! stage transitions) parse to [`Parsed::Irrelevant`] so callers can count
//! them separately from garbage.

use serde_json::Value;
use upp_noc::ids::{NodeId, PacketId, Port, VnetId};
use upp_noc::trace::{BlockReason, TraceEvent};

/// Outcome of parsing one JSONL line.
#[derive(Debug)]
pub enum Parsed {
    /// An event the profiling pipeline consumes.
    Event(TraceEvent),
    /// A well-formed trace line of an event kind profiling ignores.
    Irrelevant,
    /// Not a recognisable trace line.
    Malformed,
}

fn num(v: &Value, key: &str) -> Option<u64> {
    v.get(key)?.as_u64()
}

fn node(v: &Value, key: &str) -> Option<NodeId> {
    Some(NodeId(num(v, key)? as u32))
}

fn port(v: &Value, key: &str) -> Option<Port> {
    match v.get(key)?.as_str()? {
        "L" => Some(Port::Local),
        "N" => Some(Port::North),
        "E" => Some(Port::East),
        "S" => Some(Port::South),
        "W" => Some(Port::West),
        "U" => Some(Port::Up),
        "D" => Some(Port::Down),
        _ => None,
    }
}

fn reason(v: &Value, key: &str) -> Option<BlockReason> {
    match v.get(key)?.as_str()? {
        "credit" => Some(BlockReason::Credit),
        "vc" => Some(BlockReason::VcAlloc),
        "sa" => Some(BlockReason::SwitchAlloc),
        _ => None,
    }
}

/// Parses one JSONL trace line.
pub fn parse_line(line: &str) -> Parsed {
    let line = line.trim();
    if line.is_empty() {
        return Parsed::Irrelevant;
    }
    let Ok(v) = serde_json::from_str(line) else {
        return Parsed::Malformed;
    };
    let Some(name) = v.get("event").and_then(|e| e.as_str()) else {
        return Parsed::Malformed;
    };
    let Some(a) = v.get("args") else {
        return Parsed::Malformed;
    };
    let ev = match name {
        "packet_created" => (|| {
            Some(TraceEvent::PacketCreated {
                at: num(a, "at")?,
                packet: PacketId(num(a, "packet")?),
                src: node(a, "src")?,
                dest: node(a, "dest")?,
                vnet: VnetId(num(a, "vnet")? as u8),
                len_flits: num(a, "len_flits")? as u16,
            })
        })(),
        "packet_injected" => (|| {
            Some(TraceEvent::PacketInjected {
                at: num(a, "at")?,
                packet: PacketId(num(a, "packet")?),
                node: node(a, "node")?,
            })
        })(),
        "packet_ejected" => (|| {
            Some(TraceEvent::PacketEjected {
                at: num(a, "at")?,
                packet: PacketId(num(a, "packet")?),
                node: node(a, "node")?,
                net_latency: num(a, "net_latency")?,
                total_latency: num(a, "total_latency")?,
            })
        })(),
        "vc_allocated" => (|| {
            Some(TraceEvent::VcAllocated {
                at: num(a, "at")?,
                packet: PacketId(num(a, "packet")?),
                node: node(a, "node")?,
                in_port: port(a, "in_port")?,
                vc_flat: num(a, "vc_flat")? as usize,
                out_port: port(a, "out_port")?,
                out_vc: num(a, "out_vc")? as usize,
            })
        })(),
        "blocked" => (|| {
            Some(TraceEvent::Blocked {
                at: num(a, "at")?,
                packet: PacketId(num(a, "packet")?),
                node: node(a, "node")?,
                in_port: port(a, "in_port")?,
                vc_flat: num(a, "vc_flat")? as usize,
                out_port: port(a, "out_port"),
                reason: reason(a, "reason")?,
            })
        })(),
        "bypass_hop" => (|| {
            Some(TraceEvent::BypassHop {
                at: num(a, "at")?,
                packet: PacketId(num(a, "packet")?),
                node: node(a, "node")?,
                out_port: port(a, "out_port")?,
            })
        })(),
        "popup_span" => (|| {
            Some(TraceEvent::PopupSpan {
                node: node(a, "node")?,
                vnet: VnetId(num(a, "vnet")? as u8),
                packet: PacketId(num(a, "packet")?),
                detected_at: num(a, "detected_at")?,
                completed_at: num(a, "completed_at")?,
                wait_ack: num(a, "wait_ack")?,
                locate: num(a, "locate")?,
                pop: num(a, "pop")?,
            })
        })(),
        "bypass_pop" | "control_hop" | "popup_stage" => return Parsed::Irrelevant,
        _ => return Parsed::Malformed,
    };
    match ev {
        Some(e) => Parsed::Event(e),
        None => Parsed::Malformed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_events_profiling_consumes() {
        let events = vec![
            TraceEvent::PacketCreated {
                at: 1,
                packet: PacketId(7),
                src: NodeId(0),
                dest: NodeId(9),
                vnet: VnetId(2),
                len_flits: 5,
            },
            TraceEvent::Blocked {
                at: 6,
                packet: PacketId(7),
                node: NodeId(4),
                in_port: Port::West,
                vc_flat: 2,
                out_port: Some(Port::Up),
                reason: BlockReason::Credit,
            },
            TraceEvent::Blocked {
                at: 6,
                packet: PacketId(8),
                node: NodeId(5),
                in_port: Port::Local,
                vc_flat: 0,
                out_port: None,
                reason: BlockReason::SwitchAlloc,
            },
            TraceEvent::PopupSpan {
                node: NodeId(4),
                vnet: VnetId(2),
                packet: PacketId(7),
                detected_at: 10,
                completed_at: 31,
                wait_ack: 12,
                locate: 0,
                pop: 9,
            },
            TraceEvent::PacketEjected {
                at: 31,
                packet: PacketId(7),
                node: NodeId(9),
                net_latency: 28,
                total_latency: 30,
            },
        ];
        for ev in events {
            match parse_line(&ev.jsonl()) {
                Parsed::Event(back) => assert_eq!(back, ev),
                other => panic!("expected event, got {other:?} for {}", ev.jsonl()),
            }
        }
    }

    #[test]
    fn irrelevant_and_malformed_lines_are_distinguished() {
        let ctl = TraceEvent::PopupStage {
            at: 1,
            node: NodeId(0),
            vnet: VnetId(0),
            packet: None,
            from: "Idle",
            to: "WaitAck",
        };
        assert!(matches!(parse_line(&ctl.jsonl()), Parsed::Irrelevant));
        assert!(matches!(parse_line(""), Parsed::Irrelevant));
        assert!(matches!(parse_line("not json"), Parsed::Malformed));
        assert!(matches!(
            parse_line(r#"{"event":"blocked","args":{"at":1}}"#),
            Parsed::Malformed
        ));
    }
}
