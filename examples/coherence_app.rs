//! Full-system scenario (Fig. 8): run a MESI-style coherence benchmark on
//! all three schemes and compare runtimes — cores on every chiplet router,
//! eight directories on the interposer, three message classes over three
//! VNets.
//!
//! ```text
//! cargo run --release --example coherence_app [benchmark]
//! ```

use upp::noc::config::NocConfig;
use upp::noc::ni::ConsumePolicy;
use upp::noc::topology::ChipletSystemSpec;
use upp::workloads::coherence::run_benchmark;
use upp::workloads::profiles::{all_benchmarks, benchmark};
use upp::workloads::runner::{build_system, SchemeKind};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "canneal".to_string());
    let Some(profile) = benchmark(&name) else {
        eprintln!("unknown benchmark {name}; available:");
        for b in all_benchmarks() {
            eprintln!("  {}", b.name);
        }
        std::process::exit(2);
    };
    println!(
        "benchmark {name}: intensity {:.3}, window {}, {} transactions/core, \
         fwd {:.0}%, wb {:.0}%",
        profile.intensity,
        profile.window,
        profile.transactions,
        profile.fwd_prob * 100.0,
        profile.wb_prob * 100.0
    );

    let spec = ChipletSystemSpec::baseline();
    let mut baseline_cycles = None;
    for kind in SchemeKind::evaluated() {
        let built = build_system(
            &spec,
            NocConfig::default(),
            &kind,
            0,
            7,
            ConsumePolicy::External,
        );
        let mut sys = built.sys;
        let r = run_benchmark(&mut sys, profile, 7, 50_000_000);
        assert!(!r.incomplete, "{} must complete", kind.label());
        let upward = built
            .upp_stats
            .as_ref()
            .map(|h| h.lock().expect("single-threaded").upward_packets)
            .unwrap_or(0);
        let norm = match baseline_cycles {
            None => {
                baseline_cycles = Some(r.cycles);
                1.0
            }
            Some(base) => r.cycles as f64 / base as f64,
        };
        println!(
            "{:<15} runtime {:>8} cycles (normalized {:.3}) | {:>7} packets | \
             net latency {:>5.1} | upward packets {}",
            kind.label(),
            r.cycles,
            norm,
            r.packets,
            r.avg_net_latency,
            upward
        );
    }
    println!(
        "\nExpected shape (paper Fig. 8): UPP fastest, composable slowest, remote \
         control in between (its injection control costs latency)."
    );
}
