//! The two verified properties, checked over the full explored graph.
//!
//! **P1 — bounded recovery.** Every reachable state must be able to reach
//! a drained state (all packets consumed, all popup machinery quiet).
//! This subsumes the paper's recovery claim: a deadlocked configuration
//! that the protocol cannot unwind is exactly a reachable state with no
//! path to drain. The check runs one backward BFS from the set of drained
//! states over reversed edges; any state left unvisited is a violation,
//! and the maximum backward distance is a *proven* worst-case recovery
//! bound in abstract transitions.
//!
//! **P2 — no popup livelock.** The popup machinery must not be able to
//! spin forever without moving a packet. A livelock is a cycle built
//! entirely from non-progress transitions (signal churn, watchdog ticks —
//! anything but a hop/eject/pop/consume) on which popup state is active.
//! The check runs Tarjan's SCC algorithm over the non-progress subgraph;
//! any SCC containing an internal edge is a reachable infinite
//! non-progress loop, convicted with an entry path and the cycle itself.

use crate::explore::Exploration;
use crate::model::Transition;

/// Proof data for P1 on a clean run.
#[derive(Debug, Clone)]
pub struct RecoveryProof {
    /// Worst-case shortest recovery distance, in abstract transitions.
    pub bound: usize,
    /// Reachable drained states the backward search started from.
    pub drained_states: usize,
    /// Reachable raw-deadlock configurations covered by the proof.
    pub deadlock_states: usize,
}

/// A P1 violation: a reachable state with no path to drain.
#[derive(Debug, Clone)]
pub struct RecoveryViolation {
    /// A violating state id — a deadlocked one when any exists, since
    /// that is the clearest counterexample.
    pub state: u32,
    /// Total unrecoverable states.
    pub count: usize,
}

/// A P2 violation: a reachable non-progress cycle with popups active.
#[derive(Debug, Clone)]
pub struct LivelockViolation {
    /// A state on the cycle (entry point used for the trace).
    pub entry: u32,
    /// The cycle itself as `(transition, next state id)` steps from
    /// `entry` back to `entry`.
    pub cycle: Vec<(Transition, u32)>,
}

/// Checks P1 (bounded recovery) over the explored graph.
///
/// # Errors
///
/// Returns the violation when some reachable state cannot drain.
pub fn check_bounded_recovery(ex: &Exploration) -> Result<RecoveryProof, RecoveryViolation> {
    let n = ex.states.len();
    // Reverse adjacency.
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (from, outs) in ex.edges.iter().enumerate() {
        for &(to, _) in outs {
            rev[to as usize].push(from as u32);
        }
    }
    // Multi-source backward BFS from every drained state.
    let mut dist: Vec<Option<u32>> = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    let mut drained_states = 0usize;
    for (id, s) in ex.states.iter().enumerate() {
        if s.is_drained() {
            dist[id] = Some(0);
            queue.push_back(id as u32);
            drained_states += 1;
        }
    }
    while let Some(id) = queue.pop_front() {
        let d = dist[id as usize].expect("queued states have distances");
        for &p in &rev[id as usize] {
            if dist[p as usize].is_none() {
                dist[p as usize] = Some(d + 1);
                queue.push_back(p);
            }
        }
    }

    let unrecoverable: Vec<u32> = (0..n as u32)
        .filter(|&id| dist[id as usize].is_none())
        .collect();
    if !unrecoverable.is_empty() {
        // Prefer a raw deadlock as the reported witness; it is the state
        // the paper's protocol was supposed to rescue.
        let state = unrecoverable
            .iter()
            .copied()
            .find(|&id| ex.states[id as usize].is_deadlocked(&ex.cfg))
            .unwrap_or(unrecoverable[0]);
        return Err(RecoveryViolation {
            state,
            count: unrecoverable.len(),
        });
    }
    Ok(RecoveryProof {
        bound: dist
            .iter()
            .map(|d| d.expect("all reachable") as usize)
            .max()
            .unwrap_or(0),
        drained_states,
        deadlock_states: ex.stats.deadlock_states,
    })
}

/// Checks P2 (no popup livelock) over the explored graph.
///
/// # Errors
///
/// Returns the violation when a reachable non-progress cycle exists.
pub fn check_no_livelock(ex: &Exploration) -> Result<(), LivelockViolation> {
    let n = ex.states.len();
    // Non-progress subgraph (the model already excludes identity
    // stutters, so every remaining edge changes state).
    let adj: Vec<Vec<(u32, Transition)>> = ex
        .edges
        .iter()
        .map(|outs| {
            outs.iter()
                .copied()
                .filter(|(_, t)| !t.is_progress())
                .collect()
        })
        .collect();

    // Iterative Tarjan SCC.
    let mut index_of: Vec<Option<u32>> = vec![None; n];
    let mut low: Vec<u32> = vec![0; n];
    let mut on_stack: Vec<bool> = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut scc_of: Vec<u32> = vec![u32::MAX; n];
    let mut scc_count = 0u32;

    for root in 0..n as u32 {
        if index_of[root as usize].is_some() {
            continue;
        }
        // (node, next child position)
        let mut call: Vec<(u32, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut child)) = call.last_mut() {
            if *child == 0 {
                index_of[v as usize] = Some(next_index);
                low[v as usize] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v as usize] = true;
            }
            if let Some(&(w, _)) = adj[v as usize].get(*child) {
                *child += 1;
                match index_of[w as usize] {
                    None => call.push((w, 0)),
                    Some(wi) => {
                        if on_stack[w as usize] {
                            low[v as usize] = low[v as usize].min(wi);
                        }
                    }
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                }
                if low[v as usize] == index_of[v as usize].expect("visited") {
                    loop {
                        let w = stack.pop().expect("scc member");
                        on_stack[w as usize] = false;
                        scc_of[w as usize] = scc_count;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
            }
        }
    }

    // A livelock SCC has an internal edge (size >= 2, or — impossible
    // here — a self loop).
    let mut scc_size: Vec<u32> = vec![0; scc_count as usize];
    for &s in &scc_of {
        scc_size[s as usize] += 1;
    }
    for (id, outs) in adj.iter().enumerate() {
        let scc = scc_of[id];
        if scc_size[scc as usize] < 2 {
            continue;
        }
        if !outs.iter().any(|&(to, _)| scc_of[to as usize] == scc) {
            continue;
        }
        // Found a cyclic SCC. Extract an actual cycle by walking within
        // the SCC from `id` until a state repeats.
        let mut cycle = Vec::new();
        let mut seen = std::collections::HashMap::new();
        let mut cur = id as u32;
        loop {
            if let Some(&at) = seen.get(&cur) {
                cycle.drain(..at);
                let entry = cur;
                return Err(LivelockViolation { entry, cycle });
            }
            seen.insert(cur, cycle.len());
            let &(next, t) = adj[cur as usize]
                .iter()
                .find(|&&(to, _)| scc_of[to as usize] == scc)
                .expect("cyclic SCC keeps an internal edge from every node we walk");
            cycle.push((t, next));
            cur = next;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;
    use crate::model::ModelCfg;

    #[test]
    fn flagship_two_router_model_satisfies_both_properties() {
        let cfg = ModelCfg::flagship(2);
        let ex = explore(&cfg, true, 2_000_000).expect("explores");
        let proof = check_bounded_recovery(&ex).expect("recovery must hold");
        assert!(proof.bound > 0, "recovery takes at least one step");
        assert!(proof.deadlock_states > 0, "the proof covers real deadlocks");
        check_no_livelock(&ex).expect("no livelock in the honest protocol");
    }

    #[test]
    fn recovery_bound_is_a_real_bound() {
        // The reported bound must dominate the depth of the deepest
        // drain-reaching path from a deadlock: spot-check it is at least
        // the trivial lower bound of one pop + one hop + consumes.
        let cfg = ModelCfg::flagship(2);
        let ex = explore(&cfg, true, 2_000_000).expect("explores");
        let proof = check_bounded_recovery(&ex).expect("recovery holds");
        assert!(
            proof.bound >= 4,
            "bound {} too small to be plausible",
            proof.bound
        );
    }
}
