//! Vendored offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! strategies over integer ranges / tuples / `Just` / `prop_oneof!` /
//! `any::<T>()` / `proptest::bool::ANY`, `prop_map`, and the
//! `prop_assert*` / `prop_assume!` assertion macros. Cases are generated
//! from a deterministic per-test RNG; there is no shrinking.

pub mod strategy;
pub mod test_runner;

/// `Arbitrary` values samplable over their whole domain.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing any value of `T` (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolStrategy;

    /// The strategy `proptest::bool::ANY`.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (subset of the real crate's
/// `proptest::collection`).
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Generates `Vec`s with lengths drawn from `len` and elements from
    /// `elem`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy::new(elem, len)
    }
}

/// The usual `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Builds a strategy choosing uniformly among the given strategies (all
/// producing the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` != `{:?}`", __l, __r),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fails the current test case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
}

/// Discards the current test case (it is retried with fresh inputs) unless
/// the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(concat!("assumption failed: ", stringify!($cond))),
            ));
        }
    };
}

/// Declares property tests. Each argument is drawn from its strategy for
/// every case; rejected cases (via `prop_assume!`) are retried.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut __ran: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(16).max(64);
            while __ran < __config.cases {
                assert!(
                    __attempts < __max_attempts,
                    "proptest {}: too many rejected cases ({} attempts for {} cases)",
                    stringify!($name), __attempts, __config.cases,
                );
                __attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __case = format!(concat!($("\n  ", stringify!($arg), " = {:?}",)+), $(&$arg),+);
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                match __result {
                    ::std::result::Result::Ok(()) => { __ran += 1; }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed on case {}: {}\nwith inputs:{}",
                            stringify!($name), __ran, __msg, __case,
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        prop_oneof![Just(1u32), Just(2), (10u32..20)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn generated_values_respect_strategies(
            v in small(),
            b in crate::bool::ANY,
            x in 5u64..9,
            pair in (0u8..4, 0u8..4).prop_map(|(a, b)| (a, b)),
        ) {
            prop_assert!(v == 1 || v == 2 || (10..20).contains(&v), "v = {v}");
            prop_assert!(b || !b);
            prop_assert!((5..9).contains(&x));
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }

        #[test]
        fn assume_rejects_and_retries(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
