//! Adversarial stress subsystem for the UPP simulator.
//!
//! `upp-verify` exists to catch recovery schemes *lying*: every deadlock
//! scheme in this workspace reports its own health (watchdogs, popup
//! counters, absorber stats), so a broken scheme could silently wedge or —
//! worse — drop, duplicate or misdeliver packets while its own telemetry
//! looks clean. This crate cross-checks the schemes with machinery that
//! shares none of their code paths:
//!
//! * [`oracle`] — a scheme-independent deadlock oracle that samples the
//!   network's true wait-for graph from buffer occupancy and flags any
//!   circular wait that persists beyond a threshold;
//! * [`traffic`] — deterministic pre-generated traffic traces, replayable
//!   packet-for-packet across schemes and runs;
//! * [`scenario`] — a self-contained JSON description of one adversarial
//!   run (system, scheme, traffic, dynamic fault plan) that can be saved,
//!   shipped in a bug report and replayed exactly;
//! * [`harness`] — runs a scenario to completion under the oracle and
//!   checks end-to-end delivery (multiset of delivered packets equals the
//!   multiset of accepted sends) plus conservation (nothing in flight at
//!   drain), and differentially compares schemes against each other;
//! * [`shrink`] — delta-debugging reduction of a failing scenario to a
//!   minimal replayable repro;
//! * [`bridge`] — replays `upp-check` model-checker counterexample
//!   artifacts through the concrete simulator and cross-validates the
//!   abstract verdict against the concrete outcome.
//!
//! The `verify` binary drives seeded randomized campaigns over all of the
//! above; see `verify --help`.

#![warn(missing_docs)]

pub mod bridge;
pub mod harness;
pub mod oracle;
pub mod scenario;
pub mod shrink;
pub mod traffic;

pub use bridge::{
    classify, replay_artifact, AbstractStep, BridgeReport, CheckArtifact, ExpectedOutcome,
    CHECK_ARTIFACT_VERSION,
};
pub use harness::{
    oracle_for, run_differential, run_scenario, run_scenario_sharded, run_scenario_watched,
    run_scenario_with, DiffReport, RunReport, Verdict,
};
pub use oracle::{DeadlockOracle, OracleConfig, OracleViolation};
pub use scenario::Scenario;
pub use shrink::shrink;
pub use traffic::{TrafficEntry, TrafficTrace};
