//! Analytic router area model (Fig. 14).
//!
//! The paper synthesises routers with Design Compiler under a 45 nm TSMC
//! library at 1 GHz and reports a baseline router of 135,083 µm² with 1 VC
//! per VNet and 339,371 µm² with 4 VCs per VNet. We fit a per-buffer-bit
//! linear model to those two points and account for each scheme's additions
//! in real bits and calibrated control logic:
//!
//! * composable routing adds nothing (turn restrictions are routing-table
//!   content);
//! * UPP adds two 32-bit signal buffers, the circuit/reservation tables and
//!   signal units per chiplet router, and counters + arbiters + the popup
//!   stage table per interposer router (Fig. 6);
//! * remote control adds four data-packet side buffers per *boundary* router
//!   (amortised over the chiplet's routers, as the paper reports) plus the
//!   permission subnetwork endpoint.

use serde::{Deserialize, Serialize};
use upp_noc::config::NocConfig;

/// Baseline router area at 1 VC per VNet (paper, 45 nm, µm²).
pub const BASELINE_AREA_1VC: f64 = 135_083.0;
/// Baseline router area at 4 VCs per VNet (paper, 45 nm, µm²).
pub const BASELINE_AREA_4VC: f64 = 339_371.0;

/// Per-router buffer bits at `vcs_per_vnet` (5 ports x 3 VNets x depth 4 x
/// 128-bit flits in the baseline configuration).
fn buffer_bits(cfg: &NocConfig) -> f64 {
    (5 * cfg.vcs_per_port() * cfg.vc_buffer_depth * cfg.flit_width_bits) as f64
}

/// The fitted area model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// µm² per buffer bit (fitted from the two published baseline points).
    pub um2_per_bit: f64,
    /// Fixed router area: crossbar, allocators, clocking (µm²).
    pub fixed_um2: f64,
    /// UPP control logic per chiplet router: signal units, circuit table,
    /// priority muxes, NI reservation table (µm², calibrated to Fig. 14).
    pub upp_chiplet_logic_um2: f64,
    /// UPP control logic per interposer router at 1 VC: counters, arbiter,
    /// popup stage table, signal units (µm²).
    pub upp_interposer_logic_um2: f64,
    /// Additional interposer arbiter area per extra VC per VNet (µm²).
    pub upp_interposer_per_vc_um2: f64,
    /// Remote-control permission endpoint per router (µm²).
    pub remote_logic_um2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        // Fit: (339,371 - 135,083) / (30,720 - 7,680) bits = 8.867 µm²/bit.
        let cfg1 = NocConfig::default();
        let cfg4 = NocConfig::default().with_vcs_per_vnet(4);
        let um2_per_bit =
            (BASELINE_AREA_4VC - BASELINE_AREA_1VC) / (buffer_bits(&cfg4) - buffer_bits(&cfg1));
        let fixed_um2 = BASELINE_AREA_1VC - buffer_bits(&cfg1) * um2_per_bit;
        Self {
            um2_per_bit,
            fixed_um2,
            upp_chiplet_logic_um2: 4_525.0,
            upp_interposer_logic_um2: 3_220.0,
            upp_interposer_per_vc_um2: 161.0,
            remote_logic_um2: 80.0,
        }
    }
}

/// One scheme's relative overhead on chiplet and interposer routers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaOverhead {
    /// Overhead on a chiplet router (fraction of baseline area; NI included,
    /// as in the paper).
    pub chiplet: f64,
    /// Overhead on an interposer router.
    pub interposer: f64,
}

impl AreaModel {
    /// Baseline router area under `cfg`.
    pub fn baseline_router_um2(&self, cfg: &NocConfig) -> f64 {
        self.fixed_um2 + buffer_bits(cfg) * self.um2_per_bit
    }

    /// Composable routing: turn restrictions only.
    pub fn composable(&self, _cfg: &NocConfig) -> AreaOverhead {
        AreaOverhead {
            chiplet: 0.0,
            interposer: 0.0,
        }
    }

    /// UPP's overhead (Fig. 6 structures).
    pub fn upp(&self, cfg: &NocConfig) -> AreaOverhead {
        let base = self.baseline_router_um2(cfg);
        // Two 32-bit buffers + control logic per chiplet router.
        let chiplet = (64.0 * self.um2_per_bit + self.upp_chiplet_logic_um2) / base;
        // Counters, arbiters (grow with VC count), stage table per
        // interposer router.
        let interposer = (self.upp_interposer_logic_um2
            + self.upp_interposer_per_vc_um2 * (cfg.vcs_per_vnet as f64 - 1.0) * 3.0
            + 36.0 * self.um2_per_bit)
            / base;
        AreaOverhead {
            chiplet,
            interposer,
        }
    }

    /// Remote control's overhead: four data-packet side buffers per boundary
    /// router, amortised over `routers_per_chiplet` (the paper reports the
    /// average chiplet-router overhead), plus the permission endpoint.
    pub fn remote_control(
        &self,
        cfg: &NocConfig,
        boundary_per_chiplet: usize,
        routers_per_chiplet: usize,
    ) -> AreaOverhead {
        let base = self.baseline_router_um2(cfg);
        let side_bits = (cfg.data_packet_flits * cfg.flit_width_bits * 4) as f64;
        let per_chiplet_total = side_bits * self.um2_per_bit * boundary_per_chiplet as f64
            + self.remote_logic_um2 * routers_per_chiplet as f64;
        AreaOverhead {
            chiplet: per_chiplet_total / routers_per_chiplet as f64 / base,
            interposer: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg1() -> NocConfig {
        NocConfig::default()
    }

    fn cfg4() -> NocConfig {
        NocConfig::default().with_vcs_per_vnet(4)
    }

    #[test]
    fn fit_reproduces_published_baselines() {
        let m = AreaModel::default();
        assert!((m.baseline_router_um2(&cfg1()) - BASELINE_AREA_1VC).abs() < 1.0);
        assert!((m.baseline_router_um2(&cfg4()) - BASELINE_AREA_4VC).abs() < 1.0);
    }

    #[test]
    fn upp_overhead_matches_fig14_shape() {
        let m = AreaModel::default();
        let o1 = m.upp(&cfg1());
        let o4 = m.upp(&cfg4());
        // Paper: 3.77% / 1.50% chiplet, 2.62% / 1.47% interposer.
        assert!(
            (o1.chiplet - 0.0377).abs() < 0.004,
            "chiplet 1VC {}",
            o1.chiplet
        );
        assert!(
            (o4.chiplet - 0.0150).abs() < 0.003,
            "chiplet 4VC {}",
            o4.chiplet
        );
        assert!(
            (o1.interposer - 0.0262).abs() < 0.005,
            "interposer 1VC {}",
            o1.interposer
        );
        assert!(
            (o4.interposer - 0.0147).abs() < 0.004,
            "interposer 4VC {}",
            o4.interposer
        );
        // Headline claim: always under 4%.
        for o in [o1, o4] {
            assert!(o.chiplet < 0.04 && o.interposer < 0.04);
        }
    }

    #[test]
    fn remote_overhead_matches_fig14_shape() {
        let m = AreaModel::default();
        let o1 = m.remote_control(&cfg1(), 4, 16);
        let o4 = m.remote_control(&cfg4(), 4, 16);
        // Paper: 4.14% / 1.65% chiplet, 0% interposer.
        assert!(
            (o1.chiplet - 0.0414).abs() < 0.005,
            "chiplet 1VC {}",
            o1.chiplet
        );
        assert!(
            (o4.chiplet - 0.0165).abs() < 0.003,
            "chiplet 4VC {}",
            o4.chiplet
        );
        assert_eq!(o1.interposer, 0.0);
        // Remote's chiplet-side overhead exceeds UPP's.
        assert!(o1.chiplet > m.upp(&cfg1()).chiplet);
    }

    #[test]
    fn composable_adds_nothing() {
        let m = AreaModel::default();
        let o = m.composable(&cfg1());
        assert_eq!(o.chiplet, 0.0);
        assert_eq!(o.interposer, 0.0);
    }
}
