//! Experiment infrastructure: system construction for every scheme, latency
//! sweeps, and saturation-point extraction.

use crate::synthetic::{Pattern, SyntheticTraffic};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};
use upp_baselines::composable::Composable;
use upp_baselines::remote::{RemoteControl, RemoteControlConfig};
use upp_core::{Upp, UppConfig, UppStats, UppStatsHandle};
use upp_noc::config::NocConfig;
use upp_noc::ni::ConsumePolicy;
use upp_noc::routing::{ChipletRouting, RouteTables};
use upp_noc::sim::System;
use upp_noc::topology::{chiplet::inject_random_faults, ChipletSystemSpec, Topology};
use upp_noc::Network;

/// Which deadlock-freedom scheme to instantiate.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemeKind {
    /// Unprotected reference (deadlocks under load).
    None,
    /// Upward Packet Popup.
    Upp(UppConfig),
    /// Composable routing (turn restrictions).
    Composable,
    /// Remote control (injection control).
    RemoteControl,
}

impl SchemeKind {
    /// The three schemes compared throughout the evaluation.
    pub fn evaluated() -> Vec<SchemeKind> {
        vec![
            SchemeKind::Composable,
            SchemeKind::RemoteControl,
            SchemeKind::Upp(UppConfig::default()),
        ]
    }

    /// Label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::None => "none",
            SchemeKind::Upp(_) => "UPP",
            SchemeKind::Composable => "composable",
            SchemeKind::RemoteControl => "remote-control",
        }
    }
}

/// A constructed system plus handles the harness needs.
pub struct BuiltSystem {
    /// The system.
    pub sys: System,
    /// UPP's recovery statistics, when the scheme is UPP.
    pub upp_stats: Option<UppStatsHandle>,
}

/// Builds a system over `topo` for the given scheme.
///
/// `faults` marks that many random mesh links faulty (Fig. 11); faulty
/// topologies switch region routing to up*/down* tables.
///
/// # Panics
///
/// Panics if the composable search fails or fault injection cannot keep the
/// regions connected (not observed on the paper's system shapes).
pub fn build_system(
    spec: &ChipletSystemSpec,
    cfg: NocConfig,
    kind: &SchemeKind,
    faults: usize,
    seed: u64,
    consume: ConsumePolicy,
) -> BuiltSystem {
    let mut topo = spec.build(seed).expect("valid system spec");
    if faults > 0 {
        inject_random_faults(&mut topo, faults, seed.wrapping_add(1))
            .expect("fault injection keeps regions connected");
    }
    build_on_topology(topo, cfg, kind, seed, consume)
}

/// Builds a system over an existing topology (for callers that pre-shaped
/// the fault set).
pub fn build_on_topology(
    topo: Topology,
    cfg: NocConfig,
    kind: &SchemeKind,
    seed: u64,
    consume: ConsumePolicy,
) -> BuiltSystem {
    let routing: ChipletRouting = if topo.num_faulty_links() > 0 {
        ChipletRouting::with_tables(Arc::new(RouteTables::build(&topo)))
    } else {
        ChipletRouting::xy()
    };
    // Applies the process-wide `--shards` default (1 = serial) to every
    // freshly built network.
    fn new_net(
        cfg: NocConfig,
        topo: Topology,
        routing: Arc<dyn upp_noc::routing::RouteComputer>,
        consume: ConsumePolicy,
        seed: u64,
    ) -> Network {
        let mut net = Network::new(cfg, topo, routing, consume, seed);
        let shards = upp_noc::shard::default_shards();
        if shards > 1 {
            net.set_shards(shards);
        }
        net
    }
    match kind {
        SchemeKind::None => {
            let net = new_net(cfg, topo, Arc::new(routing), consume, seed);
            BuiltSystem {
                sys: System::new(net, Box::new(upp_noc::NoScheme)),
                upp_stats: None,
            }
        }
        SchemeKind::Upp(ucfg) => {
            let net = new_net(cfg, topo, Arc::new(routing), consume, seed);
            let upp = Upp::new(*ucfg);
            let stats = upp.stats_handle();
            BuiltSystem {
                sys: System::new(net, Box::new(upp)),
                upp_stats: Some(stats),
            }
        }
        SchemeKind::Composable => {
            assert_eq!(
                topo.num_faulty_links(),
                0,
                "the composable search is impractical on faulty systems (Sec. VI-B)"
            );
            let (scheme, routing) = Composable::build(&topo).expect("composable search succeeds");
            let net = new_net(cfg, topo, Arc::new(routing), consume, seed);
            BuiltSystem {
                sys: System::new(net, Box::new(scheme)),
                upp_stats: None,
            }
        }
        SchemeKind::RemoteControl => {
            let net = new_net(cfg, topo, Arc::new(routing), consume, seed);
            BuiltSystem {
                sys: System::new(
                    net,
                    Box::new(RemoteControl::new(RemoteControlConfig::default())),
                ),
                upp_stats: None,
            }
        }
    }
}

/// Warmup/measurement windows (Table II: 10K warmup, 100K measurement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepWindows {
    /// Warmup cycles (not measured).
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
}

impl Default for SweepWindows {
    fn default() -> Self {
        Self {
            warmup: 10_000,
            measure: 100_000,
        }
    }
}

impl SweepWindows {
    /// Short windows for tests and criterion benches.
    pub fn quick() -> Self {
        Self {
            warmup: 1_000,
            measure: 5_000,
        }
    }
}

/// Per-detector raised-alert counts for one run (watch health monitoring,
/// `upp-alerts/v1`), as named fields in [`upp_noc::watch::Detector::ALL`]
/// order so journal rows stay flat, diffable JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlertCounts {
    /// Raised `throughput_collapse` alerts.
    pub throughput_collapse: u64,
    /// Raised `injection_starvation` alerts.
    pub injection_starvation: u64,
    /// Raised `popup_storm` alerts.
    pub popup_storm: u64,
    /// Raised `watchdog_cascade` alerts.
    pub watchdog_cascade: u64,
    /// Raised `circuit_saturation` alerts.
    pub circuit_saturation: u64,
    /// Raised `permit_queue_runaway` alerts.
    pub permit_queue_runaway: u64,
    /// Raised `shard_imbalance` alerts.
    pub shard_imbalance: u64,
}

impl AlertCounts {
    /// Folds a finished watcher's raised counts into named fields.
    pub fn from_watcher(w: &upp_noc::watch::Watcher) -> Self {
        let c = w.alert_counts();
        Self {
            throughput_collapse: c[0],
            injection_starvation: c[1],
            popup_storm: c[2],
            watchdog_cascade: c[3],
            circuit_saturation: c[4],
            permit_queue_runaway: c[5],
            shard_imbalance: c[6],
        }
    }

    /// Total raised alerts across all detectors.
    pub fn total(&self) -> u64 {
        self.throughput_collapse
            + self.injection_starvation
            + self.popup_storm
            + self.watchdog_cascade
            + self.circuit_saturation
            + self.permit_queue_runaway
            + self.shard_imbalance
    }
}

/// One measured sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Offered load, flits/cycle/node.
    pub rate: f64,
    /// Mean network latency of packets finishing in the window.
    pub net_latency: f64,
    /// Mean source-queueing latency.
    pub queue_latency: f64,
    /// Mean total latency.
    pub total_latency: f64,
    /// Delivered throughput, flits/cycle/node.
    pub throughput: f64,
    /// Packets ejected in the window.
    pub packets_ejected: u64,
    /// Upward packets detected in the window (UPP only; 0 otherwise).
    pub upward_packets: u64,
    /// Control-signal link traversals in the window (popup bandwidth cost).
    pub control_hops: u64,
    /// Median network latency (cycles), interpolated from the latency
    /// histogram.
    pub p50: f64,
    /// 95th-percentile network latency (cycles).
    pub p95: f64,
    /// 99th-percentile network latency (cycles).
    pub p99: f64,
    /// 99.9th-percentile network latency (cycles).
    pub p999: f64,
    /// True if the watchdog fired during the run (possible only for
    /// `SchemeKind::None`).
    pub deadlocked: bool,
    /// Health-monitor alert counts over the measurement window: every
    /// point runs the default [`upp_noc::watch::Watcher`], so sweeps
    /// double as a fleet-wide anomaly scan.
    pub alerts: AlertCounts,
}

/// Process-wide alert sink for sweep points (the `repro --watch-out`
/// flag). Each finished point with alerts appends one context line
/// (`{"upp_alerts_point":1,...}`) plus its `upp-alerts/v1` lines under a
/// single lock, so groups stay contiguous — but group *order* follows
/// point completion order, which depends on the worker count.
static WATCH_OUT: Mutex<Option<std::fs::File>> = Mutex::new(None);
/// Process-wide forensics directory (the `repro --watch-capture-dir`
/// flag): points crossing critical capture a bundle into a per-point
/// subdirectory.
static WATCH_CAPTURE: Mutex<Option<std::path::PathBuf>> = Mutex::new(None);
/// When set (the `repro --watch` flag), points with alerts echo a one-line
/// summary to stderr as they complete.
static WATCH_ECHO: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Opens `path` as the process-wide sweep alert stream and writes the
/// `upp-alerts/v1` header. Journal-resumed points are not re-run, so they
/// contribute no lines.
pub fn set_watch_out(path: &std::path::Path) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "{}",
        upp_noc::watch::alerts_header_json(upp_noc::watch::WatchConfig::default().every)
    )?;
    f.flush()?;
    *WATCH_OUT.lock().unwrap() = Some(f);
    Ok(())
}

/// Sets the process-wide forensics directory for sweep points.
pub fn set_watch_capture_dir(dir: &std::path::Path) {
    *WATCH_CAPTURE.lock().unwrap() = Some(dir.to_path_buf());
}

/// Enables the per-point stderr alert summary.
pub fn set_watch_echo(on: bool) {
    WATCH_ECHO.store(on, std::sync::atomic::Ordering::SeqCst);
}

/// Runs one `(pattern, rate)` point.
#[allow(clippy::too_many_arguments)]
pub fn run_point(
    spec: &ChipletSystemSpec,
    cfg: &NocConfig,
    kind: &SchemeKind,
    faults: usize,
    pattern: Pattern,
    rate: f64,
    windows: SweepWindows,
    seed: u64,
) -> SweepPoint {
    let mut built = build_system(
        spec,
        cfg.clone(),
        kind,
        faults,
        seed,
        ConsumePolicy::Immediate { latency: 1 },
    );
    let mut traffic = {
        let topo = built.sys.net().topo();
        SyntheticTraffic::new(topo, pattern, rate, seed)
    };
    for _ in 0..windows.warmup {
        traffic.tick(&mut built.sys);
        built.sys.step();
    }
    built.sys.net_mut().reset_stats();
    let upward_before = built
        .upp_stats
        .as_ref()
        .map(|h| UppStats::snapshot(h).upward_packets)
        .unwrap_or(0);
    // The health monitor rides every point: obs must be live for the
    // gauge-reading detectors, and arming *after* the stats reset means
    // the first epoch differences against the window start. Obs and the
    // watcher are both strictly read-only, so measured values (and the
    // committed sweep goldens' non-alert columns) are untouched.
    built.sys.net_mut().enable_obs();
    let mut watcher = upp_noc::watch::Watcher::new(upp_noc::watch::WatchConfig::default());
    watcher.arm(built.sys.net());
    let watch_every = watcher.config().every;
    let mut deadlocked = false;
    for _ in 0..windows.measure {
        traffic.tick(&mut built.sys);
        built.sys.step();
        if built.sys.net().cycle().is_multiple_of(watch_every) {
            built.sys.observe();
            let tick = watcher.feed(built.sys.net());
            if tick.capture {
                let dir = WATCH_CAPTURE.lock().unwrap().clone();
                if let Some(dir) = dir {
                    let sub = dir.join(format!(
                        "{}_{}_r{rate}_s{seed}",
                        kind.label(),
                        pattern.label()
                    ));
                    let at = built.sys.net().cycle();
                    match upp_noc::watch::capture_forensics(&mut built.sys, &sub, at) {
                        Ok(_) => eprintln!(
                            "[watch] critical at cycle {at}: forensics -> {}",
                            sub.display()
                        ),
                        Err(e) => eprintln!("[watch] forensics capture failed: {e}"),
                    }
                }
            }
        }
        if built.sys.net().stalled() {
            deadlocked = true;
            break;
        }
    }
    if !watcher.alerts().is_empty() {
        if WATCH_ECHO.load(std::sync::atomic::Ordering::SeqCst) {
            eprintln!(
                "[watch] {}/{} r{rate} s{seed}: {} alerts raised",
                kind.label(),
                pattern.label(),
                watcher.total_raised()
            );
        }
        let mut sink = WATCH_OUT.lock().unwrap();
        if let Some(f) = sink.as_mut() {
            use std::io::Write as _;
            let _ = writeln!(
                f,
                "{{\"upp_alerts_point\":1,\"scheme\":\"{}\",\"pattern\":\"{}\",\
                 \"rate\":{rate},\"faults\":{faults},\"seed\":{seed}}}",
                kind.label(),
                pattern.label()
            );
            for a in watcher.alerts() {
                let _ = writeln!(f, "{}", a.jsonl());
            }
            let _ = f.flush();
        }
    }
    let stats = built.sys.net().stats();
    let nodes = built.sys.net().topo().num_endpoints();
    let upward_after = built
        .upp_stats
        .as_ref()
        .map(|h| UppStats::snapshot(h).upward_packets)
        .unwrap_or(0);
    SweepPoint {
        rate,
        net_latency: stats.avg_net_latency(),
        queue_latency: stats.avg_queue_latency(),
        total_latency: stats.avg_total_latency(),
        throughput: stats.throughput(windows.measure, nodes),
        packets_ejected: stats.packets_ejected,
        upward_packets: upward_after - upward_before,
        control_hops: stats.control_hops,
        p50: stats.latency_percentile(0.5),
        p95: stats.latency_percentile(0.95),
        p99: stats.latency_percentile(0.99),
        p999: stats.latency_percentile(0.999),
        deadlocked,
        alerts: AlertCounts::from_watcher(&watcher),
    }
}

/// The worker count used by [`sweep`]: the `UPP_JOBS` environment variable
/// when set, else the machine's available parallelism.
pub fn sweep_workers() -> usize {
    if let Ok(v) = std::env::var("UPP_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs a full latency-vs-injection sweep. Points are independent
/// simulations and run on a bounded worker pool (see [`sweep_workers`]);
/// results are deterministic and ordered by rate regardless of scheduling.
///
/// The richer journaled engine lives in `upp_bench::sweep`; this is the
/// dependency-light library entry point.
#[allow(clippy::too_many_arguments)]
pub fn sweep(
    spec: &ChipletSystemSpec,
    cfg: &NocConfig,
    kind: &SchemeKind,
    faults: usize,
    pattern: Pattern,
    rates: &[f64],
    windows: SweepWindows,
    seed: u64,
) -> Vec<SweepPoint> {
    let workers = sweep_workers().min(rates.len()).max(1);
    if workers == 1 {
        return rates
            .iter()
            .map(|&r| run_point(spec, cfg, kind, faults, pattern, r, windows, seed))
            .collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<Mutex<Option<SweepPoint>>> = rates.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let next = &next;
            let results = &results;
            s.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&r) = rates.get(i) else { break };
                let p = run_point(spec, cfg, kind, faults, pattern, r, windows, seed);
                *results[i].lock().unwrap() = Some(p);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no sweep worker panicked")
                .expect("every rate simulated")
        })
        .collect()
}

/// Latency ceiling above which a point counts as saturated (the paper's
/// plots clip at 100 cycles).
pub const SATURATION_LATENCY: f64 = 100.0;

/// Extracts the saturation throughput from a sweep: the highest delivered
/// throughput among points whose total latency stays below
/// [`SATURATION_LATENCY`] (falling back to the overall max).
pub fn saturation_throughput(points: &[SweepPoint]) -> f64 {
    let below: Vec<&SweepPoint> = points
        .iter()
        .filter(|p| p.total_latency < SATURATION_LATENCY && p.packets_ejected > 0)
        .collect();
    let pool: Box<dyn Iterator<Item = &SweepPoint>> = if below.is_empty() {
        Box::new(points.iter())
    } else {
        Box::new(below.into_iter())
    };
    pool.map(|p| p.throughput).fold(0.0, f64::max)
}

/// Mean pre-saturation latency of a sweep (used for the paper's "reduces
/// latency by N%" comparisons).
pub fn presaturation_latency(points: &[SweepPoint]) -> f64 {
    let sel: Vec<f64> = points
        .iter()
        .filter(|p| p.total_latency < SATURATION_LATENCY && p.packets_ejected > 0)
        .map(|p| p.total_latency)
        .collect();
    if sel.is_empty() {
        f64::NAN
    } else {
        sel.iter().sum::<f64>() / sel.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ChipletSystemSpec {
        ChipletSystemSpec::baseline()
    }

    #[test]
    fn low_load_point_is_unsaturated_for_all_schemes() {
        for kind in SchemeKind::evaluated() {
            let p = run_point(
                &spec(),
                &NocConfig::default(),
                &kind,
                0,
                Pattern::UniformRandom,
                0.02,
                SweepWindows::quick(),
                1,
            );
            assert!(!p.deadlocked, "{}", kind.label());
            assert!(
                p.packets_ejected > 100,
                "{} ejected {}",
                kind.label(),
                p.packets_ejected
            );
            assert!(
                p.total_latency < SATURATION_LATENCY,
                "{} latency {}",
                kind.label(),
                p.total_latency
            );
        }
    }

    #[test]
    fn throughput_tracks_offered_load_below_saturation() {
        let p = run_point(
            &spec(),
            &NocConfig::default(),
            &SchemeKind::Upp(UppConfig::default()),
            0,
            Pattern::UniformRandom,
            0.04,
            SweepWindows::quick(),
            2,
        );
        assert!(
            (p.throughput - 0.04).abs() < 0.012,
            "delivered {} vs offered 0.04",
            p.throughput
        );
    }

    #[test]
    fn saturation_extraction() {
        let mk = |rate, lat, thr| SweepPoint {
            rate,
            net_latency: lat,
            queue_latency: 0.0,
            total_latency: lat,
            throughput: thr,
            packets_ejected: 100,
            upward_packets: 0,
            control_hops: 0,
            p50: lat,
            p95: lat,
            p99: lat,
            p999: lat,
            deadlocked: false,
            alerts: AlertCounts::default(),
        };
        let pts = vec![
            mk(0.02, 30.0, 0.02),
            mk(0.06, 45.0, 0.06),
            mk(0.1, 250.0, 0.07),
        ];
        assert!((saturation_throughput(&pts) - 0.06).abs() < 1e-12);
        let lat = presaturation_latency(&pts);
        assert!((lat - 37.5).abs() < 1e-9);
    }

    #[test]
    fn faulty_builds_use_table_routing_and_run() {
        let p = run_point(
            &spec(),
            &NocConfig::default(),
            &SchemeKind::Upp(UppConfig::default()),
            5,
            Pattern::UniformRandom,
            0.02,
            SweepWindows::quick(),
            3,
        );
        assert!(!p.deadlocked);
        assert!(p.packets_ejected > 50);
    }
}
