//! CLI entry point regenerating the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--jobs N] [--shards N] [--journal FILE [--resume]] [--out DIR] \
//!       [--watch] [--watch-out FILE] [--watch-capture-dir DIR] <id>... | all | list
//! ```
//!
//! `--jobs N` bounds the sweep engine's worker pool (default: all hardware
//! threads); results are bit-identical for every N. `--journal FILE` streams
//! finished sweep points to a JSONL file as they complete; adding `--resume`
//! re-opens that journal and skips every already-recorded point, so an
//! interrupted `repro all` can pick up where it left off.
//!
//! Every sweep point runs the online health monitor and its journal row
//! carries per-detector alert counts. `--watch` additionally echoes a
//! per-point summary to stderr as alerting points complete;
//! `--watch-out FILE` streams each point's `upp-alerts/v1` lines (grouped
//! under `{"upp_alerts_point":1,...}` context lines; group order follows
//! completion order, so it depends on `--jobs`); `--watch-capture-dir DIR`
//! auto-captures a forensics bundle into a per-point subdirectory when a
//! point crosses critical. Journal-resumed points are not re-run and thus
//! contribute no alert lines.

use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut quick = false;
    let mut out_dir = PathBuf::from("results");
    let mut journal: Option<PathBuf> = None;
    let mut resume = false;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--resume" => resume = true,
            "--jobs" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--jobs needs a positive integer");
                        std::process::exit(2);
                    });
                upp_bench::sweep::set_default_jobs(n);
            }
            "--shards" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--shards needs a positive integer");
                        std::process::exit(2);
                    });
                upp_noc::shard::set_default_shards(n);
            }
            "--journal" => {
                journal = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--journal needs a file path");
                    std::process::exit(2);
                })));
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }));
            }
            "--watch" => upp_workloads::runner::set_watch_echo(true),
            "--watch-out" => {
                let path = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--watch-out needs a file path");
                    std::process::exit(2);
                }));
                if let Err(e) = upp_workloads::runner::set_watch_out(&path) {
                    eprintln!("cannot open {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
            "--watch-capture-dir" => {
                let dir = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--watch-capture-dir needs a directory");
                    std::process::exit(2);
                }));
                upp_workloads::runner::set_watch_capture_dir(&dir);
            }
            "list" => {
                for id in upp_bench::ALL_IDS {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(upp_bench::ALL_IDS.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => ids.push(other.to_string()),
        }
    }
    if resume && journal.is_none() {
        eprintln!("--resume needs --journal FILE");
        std::process::exit(2);
    }
    // No fingerprint: a repro journal is shared across experiments, whose
    // full config (windows, rates, scheme) is already baked into the point
    // keys — stale reuse is impossible there.
    match upp_bench::sweep::configure_journal(journal.clone(), resume, None) {
        Ok(n) => {
            if let Some(j) = &journal {
                if resume {
                    eprintln!(
                        "[journal] resuming from {} ({n} points recorded)",
                        j.display()
                    );
                } else {
                    eprintln!("[journal] streaming points to {}", j.display());
                }
            }
        }
        Err(e) => {
            eprintln!("cannot open journal: {e}");
            std::process::exit(2);
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: repro [--quick] [--jobs N] [--shards N] [--journal FILE [--resume]] [--out DIR] [--watch] [--watch-out FILE] [--watch-capture-dir DIR] <id>... | all | list\n  ids: {}",
            upp_bench::ALL_IDS.join(", ")
        );
        std::process::exit(2);
    }
    for id in ids {
        let t0 = Instant::now();
        match upp_bench::run(&id, quick) {
            Some(result) => {
                println!("\n{}", result.markdown);
                match result.write_json(&out_dir) {
                    Ok(path) => eprintln!(
                        "[{id}] done in {:.1?}; data -> {}",
                        t0.elapsed(),
                        path.display()
                    ),
                    Err(e) => eprintln!("[{id}] done, but writing JSON failed: {e}"),
                }
            }
            None => {
                eprintln!("unknown experiment id {id}; try `repro list`");
                std::process::exit(2);
            }
        }
    }
}
