//! White-box tests of the control-plane datapath: forward signals record
//! circuits and reach NI inboxes, reverse signals retrace the recorded path,
//! and a manually-orchestrated popup moves a packet through the bypass path
//! into a reserved ejection entry — i.e. the raw mechanisms `upp-core`
//! drives, exercised without the UPP policy.

use std::sync::Arc;
use upp_noc::config::NocConfig;
use upp_noc::control::{ControlClass, ControlMsg, ControlRoute};
use upp_noc::ids::{NodeId, Port, VnetId};
use upp_noc::network::Network;
use upp_noc::ni::ConsumePolicy;
use upp_noc::routing::ChipletRouting;
use upp_noc::scheme::NoScheme;
use upp_noc::sim::System;
use upp_noc::topology::ChipletSystemSpec;

fn sys() -> System {
    let topo = ChipletSystemSpec::baseline().build(0).unwrap();
    let net = Network::new(
        NocConfig::default(),
        topo,
        Arc::new(ChipletRouting::xy()),
        ConsumePolicy::Immediate { latency: 1 },
        9,
    );
    System::new(net, Box::new(NoScheme))
}

/// An interposer router with an Up link and a destination inside the chiplet
/// above it, plus the routing plan between them.
fn popup_endpoints(sysm: &System) -> (NodeId, NodeId) {
    let topo = sysm.net().topo();
    let origin = topo
        .interposer_routers()
        .iter()
        .copied()
        .find(|&n| topo.above(n).is_some())
        .expect("baseline has vertical links");
    let boundary = topo.above(origin).unwrap();
    let chiplet = topo.chiplet_of(boundary).unwrap();
    // A destination bound to this boundary router, at distance > 0.
    let dest = topo
        .chiplet(chiplet)
        .routers
        .iter()
        .copied()
        .find(|&r| r != boundary && topo.bound_boundary(r) == boundary)
        .expect("some router binds to this boundary");
    (origin, dest)
}

fn req_msg(sysm: &System, origin: NodeId, dest: NodeId, vnet: VnetId) -> ControlMsg {
    ControlMsg {
        class: ControlClass::ReqLike,
        bits: 0xABC,
        vnet,
        routing: ControlRoute::Forward,
        route: sysm.net().plan_route(origin, dest),
        origin,
        circuit_key: dest,
        record_circuit: true,
        deliver_to_ni: true,
    }
}

#[test]
fn forward_signal_reaches_ni_and_records_circuits() {
    let mut s = sys();
    let (origin, dest) = popup_endpoints(&s);
    let vnet = VnetId(1);
    let msg = req_msg(&s, origin, dest, vnet);
    s.net_mut().send_control(origin, msg);
    // Let it traverse: a handful of hops at 3 cycles each.
    s.run(40);
    let mut inbox = Vec::new();
    s.net_mut().drain_ni_inbox(dest, &mut inbox);
    assert_eq!(
        inbox.len(),
        1,
        "req must be delivered to the destination NI"
    );
    assert_eq!(inbox[0].msg.bits, 0xABC);
    // Circuits recorded along the whole path from the boundary router to the
    // destination (the origin's own hop is the Up link itself).
    let topo = s.net().topo();
    let routing = Arc::clone(s.net().routing());
    let route = s.net().plan_route(origin, dest);
    let mut cur = topo.above(origin).unwrap();
    let mut in_port = Port::Down;
    loop {
        let entry = s
            .net()
            .router(cur)
            .circuit(vnet, dest)
            .unwrap_or_else(|| panic!("no circuit recorded at {cur}"));
        assert_eq!(entry.in_port, in_port, "circuit input side at {cur}");
        if cur == dest {
            assert_eq!(
                entry.out_port,
                Port::Local,
                "destination circuit ends at the NI"
            );
            break;
        }
        let expected = routing.route(topo, cur, in_port, &route);
        assert_eq!(entry.out_port, expected, "circuit output side at {cur}");
        cur = topo.neighbor(cur, entry.out_port).unwrap();
        in_port = entry.out_port.opposite();
    }
}

#[test]
fn reverse_signal_retraces_the_recorded_path() {
    let mut s = sys();
    let (origin, dest) = popup_endpoints(&s);
    let vnet = VnetId(0);
    let msg = req_msg(&s, origin, dest, vnet);
    s.net_mut().send_control(origin, msg);
    s.run(40);
    let mut inbox = Vec::new();
    s.net_mut().drain_ni_inbox(dest, &mut inbox);
    assert_eq!(inbox.len(), 1);
    // Now send the ack back along the reverse path.
    let ack = ControlMsg {
        class: ControlClass::AckLike,
        bits: 0x5,
        vnet,
        routing: ControlRoute::Reverse,
        route: upp_noc::packet::RouteInfo::intra(origin),
        origin: dest,
        circuit_key: dest,
        record_circuit: false,
        deliver_to_ni: false,
    };
    s.net_mut().send_control(dest, ack);
    s.run(40);
    let mut inbox = Vec::new();
    s.net_mut().drain_router_inbox(origin, &mut inbox);
    assert_eq!(
        inbox.len(),
        1,
        "ack must terminate at the origin interposer router"
    );
    assert_eq!(inbox[0].msg.bits, 0x5);
}

#[test]
fn reverse_signal_without_circuit_is_dropped() {
    let mut s = sys();
    let (origin, dest) = popup_endpoints(&s);
    let ack = ControlMsg {
        class: ControlClass::AckLike,
        bits: 0x5,
        vnet: VnetId(2),
        routing: ControlRoute::Reverse,
        route: upp_noc::packet::RouteInfo::intra(origin),
        origin: dest,
        circuit_key: dest,
        record_circuit: false,
        deliver_to_ni: false,
    };
    s.net_mut().send_control(dest, ack);
    s.run(40);
    let mut inbox = Vec::new();
    s.net_mut().drain_router_inbox(origin, &mut inbox);
    assert!(inbox.is_empty(), "orphan acks are dropped");
}

#[test]
fn manual_popup_delivers_through_bypass_into_reserved_entry() {
    let mut s = sys();
    let (origin, dest) = popup_endpoints(&s);
    let vnet = VnetId(2);

    // Inject a data packet from a remote chiplet so it ascends at `origin`.
    let topo = s.net().topo();
    let far_chiplet = topo
        .chiplets()
        .iter()
        .find(|c| Some(c.id) != topo.chiplet_of(dest))
        .unwrap();
    let src = far_chiplet.routers[0];
    s.send(src, dest, vnet, 5).unwrap();

    // Walk it until its head flit is buffered at the origin interposer
    // router wanting Up (freeze nothing yet; low load so it would normally
    // just proceed — freeze the VC the moment we see it).
    let mut cand = None;
    for _ in 0..200 {
        s.step();
        let c = s.net().upward_candidates(origin, vnet);
        if let Some(&c0) = c.first() {
            s.net_mut()
                .router_mut(origin)
                .set_vc_frozen(c0.in_port, c0.vc_flat, true);
            cand = Some(c0);
            break;
        }
    }
    let cand = cand.expect("packet must stall upward at the origin at least one cycle");
    assert_eq!(cand.dest, dest);

    // Protocol: req -> reservation -> pops through the bypass.
    let msg = req_msg(&s, origin, dest, vnet);
    s.net_mut().send_control(origin, msg);
    s.run(40);
    let mut inbox = Vec::new();
    s.net_mut().drain_ni_inbox(dest, &mut inbox);
    assert_eq!(inbox.len(), 1);
    assert!(
        s.net_mut().try_reserve_ejection(dest, vnet),
        "entry reserves"
    );

    let mut popped = 0;
    for _ in 0..200 {
        if s.net().bypass_pending(origin) <= 1 {
            if let Some(f) = s
                .net_mut()
                .pop_upward_flit(origin, cand.in_port, cand.vc_flat)
            {
                popped += 1;
                if f.kind.is_tail() {
                    break;
                }
            }
        }
        s.step();
    }
    assert_eq!(popped, 5, "all five flits popped");
    // Let the bypass deliver the tail.
    for _ in 0..60 {
        s.step();
    }
    let stats = s.net().stats();
    assert_eq!(stats.packets_ejected, 1, "the popped packet is delivered");
    assert!(stats.bypass_hops >= 5, "flits crossed via the bypass path");
    assert_eq!(
        s.net().ni(dest).reservations(vnet),
        0,
        "the upward head consumed the reservation"
    );
}
