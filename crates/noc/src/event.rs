//! Staged link events.
//!
//! Every cross-component effect — flit transfers, credit returns, control
//! messages — is staged through a calendar keyed by arrival cycle, so the
//! order in which routers are processed within a cycle can never matter.

use crate::control::ControlMsg;
use crate::ids::{NodeId, Port};
use crate::packet::Flit;

/// A staged delivery.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A flit arrives at a router input port.
    FlitArrive {
        /// Receiving router.
        node: NodeId,
        /// Input port it arrives on.
        in_port: Port,
        /// Flat index of the input VC the sender allocated (ignored for
        /// upward bypass flits).
        vc_flat: usize,
        /// The flit.
        flit: Flit,
    },
    /// A credit returns to a router output VC.
    CreditArrive {
        /// Router receiving the credit.
        node: NodeId,
        /// Output port the credit belongs to.
        out_port: Port,
        /// Flat VC index.
        vc_flat: usize,
        /// True when the downstream VC was freed (tail drained).
        is_free: bool,
    },
    /// A credit returns to an NI injection VC.
    NiCreditArrive {
        /// The NI's node.
        node: NodeId,
        /// Flat VC index toward the router's Local input port.
        vc_flat: usize,
        /// True when the router's Local input VC was freed.
        is_free: bool,
    },
    /// A flit is delivered to an NI through the router's Local output port.
    NiFlitArrive {
        /// The NI's node.
        node: NodeId,
        /// The flit.
        flit: Flit,
    },
    /// A control message arrives at a router.
    ControlArrive {
        /// Receiving router.
        node: NodeId,
        /// Input port.
        in_port: Port,
        /// The message.
        msg: ControlMsg,
    },
    /// A control message is delivered to an NI inbox.
    NiControlArrive {
        /// The NI's node.
        node: NodeId,
        /// Port the message arrived on at the final router.
        in_port: Port,
        /// The message.
        msg: ControlMsg,
    },
}

/// The component an [`Event`] delivers into — what the active-set scheduler
/// must wake when the event arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeTarget {
    /// The event mutates a router.
    Router(NodeId),
    /// The event mutates an NI.
    Ni(NodeId),
}

impl Event {
    /// The component this event delivers into.
    ///
    /// Every delivery wakes its target, even credit returns that can never
    /// create work on their own: a uniform rule keeps the scheduler's
    /// conservative invariant ("anything an event touched is scheduled next
    /// cycle") trivially audit-able, at the cost of at most one extra no-op
    /// step per credit tail.
    pub fn wake_target(&self) -> WakeTarget {
        match *self {
            Event::FlitArrive { node, .. }
            | Event::CreditArrive { node, .. }
            | Event::ControlArrive { node, .. } => WakeTarget::Router(node),
            Event::NiCreditArrive { node, .. }
            | Event::NiFlitArrive { node, .. }
            | Event::NiControlArrive { node, .. } => WakeTarget::Ni(node),
        }
    }
}
