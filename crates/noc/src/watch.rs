//! Online health monitoring: typed anomaly detectors over the epoch
//! telemetry stream, evaluated in-process while a run executes.
//!
//! The repo can *record* everything (trace flight recorder, latency
//! attribution, the obs registry), but recording is post-mortem: a popup
//! storm or a permit-queue runaway is only discovered by a human reading
//! epoch JSONL after the fact. A [`Watcher`] closes that loop. The driver
//! feeds it at fixed cycle intervals; each feed reads the *cumulative*
//! counters of [`crate::stats::NetStats`] and the [`crate::obs`] registry
//! (never the epoch-delta machinery, so it composes with `--obs-every`
//! epoch cuts), differences them against the previous feed, and evaluates
//! one trigger predicate per [`Detector`]. A hysteresis state machine
//! turns raw per-epoch triggers into a small number of meaningful
//! transitions — raise to warning, escalate to critical, clear — emitted
//! as [`Alert`]s in the `upp-alerts/v1` JSONL schema.
//!
//! # Determinism
//!
//! Detectors are cycle-indexed and integer-valued: no wall clock, no
//! floats in the exported bytes. Every input the watcher reads (stats
//! counters, obs counters/gauges/histogram counts, `in_flight`, per-link
//! flit totals) is proven byte-identical across the serial and sharded
//! kernels and across the active-set scheduler and the `UPP_ALWAYS_TICK=1`
//! reference kernel by the PR 5/PR 8 equivalence suites — so the alert
//! stream is too (pinned by `watch_golden.rs` and the `shard_equiv` /
//! `scheduler_equiv` watch properties). Notably the *shard imbalance*
//! detector does not read shard-runtime state (which exists only on the
//! sharded kernel): it aggregates per-link flit deltas by chiplet — the
//! unit shards are carved from — so the same spatial skew is visible, with
//! identical bytes, on every kernel.
//!
//! Like obs and trace, the watcher is strictly read-only and costs nothing
//! when absent: it is driver-owned state, not network state, and feeds
//! happen only at epoch boundaries.

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::ids::{Cycle, Port};
use crate::network::Network;

/// Schema tag stamped into the alert-stream header and every reader's
/// validation check.
pub const ALERTS_SCHEMA: &str = "upp-alerts/v1";

/// Number of detectors (the length of [`Detector::ALL`]).
pub const NUM_DETECTORS: usize = 7;

/// The typed anomaly detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Detector {
    /// Delivered flits per epoch dropped far below the trailing-window
    /// mean while traffic is still in flight.
    ThroughputCollapse,
    /// Nothing entered and nothing left the network for a whole epoch
    /// while packets are stuck in flight.
    InjectionStarvation,
    /// Popup recoveries completing at an abnormal rate (UPP distress:
    /// the network keeps wedging and recovering).
    PopupStorm,
    /// Watchdog expiries growing epoch over epoch (detection churn).
    WatchdogCascade,
    /// The UPP circuit table holding an abnormal number of live entries.
    CircuitSaturation,
    /// The remote-control permit queue backing up.
    PermitQueueRunaway,
    /// Per-chiplet link-flit skew: one chiplet doing a large multiple of
    /// the mean work (the spatial imbalance that starves sharded kernels).
    ShardImbalance,
}

impl Detector {
    /// All detectors, in stable reporting order.
    pub const ALL: [Detector; NUM_DETECTORS] = [
        Detector::ThroughputCollapse,
        Detector::InjectionStarvation,
        Detector::PopupStorm,
        Detector::WatchdogCascade,
        Detector::CircuitSaturation,
        Detector::PermitQueueRunaway,
        Detector::ShardImbalance,
    ];

    /// Stable identifier used in the JSONL stream and journal keys.
    pub fn name(self) -> &'static str {
        match self {
            Detector::ThroughputCollapse => "throughput_collapse",
            Detector::InjectionStarvation => "injection_starvation",
            Detector::PopupStorm => "popup_storm",
            Detector::WatchdogCascade => "watchdog_cascade",
            Detector::CircuitSaturation => "circuit_saturation",
            Detector::PermitQueueRunaway => "permit_queue_runaway",
            Detector::ShardImbalance => "shard_imbalance",
        }
    }

    /// The metric each detector triggers on, named in every alert line.
    pub fn metric(self) -> &'static str {
        match self {
            Detector::ThroughputCollapse => "flits_per_epoch",
            Detector::InjectionStarvation => "in_flight",
            Detector::PopupStorm => "popups_per_epoch",
            Detector::WatchdogCascade => "expiries_per_epoch",
            Detector::CircuitSaturation => "circuit_entries",
            Detector::PermitQueueRunaway => "permit_queue_depth",
            Detector::ShardImbalance => "chiplet_skew_milli",
        }
    }

    /// Position in [`Detector::ALL`].
    pub fn index(self) -> usize {
        Detector::ALL
            .iter()
            .position(|&d| d == self)
            .expect("detector in ALL")
    }
}

/// Alert severity. `Info` is used only for clear transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Recovery back to healthy.
    Info,
    /// Sustained trigger.
    Warning,
    /// Trigger sustained well past the warning point.
    Critical,
}

impl Severity {
    /// Stable identifier used in the JSONL stream.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// Which hysteresis transition an alert reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// First crossing into warning.
    Raise,
    /// Escalation from warning to critical.
    Escalate,
    /// Return to healthy after a raised span.
    Clear,
}

impl AlertKind {
    /// Stable identifier used in the JSONL stream.
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::Raise => "raise",
            AlertKind::Escalate => "escalate",
            AlertKind::Clear => "clear",
        }
    }
}

/// One emitted alert: a hysteresis transition with the triggering values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// Which detector transitioned.
    pub detector: Detector,
    /// Which transition.
    pub kind: AlertKind,
    /// Severity after the transition.
    pub severity: Severity,
    /// Cycle of the first epoch of the triggering span.
    pub from_cycle: Cycle,
    /// Cycle of the epoch emitting the alert.
    pub at_cycle: Cycle,
    /// The metric value at the emitting epoch (integer by construction).
    pub value: u64,
    /// The threshold the value was compared against.
    pub threshold: u64,
}

impl Alert {
    /// Renders the alert as one deterministic `upp-alerts/v1` JSONL line
    /// (no trailing newline). All fields are integers or fixed strings, so
    /// the bytes are identical across platforms, kernels and schedulers.
    pub fn jsonl(&self) -> String {
        format!(
            "{{\"detector\":\"{}\",\"event\":\"{}\",\"severity\":\"{}\",\"metric\":\"{}\",\
             \"value\":{},\"threshold\":{},\"from_cycle\":{},\"at_cycle\":{}}}",
            self.detector.name(),
            self.kind.name(),
            self.severity.name(),
            self.detector.metric(),
            self.value,
            self.threshold,
            self.from_cycle,
            self.at_cycle
        )
    }
}

/// Header line for an `upp-alerts/v1` JSONL stream.
pub fn alerts_header_json(every: u64) -> String {
    format!("{{\"upp_alerts\":1,\"schema\":\"{ALERTS_SCHEMA}\",\"every\":{every}}}")
}

/// Detector thresholds and hysteresis tuning. Everything is in cycles,
/// epochs or integer metric units — no wall clock, no floats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchConfig {
    /// Cycles between evaluations (the epoch length).
    pub every: u64,
    /// Trailing epochs forming the throughput baseline window.
    pub window: usize,
    /// Consecutive triggering epochs before a warning is raised.
    pub raise_after: u32,
    /// Further consecutive triggering epochs (past the raise point) before
    /// the warning escalates to critical.
    pub critical_after: u32,
    /// Consecutive clean epochs before a raised detector clears.
    pub clear_after: u32,
    /// Collapse triggers when delivered flits fall below this percentage
    /// of the trailing-window mean.
    pub collapse_pct: u64,
    /// ... and only when that mean is at least this many flits/epoch
    /// (an idle or draining network is not a collapse).
    pub collapse_min_mean: u64,
    /// Starvation triggers only with at least this many packets stuck.
    pub starvation_min_inflight: u64,
    /// Popup-storm trigger: popups completed per epoch.
    pub popup_storm_rate: u64,
    /// Watchdog-cascade trigger: expiries per epoch.
    pub watchdog_rate: u64,
    /// Circuit-saturation trigger: live circuit-table entries.
    pub circuit_entries: u64,
    /// Permit-runaway trigger: remote-control permit-queue depth.
    pub permit_queue_depth: u64,
    /// Imbalance trigger: busiest chiplet at this multiple (milli) of the
    /// mean per-chiplet link-flit delta.
    pub imbalance_ratio_milli: u64,
    /// ... and only when the epoch moved at least this many link flits.
    pub imbalance_min_flits: u64,
}

impl Default for WatchConfig {
    fn default() -> Self {
        Self {
            every: 200,
            window: 8,
            raise_after: 2,
            critical_after: 2,
            clear_after: 4,
            collapse_pct: 25,
            collapse_min_mean: 64,
            starvation_min_inflight: 1,
            popup_storm_rate: 40,
            watchdog_rate: 25,
            circuit_entries: 4096,
            permit_queue_depth: 1024,
            imbalance_ratio_milli: 4000,
            imbalance_min_flits: 1024,
        }
    }
}

/// Per-detector hysteresis state.
#[derive(Debug, Clone, Copy)]
struct DetState {
    severity: Severity,
    hits: u32,
    clean: u32,
    span_start: Cycle,
}

impl DetState {
    fn new() -> Self {
        Self {
            severity: Severity::Info,
            hits: 0,
            clean: 0,
            span_start: 0,
        }
    }
}

/// What one feed produced.
#[derive(Debug, Clone, Default)]
pub struct WatchTick {
    /// Alerts emitted this epoch (hysteresis transitions only).
    pub alerts: Vec<Alert>,
    /// True when a detector crossed into critical this epoch and no
    /// forensics capture has been requested yet this run. The driver
    /// decides what capture means (see [`capture_forensics`]).
    pub capture: bool,
}

/// The online health monitor. Driver-owned; see the module docs.
#[derive(Debug)]
pub struct Watcher {
    cfg: WatchConfig,
    states: [DetState; NUM_DETECTORS],
    counts: [u64; NUM_DETECTORS],
    alerts: Vec<Alert>,
    captured: bool,
    armed: bool,
    // Cumulative baselines from the previous feed.
    last_flits_ejected: u64,
    last_packets_created: u64,
    last_popups: u64,
    last_watchdog: u64,
    last_chiplet_flits: Vec<u64>,
    // Trailing delivered-per-epoch window (baseline for collapse).
    delivered_window: VecDeque<u64>,
}

impl Watcher {
    /// Creates a watcher with the given tuning. Call [`Watcher::arm`]
    /// before the first feed.
    pub fn new(cfg: WatchConfig) -> Self {
        Self {
            cfg,
            states: [DetState::new(); NUM_DETECTORS],
            counts: [0; NUM_DETECTORS],
            alerts: Vec::new(),
            captured: false,
            armed: false,
            last_flits_ejected: 0,
            last_packets_created: 0,
            last_popups: 0,
            last_watchdog: 0,
            last_chiplet_flits: Vec::new(),
            delivered_window: VecDeque::new(),
        }
    }

    /// The tuning in effect.
    pub fn config(&self) -> &WatchConfig {
        &self.cfg
    }

    /// Captures the cumulative baselines so the first feed differences
    /// against the current state rather than zero (important when the
    /// watcher is armed after a warmup window or a stats reset).
    pub fn arm(&mut self, net: &Network) {
        self.last_flits_ejected = net.stats().flits_ejected;
        self.last_packets_created = net.stats().packets_created;
        self.last_popups = popup_count(net);
        self.last_watchdog = net.obs().counter_value("upp.watchdog.expired_cycles");
        self.last_chiplet_flits = chiplet_flits(net);
        self.armed = true;
    }

    /// Evaluates one epoch. Call `System::observe()` first so sampled
    /// gauges (permit queues, circuit tables, stage occupancy) are fresh.
    pub fn feed(&mut self, net: &Network) -> WatchTick {
        if !self.armed {
            self.arm(net);
            return WatchTick::default();
        }
        let now = net.cycle();
        let stats = net.stats();
        let in_flight = net.in_flight() as u64;

        let delivered = stats.flits_ejected - self.last_flits_ejected;
        self.last_flits_ejected = stats.flits_ejected;
        let created = stats.packets_created - self.last_packets_created;
        self.last_packets_created = stats.packets_created;
        let popups_now = popup_count(net);
        let popups = popups_now - self.last_popups;
        self.last_popups = popups_now;
        let watchdog_now = net.obs().counter_value("upp.watchdog.expired_cycles");
        let expiries = watchdog_now - self.last_watchdog;
        self.last_watchdog = watchdog_now;
        let circuit = net.obs().gauge_value("circuit.entries").0;
        let permits = net.obs().gauge_value("rc.permit_queue.depth").0;

        // Trailing-window baseline for collapse: the mean of the window
        // *before* this epoch.
        let window_sum: u64 = self.delivered_window.iter().sum();
        let window_full = self.delivered_window.len() == self.cfg.window;
        let window_mean = if window_full {
            window_sum / self.cfg.window as u64
        } else {
            0
        };
        self.delivered_window.push_back(delivered);
        if self.delivered_window.len() > self.cfg.window {
            self.delivered_window.pop_front();
        }
        let collapse_threshold = window_mean * self.cfg.collapse_pct / 100;

        // Per-chiplet link-flit skew, kernel-invariant (see module docs).
        let flits = chiplet_flits(net);
        let chiplets = flits.len() as u64;
        let mut skew_total = 0u64;
        let mut skew_max = 0u64;
        for (now_f, last_f) in flits.iter().zip(self.last_chiplet_flits.iter()) {
            let d = now_f - last_f;
            skew_total += d;
            skew_max = skew_max.max(d);
        }
        self.last_chiplet_flits = flits;
        let skew_milli = (skew_max * 1000 * chiplets)
            .checked_div(skew_total)
            .unwrap_or(0);

        // (trigger, value, threshold) per detector, in ALL order.
        let evals: [(bool, u64, u64); NUM_DETECTORS] = [
            (
                window_full
                    && in_flight > 0
                    && window_mean >= self.cfg.collapse_min_mean
                    && delivered < collapse_threshold,
                delivered,
                collapse_threshold,
            ),
            (
                created == 0 && delivered == 0 && in_flight >= self.cfg.starvation_min_inflight,
                in_flight,
                self.cfg.starvation_min_inflight,
            ),
            (
                popups >= self.cfg.popup_storm_rate,
                popups,
                self.cfg.popup_storm_rate,
            ),
            (
                expiries >= self.cfg.watchdog_rate,
                expiries,
                self.cfg.watchdog_rate,
            ),
            (
                circuit >= self.cfg.circuit_entries,
                circuit,
                self.cfg.circuit_entries,
            ),
            (
                permits >= self.cfg.permit_queue_depth,
                permits,
                self.cfg.permit_queue_depth,
            ),
            (
                chiplets > 1
                    && skew_total >= self.cfg.imbalance_min_flits
                    && skew_milli >= self.cfg.imbalance_ratio_milli,
                skew_milli,
                self.cfg.imbalance_ratio_milli,
            ),
        ];

        let mut tick = WatchTick::default();
        for (i, &(trig, value, threshold)) in evals.iter().enumerate() {
            let st = &mut self.states[i];
            let detector = Detector::ALL[i];
            if trig {
                if st.hits == 0 {
                    st.span_start = now;
                }
                st.hits += 1;
                st.clean = 0;
                let transition = if st.severity == Severity::Info && st.hits >= self.cfg.raise_after
                {
                    st.severity = Severity::Warning;
                    Some((AlertKind::Raise, Severity::Warning))
                } else if st.severity == Severity::Warning
                    && st.hits >= self.cfg.raise_after + self.cfg.critical_after
                {
                    st.severity = Severity::Critical;
                    Some((AlertKind::Escalate, Severity::Critical))
                } else {
                    None
                };
                if let Some((kind, severity)) = transition {
                    tick.alerts.push(Alert {
                        detector,
                        kind,
                        severity,
                        from_cycle: st.span_start,
                        at_cycle: now,
                        value,
                        threshold,
                    });
                    self.counts[i] += 1;
                    if severity == Severity::Critical && !self.captured {
                        self.captured = true;
                        tick.capture = true;
                    }
                }
            } else {
                st.hits = 0;
                if st.severity > Severity::Info {
                    st.clean += 1;
                    if st.clean >= self.cfg.clear_after {
                        let alert = Alert {
                            detector,
                            kind: AlertKind::Clear,
                            severity: Severity::Info,
                            from_cycle: st.span_start,
                            at_cycle: now,
                            value,
                            threshold,
                        };
                        tick.alerts.push(alert);
                        *st = DetState::new();
                    }
                } else {
                    st.clean = 0;
                }
            }
        }
        self.alerts.extend(tick.alerts.iter().cloned());
        tick
    }

    /// Every alert emitted so far, in emission order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Raised-alert count (raise + escalate; clears excluded) per
    /// detector, in [`Detector::ALL`] order.
    pub fn alert_counts(&self) -> [u64; NUM_DETECTORS] {
        self.counts
    }

    /// Total raised alerts across all detectors.
    pub fn total_raised(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Raised counts as one deterministic JSON object: the total plus one
    /// key per detector, in [`Detector::ALL`] order (for embedding in
    /// driver `--json` payloads).
    pub fn counts_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("{{\"alerts_raised\": {}", self.total_raised());
        for (i, d) in Detector::ALL.iter().enumerate() {
            let _ = write!(s, ", \"{}\": {}", d.name(), self.counts[i]);
        }
        s.push('}');
        s
    }

    /// True when any detector is currently at or above warning.
    pub fn any_raised(&self) -> bool {
        self.states.iter().any(|s| s.severity > Severity::Info)
    }
}

/// Cumulative popup completions (the recovery-latency histogram's sample
/// count); 0 until UPP registers its metrics.
fn popup_count(net: &Network) -> u64 {
    net.obs()
        .histogram("upp.popup.recovery_cycles")
        .map_or(0, |h| h.count())
}

/// Cumulative link flits aggregated per chiplet (interposer traffic is
/// deliberately excluded: shards are carved from chiplet blocks, so
/// chiplet-granular skew is the kernel-invariant proxy for shard skew).
fn chiplet_flits(net: &Network) -> Vec<u64> {
    let stats = net.stats();
    net.topo()
        .chiplets()
        .iter()
        .map(|c| {
            c.routers
                .iter()
                .map(|&n| {
                    Port::ALL
                        .iter()
                        .map(|&p| stats.link_flit_count(n, p))
                        .sum::<u64>()
                })
                .sum()
        })
        .collect()
}

/// Files written by [`capture_forensics`].
#[derive(Debug, Clone)]
pub struct ForensicsBundle {
    /// Paths written, in order.
    pub files: Vec<PathBuf>,
}

/// Captures a forensics bundle into `dir` (created if needed): the stall
/// report, the buffered tail of the trace ring (empty when no in-memory
/// tracer is armed), the full obs summary (when enabled) and a small meta
/// file. Drivers call this when a [`WatchTick`] requests capture, so the
/// evidence exists even though the user never passed `--stall-report` or
/// `--trace`.
///
/// # Errors
///
/// Returns the first I/O error; earlier files may already be written.
pub fn capture_forensics(
    sys: &mut crate::sim::System,
    dir: &Path,
    at: Cycle,
) -> std::io::Result<ForensicsBundle> {
    std::fs::create_dir_all(dir)?;
    let mut files = Vec::new();
    let mut write = |name: &str, contents: String| -> std::io::Result<()> {
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path)?;
        f.write_all(contents.as_bytes())?;
        files.push(path);
        Ok(())
    };
    write(
        "meta.json",
        format!("{{\"upp_watch_capture\":1,\"schema\":\"{ALERTS_SCHEMA}\",\"cycle\":{at}}}\n"),
    )?;
    write("stall_report.txt", sys.stall_report().render_text())?;
    let mut tail = String::new();
    for ev in sys.net().tracer().events() {
        tail.push_str(&ev.jsonl());
        tail.push('\n');
    }
    write("trace_tail.jsonl", tail)?;
    if sys.net().obs().is_enabled() {
        let cycle = sys.net().cycle();
        let summary = sys.net().obs().summary_json(cycle);
        write("obs_summary.json", summary + "\n")?;
    }
    Ok(ForensicsBundle { files })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WatchConfig {
        WatchConfig::default()
    }

    #[test]
    fn detector_names_and_metrics_are_stable() {
        let names: Vec<&str> = Detector::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            [
                "throughput_collapse",
                "injection_starvation",
                "popup_storm",
                "watchdog_cascade",
                "circuit_saturation",
                "permit_queue_runaway",
                "shard_imbalance"
            ]
        );
        for (i, d) in Detector::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
            assert!(!d.metric().is_empty());
        }
    }

    #[test]
    fn alert_jsonl_is_flat_integer_json() {
        let a = Alert {
            detector: Detector::PopupStorm,
            kind: AlertKind::Raise,
            severity: Severity::Warning,
            from_cycle: 400,
            at_cycle: 600,
            value: 57,
            threshold: 40,
        };
        assert_eq!(
            a.jsonl(),
            "{\"detector\":\"popup_storm\",\"event\":\"raise\",\"severity\":\"warning\",\
             \"metric\":\"popups_per_epoch\",\"value\":57,\"threshold\":40,\
             \"from_cycle\":400,\"at_cycle\":600}"
        );
        assert!(alerts_header_json(cfg().every).contains(ALERTS_SCHEMA));
    }
}
