//! Quickstart: build the paper's baseline system (Fig. 1), protect it with
//! UPP, drive uniform-random traffic, and print the run's statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use upp::core::{Upp, UppConfig};
use upp::noc::config::NocConfig;
use upp::noc::network::Network;
use upp::noc::ni::ConsumePolicy;
use upp::noc::routing::ChipletRouting;
use upp::noc::sim::System;
use upp::noc::topology::ChipletSystemSpec;
use upp::workloads::synthetic::{Pattern, SyntheticTraffic};

fn main() {
    // 1. The baseline system: four 4x4 chiplets on a 4x4 active interposer,
    //    four vertical links per chiplet (Fig. 1).
    let topo = ChipletSystemSpec::baseline().build(0).expect("valid spec");
    println!(
        "system: {} chiplet routers + {} interposer routers, {} vertical links",
        topo.chiplets()
            .iter()
            .map(|c| c.routers.len())
            .sum::<usize>(),
        topo.interposer_routers().len(),
        topo.chiplets()
            .iter()
            .map(|c| c.boundary_routers.len())
            .sum::<usize>(),
    );

    // 2. Wormhole network per Table II (3 VNets, 1 VC each, 4-flit buffers),
    //    three-leg routing with the static nearest-boundary binding.
    let net = Network::new(
        NocConfig::default(),
        topo,
        Arc::new(ChipletRouting::xy()),
        ConsumePolicy::Immediate { latency: 1 },
        7,
    );

    // 3. Protect it with UPP: deadlocks may form, detection + popup recovers.
    let upp = Upp::new(UppConfig::default());
    let upp_stats = upp.stats_handle();
    let mut sys = System::new(net, Box::new(upp));

    // 4. Drive uniform-random traffic at a rate beyond the unprotected
    //    network's deadlock point.
    let mut traffic = SyntheticTraffic::new(sys.net().topo(), Pattern::UniformRandom, 0.10, 42);
    for _ in 0..30_000 {
        traffic.tick(&mut sys);
        sys.step();
    }
    // Let the network drain.
    let outcome = sys.run_until_drained(100_000);

    // 5. Report.
    let stats = sys.net().stats();
    let upp = upp_stats.lock().expect("single-threaded run");
    println!("outcome: {outcome:?}");
    println!(
        "packets: {} delivered / {} created ({} flits)",
        stats.packets_ejected, stats.packets_created, stats.flits_ejected
    );
    println!(
        "latency: {:.1} cycles network + {:.1} cycles queueing",
        stats.avg_net_latency(),
        stats.avg_queue_latency()
    );
    println!(
        "UPP recovery: {} upward packets detected, {} popups completed ({} mid-worm), \
         {} false-positive stops, {} signal hops",
        upp.upward_packets,
        upp.popups_completed,
        upp.partial_popups,
        upp.stops_sent,
        stats.control_hops
    );
    assert_eq!(
        stats.packets_ejected, stats.packets_created,
        "UPP delivers everything"
    );
    println!("every injected packet was delivered — no deadlock survived.");
}
