//! Value-generation strategies.

use crate::test_runner::TestRng;
use crate::Arbitrary;
use std::marker::PhantomData;

/// Generates values of an output type from the deterministic test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(pub(crate) Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// See [`crate::any`].
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
    )*};
}
range_strategy_signed!(i8, i16, i32, i64, isize);

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    elem: S,
    len: std::ops::Range<usize>,
}

impl<S> VecStrategy<S> {
    /// Builds a vector strategy; panics on an empty length range.
    pub fn new(elem: S, len: std::ops::Range<usize>) -> Self {
        assert!(len.start < len.end, "empty length range strategy");
        VecStrategy { elem, len }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let width = (self.len.end - self.len.start) as u64;
        let len = self.len.start + (rng.next_u64() % width) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
);
