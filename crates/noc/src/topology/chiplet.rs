//! Builders for chiplet-on-interposer systems.
//!
//! The baseline system of Fig. 1 (four 4x4 chiplets on a 4x4 interposer),
//! the 128-node system of Fig. 9, the boundary-router sensitivity variants of
//! Fig. 10 and the faulty systems of Fig. 11 are all instances of
//! [`ChipletSystemSpec`].

use super::{ChipletInfo, NodeInfo, Region, Topology};
use crate::ids::{ChipletId, NodeId, Port};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Placement of one chiplet above the interposer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipletPlacement {
    /// Chiplet mesh width.
    pub width: u16,
    /// Chiplet mesh height.
    pub height: u16,
    /// `(chiplet (x, y), interposer (x, y))` pairs: each names a boundary
    /// router position and the interposer router its vertical link lands on.
    pub vertical_links: Vec<((u16, u16), (u16, u16))>,
}

/// Convenient, named system shapes used by the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystemKind {
    /// Fig. 1: 4 chiplets of 4x4 on a 4x4 interposer, 4 boundary routers per
    /// chiplet.
    Baseline,
    /// Fig. 9: 8 chiplets of 4x4 on a 4x8 interposer (128 chiplet nodes).
    Large,
    /// Fig. 10 variants: 4 chiplets with the given number of boundary routers
    /// per chiplet (2, 4 or 8).
    BoundaryCount(u16),
    /// A `cols x rows` grid of 4x4 chiplets on a `2*cols x 2*rows`
    /// interposer (the scaling study's generator; [`ChipletSystemSpec::grid`]
    /// validates the dimensions).
    Grid {
        /// Chiplet columns.
        cols: u16,
        /// Chiplet rows.
        rows: u16,
    },
}

/// Specification from which a [`Topology`] is built.
///
/// # Examples
///
/// ```
/// use upp_noc::topology::ChipletSystemSpec;
///
/// let topo = ChipletSystemSpec::large().build(1).expect("valid spec");
/// assert_eq!(topo.chiplets().len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipletSystemSpec {
    /// Interposer mesh width.
    pub interposer_width: u16,
    /// Interposer mesh height.
    pub interposer_height: u16,
    /// One placement per chiplet.
    pub chiplets: Vec<ChipletPlacement>,
}

impl ChipletSystemSpec {
    /// The paper's baseline system (Fig. 1).
    pub fn baseline() -> Self {
        Self::quadrant_system(4, 4, 2, 4)
    }

    /// The 128-node system of Fig. 9: a 4x8 interposer with 8 chiplets.
    pub fn large() -> Self {
        Self::quadrant_system(8, 4, 2, 4)
    }

    /// A named system shape.
    ///
    /// # Panics
    ///
    /// Panics if `BoundaryCount` is given a value other than 2, 4 or 8, or
    /// if `Grid` dimensions fail [`ChipletSystemSpec::grid`] validation.
    pub fn of_kind(kind: SystemKind) -> Self {
        match kind {
            SystemKind::Baseline => Self::baseline(),
            SystemKind::Large => Self::large(),
            SystemKind::BoundaryCount(2) => Self::quadrant_system(4, 4, 2, 2),
            SystemKind::BoundaryCount(4) => Self::baseline(),
            SystemKind::BoundaryCount(8) => Self::quadrant_system(8, 8, 4, 8),
            SystemKind::BoundaryCount(n) => {
                panic!("unsupported boundary router count {n}; use 2, 4 or 8")
            }
            SystemKind::Grid { cols, rows } => {
                Self::grid(cols, rows).expect("invalid grid dimensions")
            }
        }
    }

    /// A `cols x rows` grid of the paper's 4x4 chiplets (Fig. 2(a) boundary
    /// pattern, 4 vertical links each) over a `2*cols x 2*rows` interposer —
    /// the generator for the scaling study. `grid(2, 2)` is exactly the
    /// paper's baseline; `grid(32, 32)` is a 20480-router system.
    ///
    /// # Errors
    ///
    /// Returns `Err` for degenerate or overflowing dimensions: either side
    /// zero, an interposer dimension that does not fit `u16`, or a total
    /// router count that does not fit `u32` (node ids are 32-bit).
    pub fn grid(cols: u16, rows: u16) -> Result<Self, String> {
        if cols == 0 || rows == 0 {
            return Err("grid must be at least 1x1 chiplets".into());
        }
        if 2 * cols as u32 > u16::MAX as u32 || 2 * rows as u32 > u16::MAX as u32 {
            return Err(format!(
                "grid {cols}x{rows} needs a {}x{} interposer, which exceeds the u16 mesh limit",
                2 * cols as u32,
                2 * rows as u32
            ));
        }
        // 16 chiplet routers + 4 interposer routers per chiplet tile.
        let routers = 20u64 * cols as u64 * rows as u64;
        if routers > u32::MAX as u64 {
            return Err(format!(
                "grid {cols}x{rows} has {routers} routers, which exceeds the u32 node-id limit"
            ));
        }
        Ok(Self::quadrant_system(2 * cols, 2 * rows, 2, 4))
    }

    /// Builds a system of 4x4 chiplets tiled over interposer quadrants of
    /// `quad` x `quad` routers, with `boundary_count` vertical links per
    /// chiplet.
    fn quadrant_system(
        interposer_width: u16,
        interposer_height: u16,
        quad: u16,
        boundary_count: u16,
    ) -> Self {
        let cols = interposer_width / quad;
        let rows = interposer_height / quad;
        let mut chiplets = Vec::new();
        for qy in 0..rows {
            for qx in 0..cols {
                let base = (qx * quad, qy * quad);
                chiplets.push(ChipletPlacement {
                    width: 4,
                    height: 4,
                    vertical_links: Self::vertical_links(quad, boundary_count, base),
                });
            }
        }
        Self {
            interposer_width,
            interposer_height,
            chiplets,
        }
    }

    /// Boundary-router positions inside a 4x4 chiplet and their interposer
    /// attach points for a quadrant based at `base`.
    fn vertical_links(
        quad: u16,
        boundary_count: u16,
        base: (u16, u16),
    ) -> Vec<((u16, u16), (u16, u16))> {
        let (bx, by) = base;
        // Boundary routers sit on the chiplet edges in the rotationally
        // symmetric pattern of the paper's Fig. 2(a) (mesh nodes 2, 4, 11,
        // 13 in row-major order). Edge placement matters: it is what makes
        // chiplet integration induce real dependency cycles that the
        // deadlock-freedom schemes must break.
        match (quad, boundary_count) {
            // Two verticals on opposite edges.
            (2, 2) => vec![((2, 0), (bx + 1, by)), ((1, 3), (bx, by + 1))],
            // Fig. 2(a): nodes 2 = (2,0), 4 = (0,1), 11 = (3,2), 13 = (1,3).
            (2, 4) => vec![
                ((2, 0), (bx + 1, by)),
                ((0, 1), (bx, by)),
                ((3, 2), (bx + 1, by + 1)),
                ((1, 3), (bx, by + 1)),
            ],
            // Eight verticals over a 4x4 quadrant (Fig. 10's densest point;
            // the interposer is scaled so that every vertical gets its own
            // interposer router), two per chiplet edge.
            (4, 8) => vec![
                ((1, 0), (bx + 1, by)),
                ((2, 0), (bx + 2, by)),
                ((0, 1), (bx, by + 1)),
                ((0, 2), (bx, by + 2)),
                ((3, 1), (bx + 3, by + 1)),
                ((3, 2), (bx + 3, by + 2)),
                ((1, 3), (bx + 1, by + 3)),
                ((2, 3), (bx + 2, by + 3)),
            ],
            _ => panic!("unsupported quadrant/boundary combination ({quad}, {boundary_count})"),
        }
    }

    /// Builds the topology. The `seed` breaks ties in the static
    /// nearest-boundary binding (Sec. V-D: equidistant boundary routers are
    /// chosen randomly).
    ///
    /// # Errors
    ///
    /// Returns `Err` when the spec is malformed (out-of-range attach points,
    /// duplicate vertical links, or a chiplet without boundary routers).
    pub fn build(&self, seed: u64) -> Result<Topology, String> {
        if self.chiplets.is_empty() {
            return Err("a system needs at least one chiplet".into());
        }
        let mut nodes: Vec<NodeInfo> = Vec::new();
        let mut chiplets: Vec<ChipletInfo> = Vec::new();

        // Chiplet routers first, chiplet by chiplet, row-major.
        for (ci, cp) in self.chiplets.iter().enumerate() {
            if cp.vertical_links.is_empty() {
                return Err(format!("chiplet {ci} has no vertical links"));
            }
            let cid = ChipletId(ci as u16);
            let base = nodes.len();
            let mut routers = Vec::new();
            for y in 0..cp.height {
                for x in 0..cp.width {
                    let id = NodeId(nodes.len() as u32);
                    nodes.push(NodeInfo {
                        id,
                        region: Region::Chiplet(cid),
                        x,
                        y,
                        boundary: false,
                        neighbors: [None; Port::COUNT],
                    });
                    routers.push(id);
                }
            }
            // Mesh links.
            link_mesh(&mut nodes, base, cp.width, cp.height);
            chiplets.push(ChipletInfo {
                id: cid,
                width: cp.width,
                height: cp.height,
                routers,
                boundary_routers: Vec::new(),
            });
        }

        // Interposer routers.
        let ibase = nodes.len();
        let mut interposer_routers = Vec::new();
        for y in 0..self.interposer_height {
            for x in 0..self.interposer_width {
                let id = NodeId(nodes.len() as u32);
                nodes.push(NodeInfo {
                    id,
                    region: Region::Interposer,
                    x,
                    y,
                    boundary: false,
                    neighbors: [None; Port::COUNT],
                });
                interposer_routers.push(id);
            }
        }
        link_mesh(
            &mut nodes,
            ibase,
            self.interposer_width,
            self.interposer_height,
        );

        // Vertical links.
        for (ci, cp) in self.chiplets.iter().enumerate() {
            for &((cx, cy), (ix, iy)) in &cp.vertical_links {
                if cx >= cp.width || cy >= cp.height {
                    return Err(format!("chiplet {ci}: boundary ({cx},{cy}) out of range"));
                }
                if ix >= self.interposer_width || iy >= self.interposer_height {
                    return Err(format!("chiplet {ci}: attach ({ix},{iy}) out of range"));
                }
                let b = chiplets[ci].routers[(cy * cp.width + cx) as usize];
                let ir = interposer_routers[(iy * self.interposer_width + ix) as usize];
                if nodes[b.index()].neighbors[Port::Down.index()].is_some() {
                    return Err(format!("chiplet {ci}: duplicate boundary at ({cx},{cy})"));
                }
                if nodes[ir.index()].neighbors[Port::Up.index()].is_some() {
                    return Err(format!(
                        "interposer router ({ix},{iy}) already has an Up link"
                    ));
                }
                nodes[b.index()].neighbors[Port::Down.index()] = Some(ir);
                nodes[b.index()].boundary = true;
                nodes[ir.index()].neighbors[Port::Up.index()] = Some(b);
                nodes[ir.index()].boundary = true;
                chiplets[ci].boundary_routers.push(b);
            }
        }

        // Static nearest-boundary binding with random tie-breaks.
        let mut rng = SmallRng::seed_from_u64(seed ^ BINDING_SEED_SALT);
        let mut binding = vec![NodeId(0); nodes.len()];
        for c in &chiplets {
            for &r in &c.routers {
                let rn = &nodes[r.index()];
                let best = c
                    .boundary_routers
                    .iter()
                    .map(|&b| {
                        let bn = &nodes[b.index()];
                        let d = (rn.x as i32 - bn.x as i32).unsigned_abs()
                            + (rn.y as i32 - bn.y as i32).unsigned_abs();
                        (d, b)
                    })
                    .collect::<Vec<_>>();
                let min = best
                    .iter()
                    .map(|&(d, _)| d)
                    .min()
                    .expect("non-empty boundary set");
                let ties: Vec<NodeId> = best
                    .into_iter()
                    .filter(|&(d, _)| d == min)
                    .map(|(_, b)| b)
                    .collect();
                binding[r.index()] = ties[rng.gen_range(0..ties.len())];
            }
        }
        for &ir in &interposer_routers {
            binding[ir.index()] = ir;
        }

        let topo = Topology::from_parts(
            nodes,
            chiplets,
            self.interposer_width,
            self.interposer_height,
            interposer_routers,
            binding,
        );
        topo.validate()?;
        Ok(topo)
    }
}

/// Salt mixed into the binding tie-break RNG so topology seeds and traffic
/// seeds draw from independent streams.
const BINDING_SEED_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

fn link_mesh(nodes: &mut [NodeInfo], base: usize, width: u16, height: u16) {
    let at = |x: u16, y: u16| base + (y * width + x) as usize;
    for y in 0..height {
        for x in 0..width {
            let i = at(x, y);
            if x + 1 < width {
                let e = nodes[at(x + 1, y)].id;
                nodes[i].neighbors[Port::East.index()] = Some(e);
            }
            if x > 0 {
                let w = nodes[at(x - 1, y)].id;
                nodes[i].neighbors[Port::West.index()] = Some(w);
            }
            if y + 1 < height {
                let n = nodes[at(x, y + 1)].id;
                nodes[i].neighbors[Port::North.index()] = Some(n);
            }
            if y > 0 {
                let s = nodes[at(x, y - 1)].id;
                nodes[i].neighbors[Port::South.index()] = Some(s);
            }
        }
    }
}

/// Marks `count` randomly-chosen mesh links faulty while keeping every
/// region connected (vertical links are never failed, matching Fig. 11's
/// methodology of degrading the meshes).
///
/// Returns the list of failed `(node, port)` links (one direction each).
///
/// # Errors
///
/// Returns `Err` if fewer than `count` links can be failed without
/// disconnecting a region.
pub fn inject_random_faults(
    topo: &mut Topology,
    count: usize,
    seed: u64,
) -> Result<Vec<(NodeId, Port)>, String> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut candidates: Vec<(NodeId, Port)> = Vec::new();
    for n in topo.nodes() {
        for (p, peer) in n.links() {
            if p.is_mesh() && n.id < peer {
                candidates.push((n.id, p));
            }
        }
    }
    candidates.shuffle(&mut rng);
    let mut failed = Vec::new();
    for (node, port) in candidates {
        if failed.len() == count {
            break;
        }
        if topo.is_link_faulty(node, port) {
            continue;
        }
        topo.set_link_faulty(node, port);
        if topo.validate().is_ok() {
            failed.push((node, port));
        } else {
            topo.clear_link_fault(node, port);
        }
    }
    if failed.len() < count {
        return Err(format!(
            "could only fail {} of the requested {count} links without disconnecting a region",
            failed.len()
        ));
    }
    Ok(failed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Region;

    #[test]
    fn baseline_shape_matches_fig1() {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        assert_eq!(topo.chiplets().len(), 4);
        assert_eq!(topo.num_nodes(), 80);
        assert_eq!(topo.interposer_routers().len(), 16);
        for c in topo.chiplets() {
            assert_eq!(c.routers.len(), 16);
            assert_eq!(c.boundary_routers.len(), 4);
        }
        topo.validate().unwrap();
    }

    #[test]
    fn large_shape_matches_fig9() {
        let topo = ChipletSystemSpec::large().build(0).unwrap();
        assert_eq!(topo.chiplets().len(), 8);
        assert_eq!(topo.interposer_routers().len(), 32);
        let chiplet_nodes: usize = topo.chiplets().iter().map(|c| c.routers.len()).sum();
        assert_eq!(chiplet_nodes, 128);
    }

    #[test]
    fn boundary_count_variants() {
        for (n, expect_interposer) in [(2u16, 16), (4, 16), (8, 64)] {
            let topo = ChipletSystemSpec::of_kind(SystemKind::BoundaryCount(n))
                .build(0)
                .unwrap();
            for c in topo.chiplets() {
                assert_eq!(c.boundary_routers.len(), n as usize, "boundary count {n}");
            }
            assert_eq!(topo.interposer_routers().len(), expect_interposer);
        }
    }

    #[test]
    fn vertical_links_are_symmetric() {
        let topo = ChipletSystemSpec::baseline().build(3).unwrap();
        for c in topo.chiplets() {
            for &b in &c.boundary_routers {
                let below = topo.below(b).unwrap();
                assert!(topo.is_interposer(below));
                assert_eq!(topo.above(below), Some(b));
            }
        }
    }

    #[test]
    fn binding_is_nearest_boundary() {
        let topo = ChipletSystemSpec::baseline().build(42).unwrap();
        for c in topo.chiplets() {
            for &r in &c.routers {
                let bound = topo.bound_boundary(r);
                let d = topo.manhattan(r, bound);
                for &b in &c.boundary_routers {
                    assert!(
                        topo.manhattan(r, b) >= d,
                        "binding must be minimal-distance"
                    );
                }
            }
        }
        // Boundary routers bind to themselves (distance 0).
        for c in topo.chiplets() {
            for &b in &c.boundary_routers {
                assert_eq!(topo.bound_boundary(b), b);
            }
        }
    }

    #[test]
    fn binding_ties_depend_on_seed_only() {
        let a = ChipletSystemSpec::baseline().build(7).unwrap();
        let b = ChipletSystemSpec::baseline().build(7).unwrap();
        assert_eq!(a, b, "same seed must give identical topologies");
    }

    #[test]
    fn fault_injection_preserves_connectivity() {
        let mut topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let failed = inject_random_faults(&mut topo, 10, 123).unwrap();
        assert_eq!(failed.len(), 10);
        assert_eq!(topo.num_faulty_links(), 10);
        topo.validate().unwrap();
        for (n, p) in failed {
            assert!(topo.is_link_faulty(n, p));
            assert!(topo.neighbor(n, p).is_none());
            assert!(topo.raw_neighbor(n, p).is_some());
        }
    }

    #[test]
    fn fault_injection_never_touches_vertical_links() {
        let mut topo = ChipletSystemSpec::baseline().build(0).unwrap();
        inject_random_faults(&mut topo, 20, 9).unwrap();
        for c in topo.chiplets() {
            for &b in &c.boundary_routers {
                assert!(topo.neighbor(b, crate::ids::Port::Down).is_some());
            }
        }
    }

    #[test]
    fn regions_partition_nodes() {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let mut count = 0;
        for c in topo.chiplets() {
            for &r in &c.routers {
                assert_eq!(topo.region(r), Region::Chiplet(c.id));
                count += 1;
            }
        }
        for &i in topo.interposer_routers() {
            assert!(topo.is_interposer(i));
            count += 1;
        }
        assert_eq!(count, topo.num_nodes());
    }

    #[test]
    fn grid_2x2_is_the_baseline() {
        let grid = ChipletSystemSpec::grid(2, 2).unwrap();
        assert_eq!(grid, ChipletSystemSpec::baseline());
        let topo = ChipletSystemSpec::of_kind(SystemKind::Grid { cols: 2, rows: 2 })
            .build(0)
            .unwrap();
        assert_eq!(topo.num_nodes(), 80);
    }

    #[test]
    fn grid_scales_router_count_linearly() {
        for (cols, rows) in [(1u16, 1u16), (3, 2), (4, 4), (8, 8)] {
            let topo = ChipletSystemSpec::grid(cols, rows)
                .unwrap()
                .build(1)
                .unwrap();
            let tiles = cols as usize * rows as usize;
            assert_eq!(topo.chiplets().len(), tiles);
            assert_eq!(topo.num_nodes(), 20 * tiles);
            assert_eq!(topo.interposer_routers().len(), 4 * tiles);
            for c in topo.chiplets() {
                assert_eq!(c.boundary_routers.len(), 4);
            }
            topo.validate().unwrap();
        }
    }

    #[test]
    fn grid_rejects_degenerate_and_overflowing_dimensions() {
        assert!(ChipletSystemSpec::grid(0, 4)
            .unwrap_err()
            .contains("at least 1x1"));
        assert!(ChipletSystemSpec::grid(4, 0)
            .unwrap_err()
            .contains("at least 1x1"));
        assert!(ChipletSystemSpec::grid(u16::MAX, 1)
            .unwrap_err()
            .contains("u16 mesh limit"));
        // 20 * 32768^2 = ~21.5e9 routers: each interposer side fits u16 but
        // the node-id space overflows u32.
        assert!(ChipletSystemSpec::grid(32_768 / 2, 32_768 / 2).is_err());
    }

    #[test]
    fn bad_specs_are_rejected() {
        let spec = ChipletSystemSpec {
            interposer_width: 2,
            interposer_height: 2,
            chiplets: vec![ChipletPlacement {
                width: 2,
                height: 2,
                vertical_links: vec![((0, 0), (5, 5))],
            }],
        };
        assert!(spec.build(0).is_err());

        let spec = ChipletSystemSpec {
            interposer_width: 2,
            interposer_height: 2,
            chiplets: vec![],
        };
        assert!(spec.build(0).is_err());

        let spec = ChipletSystemSpec {
            interposer_width: 2,
            interposer_height: 2,
            chiplets: vec![ChipletPlacement {
                width: 2,
                height: 2,
                vertical_links: vec![],
            }],
        };
        assert!(spec.build(0).is_err());
    }
}
