//! Spatial sharding of the cycle kernel.
//!
//! The mesh is partitioned along chiplet boundaries into `S` shards, each
//! owning a contiguous block of chiplet routers/NIs plus a contiguous slice
//! of the interposer. Every cycle runs as a deterministic two-phase
//! fork/join: the workers *compute* (deliver this cycle's events, then
//! inject/route/consume) strictly within their own shard, staging every
//! outgoing event, trace record and statistic into shard-local buffers
//! (the "mailboxes"); the main thread then *exchanges* — it drains the
//! mailboxes in one canonical order (per phase: all shards' chiplet
//! segments in shard order, then all interposer segments) that reproduces
//! the serial kernel's ascending-node iteration exactly. Because shards
//! share no mutable state during the compute phase and the exchange order
//! is a pure function of the partition, the merged event/trace/stat
//! streams are byte-identical to the serial kernel regardless of how the
//! OS schedules the worker threads.
//!
//! Safety of the compute phase rests on the event-staging discipline the
//! serial kernel already obeys: all cross-router communication travels
//! through calendar events that arrive at least one cycle later, and a
//! router's cycle only ever touches its own state plus its *own* NI — so
//! stepping disjoint node ranges in parallel cannot race.

use crate::config::NocConfig;
use crate::control::DeliveredControl;
use crate::event::Event;
use crate::ids::{Cycle, NodeId, Port};
use crate::ni::Ni;
use crate::obs::ObsRegistry;
use crate::packet::{PacketArena, PacketRef};
use crate::router::{Router, RouterCtx};
use crate::routing::RouteComputer;
use crate::stats::{NetStats, PacketTracker};
use crate::topology::Topology;
use crate::trace::{TraceEvent, Tracer};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

// ----------------------------------------------------- process-wide default

static DEFAULT_SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide default shard count that
/// [`upp_workloads`-style builders] apply to freshly built networks
/// (CLI `--shards N`). Tests should call `Network::set_shards` on the
/// instance instead — a process global leaks across parallel test threads.
pub fn set_default_shards(n: usize) {
    DEFAULT_SHARDS.store(n.max(1), Ordering::Relaxed);
}

/// The process-wide default shard count (1 = serial kernel).
pub fn default_shards() -> usize {
    DEFAULT_SHARDS.load(Ordering::Relaxed).max(1)
}

/// True when `UPP_FORCE_SERIAL=1` pins the serial kernel regardless of any
/// requested shard count (escape hatch, mirroring `UPP_ALWAYS_TICK`).
pub fn force_serial() -> bool {
    std::env::var("UPP_FORCE_SERIAL").is_ok_and(|v| v == "1")
}

// ----------------------------------------------------------------- the plan

/// The spatial partition: per shard, a contiguous chiplet-layer node range
/// and a contiguous interposer-layer node range. Shard boundaries always
/// coincide with chiplet boundaries, so intra-chiplet traffic never
/// crosses shards and only interposer links form the parallel seam.
#[derive(Debug, Clone)]
pub(crate) struct ShardPlan {
    /// Per shard: `(chiplet-layer range, interposer range)` of node
    /// indices. The chiplet ranges concatenate to `0..interposer_base` and
    /// the interposer ranges to `interposer_base..nodes`, each ascending.
    pub ranges: Vec<(Range<usize>, Range<usize>)>,
    /// First interposer node index.
    pub interposer_base: usize,
}

impl ShardPlan {
    /// Builds a plan with `shards` shards (`2 <= shards <= chiplets`), or
    /// `None` when the topology's node ids are not laid out as contiguous
    /// ascending chiplet blocks followed by a contiguous interposer block
    /// (the invariant every [`crate::topology::ChipletSystemSpec`] build
    /// satisfies; a custom topology that breaks it falls back to serial).
    pub(crate) fn build(topo: &Topology, shards: usize) -> Option<ShardPlan> {
        let chiplets = topo.chiplets();
        if shards < 2 || shards > chiplets.len() {
            return None;
        }
        // Validate the contiguous-ascending layout the split relies on.
        let mut next = 0usize;
        let mut chiplet_bounds: Vec<Range<usize>> = Vec::with_capacity(chiplets.len());
        for c in chiplets {
            let start = next;
            for &r in &c.routers {
                if r.index() != next {
                    return None;
                }
                next += 1;
            }
            chiplet_bounds.push(start..next);
        }
        let interposer_base = next;
        for &r in topo.interposer_routers() {
            if r.index() != next {
                return None;
            }
            next += 1;
        }
        if next != topo.nodes().len() {
            return None;
        }
        // Even partition: shard s takes chiplets [s*C/S, (s+1)*C/S) and
        // interposer nodes [base + s*M/S, base + (s+1)*M/S).
        let c = chiplet_bounds.len();
        let m = next - interposer_base;
        let ranges = (0..shards)
            .map(|s| {
                let c0 = s * c / shards;
                let c1 = (s + 1) * c / shards;
                let r0 = chiplet_bounds[c0].start..chiplet_bounds[c1 - 1].end;
                let r1 =
                    (interposer_base + s * m / shards)..(interposer_base + (s + 1) * m / shards);
                (r0, r1)
            })
            .collect();
        Some(ShardPlan {
            ranges,
            interposer_base,
        })
    }

    /// Number of shards.
    pub(crate) fn shards(&self) -> usize {
        self.ranges.len()
    }

    /// The shard owning `node`.
    pub(crate) fn shard_of(&self, node: NodeId) -> usize {
        let ix = node.index();
        if ix < self.interposer_base {
            self.ranges.partition_point(|(r0, _)| r0.end <= ix)
        } else {
            self.ranges.partition_point(|(_, r1)| r1.end <= ix)
        }
    }

    /// Largest node count of any single range (sizing the mailboxes).
    pub(crate) fn max_range_len(&self) -> usize {
        self.ranges
            .iter()
            .map(|(r0, r1)| r0.len().max(r1.len()))
            .max()
            .unwrap_or(0)
    }
}

/// Default per-segment mailbox capacity: a router emits at most a handful
/// of events per cycle (one flit grant plus one credit per port, control,
/// bypass), so 32 per node is far above any reachable burst while keeping
/// the buffers cache-friendly.
pub(crate) fn default_mailbox_capacity(plan: &ShardPlan) -> usize {
    32 * plan.max_range_len() + 64
}

/// The not-yet-assigned tails of the per-node component arrays during shard
/// dispatch, each pre-split at the chiplet/interposer boundary. Every shard
/// peels its two ranges off the front ([`split_off_shard`]); the recursion
/// in [`run_phase`] keeps each shard's slices alive on its own stack frame,
/// so the whole split is allocation-free (the former `split_mut` built four
/// `Vec`s of slices per phase, every cycle).
pub(crate) struct Rests<'a> {
    /// `[chiplet-region tail, interposer-region tail]` of the routers.
    pub routers: [&'a mut [Router]; 2],
    /// Same split of the NIs.
    pub nis: [&'a mut [Ni]; 2],
    /// Same split of the router wake flags.
    pub router_active: [&'a mut [bool]; 2],
    /// Same split of the NI wake flags.
    pub ni_active: [&'a mut [bool]; 2],
    /// Remaining per-shard scratches.
    pub scratch: &'a mut [ShardScratch],
}

fn take2<T>(pair: [&mut [T]; 2], l0: usize, l1: usize) -> ([&mut [T]; 2], [&mut [T]; 2]) {
    let [a, b] = pair;
    let (a0, a_rest) = a.split_at_mut(l0);
    let (b0, b_rest) = b.split_at_mut(l1);
    ([a0, b0], [a_rest, b_rest])
}

/// Peels shard `s`'s node ranges and scratch off the front of `rests`.
fn split_off_shard<'a>(
    env: &PhaseEnv<'a>,
    s: usize,
    rests: Rests<'a>,
) -> (ShardParts<'a>, Rests<'a>) {
    let (r0, r1) = &env.plan.ranges[s];
    let (routers, routers_rest) = take2(rests.routers, r0.len(), r1.len());
    let (nis, nis_rest) = take2(rests.nis, r0.len(), r1.len());
    let (router_active, ra_rest) = take2(rests.router_active, r0.len(), r1.len());
    let (ni_active, na_rest) = take2(rests.ni_active, r0.len(), r1.len());
    let (scratch, scratch_rest) = rests
        .scratch
        .split_first_mut()
        .expect("one scratch per shard");
    let parts = ShardParts {
        cfg: env.cfg,
        topo: env.topo,
        routing: env.routing,
        now: env.now,
        sched: env.sched,
        routers,
        nis,
        router_active,
        ni_active,
        base: [r0.start, r1.start],
        scratch,
        arena: env.arena,
        mailbox_capacity: env.mailbox_capacity,
        shard_ix: s,
    };
    (
        parts,
        Rests {
            routers: routers_rest,
            nis: nis_rest,
            router_active: ra_rest,
            ni_active: na_rest,
            scratch: scratch_rest,
        },
    )
}

/// Everything a phase dispatch shares across shards.
pub(crate) struct PhaseEnv<'a> {
    pub plan: &'a ShardPlan,
    pub cfg: &'a NocConfig,
    pub topo: &'a Topology,
    pub routing: &'a dyn RouteComputer,
    pub arena: &'a PacketArena,
    pub now: Cycle,
    pub sched: bool,
    /// Finish-phase body (inject/route/consume) vs. begin-phase body
    /// (event delivery).
    pub finish: bool,
    pub mailbox_capacity: usize,
}

/// Fans one compute phase out over the worker pool: shards `1..S` run on
/// the workers, shard `0` inline on the calling thread, and the call
/// returns only after every shard finished (panics from any shard
/// resurface here, after the join). Allocation-free: each worker shard's
/// slice bundle and job closure live on a recursion stack frame that
/// outlives the join barrier.
pub(crate) fn run_phase(pool: &WorkerPool, env: &PhaseEnv<'_>, rests: Rests<'_>) {
    dispatch(pool, env, 0, rests, None);
}

fn dispatch(
    pool: &WorkerPool,
    env: &PhaseEnv<'_>,
    s: usize,
    rests: Rests<'_>,
    local: Option<&mut ShardParts<'_>>,
) {
    let shards = env.plan.shards();
    if s == shards {
        let parts = local.expect("shard 0 dispatched first");
        // Run shard 0 inline, catching a panic so the join barrier below
        // always completes before any unwind releases the borrows the
        // workers still hold.
        let local_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_shard_body(env.finish, parts)
        }));
        let worker_panic = pool.join(shards - 1);
        if let Err(payload) = local_result {
            std::panic::resume_unwind(payload);
        }
        if let Some(msg) = worker_panic {
            panic!("{msg}");
        }
        return;
    }
    let (mut parts, rest) = split_off_shard(env, s, rests);
    if s == 0 {
        dispatch(pool, env, 1, rest, Some(&mut parts));
    } else {
        let finish = env.finish;
        let mut job = move || run_shard_body(finish, &mut parts);
        // SAFETY: `job` (and everything it borrows) lives on this frame,
        // and the innermost frame's `pool.join` does not return until the
        // worker has finished running it.
        unsafe { pool.post(s - 1, &mut job) };
        dispatch(pool, env, s + 1, rest, local);
    }
}

fn run_shard_body(finish: bool, parts: &mut ShardParts<'_>) {
    if finish {
        finish_shard(parts);
    } else {
        begin_shard(parts);
    }
}

// ----------------------------------------------------------- shard scratch

/// One phase-range mailbox: events to stage into the calendar, trace
/// records to replay, and (inject phase only) descriptor handles of packets
/// whose head flit entered the network.
pub(crate) struct SegBuf {
    pub emit: Vec<(Cycle, Event)>,
    pub trace: Tracer,
    pub injected: Vec<PacketRef>,
}

impl SegBuf {
    fn new() -> Self {
        Self {
            emit: Vec::new(),
            trace: Tracer::disabled(),
            injected: Vec::new(),
        }
    }
}

/// All shard-local state. Persistent across cycles (buffers drain on merge
/// and keep their allocations); nothing in here survives a merge with a
/// non-zero value except the armed tracer/obs shells.
pub(crate) struct ShardScratch {
    /// Begin-phase events routed to this shard (slot order preserved).
    pub pending: Vec<Event>,
    /// Begin-phase emit sink; deliveries never emit, asserted on merge.
    pub begin_emit: Vec<(Cycle, Event)>,
    /// Begin-phase trace sink; deliveries never record, asserted on merge.
    pub begin_trace: Tracer,
    /// Mailboxes: `[inject, route]` x `[chiplet range, interposer range]`.
    pub segs: [[SegBuf; 2]; 2],
    /// Shard-local stats delta, drained into the global snapshot on merge.
    pub stats: NetStats,
    /// First-touch log of `stats.link_flits` indices (O(flit-hops) merge).
    pub link_touch: Vec<u32>,
    /// Shadow telemetry registry (mechanism metrics only; the parallel
    /// region records nothing else).
    pub obs: ObsRegistry,
    /// Progress-watchdog proxy: only `touch` lands here; merged as a max.
    pub tracker: PacketTracker,
    /// Router steps executed by this shard this cycle.
    pub router_ticks: u64,
    /// Whether the segment tracers are in capture mode.
    pub trace_armed: bool,
}

impl ShardScratch {
    fn new(num_vnets: usize) -> Self {
        Self {
            pending: Vec::new(),
            begin_emit: Vec::new(),
            begin_trace: Tracer::disabled(),
            segs: [
                [SegBuf::new(), SegBuf::new()],
                [SegBuf::new(), SegBuf::new()],
            ],
            stats: NetStats::new(num_vnets),
            link_touch: Vec::new(),
            obs: ObsRegistry::disabled(),
            tracker: PacketTracker::new(),
            router_ticks: 0,
            trace_armed: false,
        }
    }
}

/// Read-only snapshot of the sharded kernel's own pressure telemetry:
/// how full the fixed-capacity mailboxes ran and how much each shard
/// merged. Kernel-dependent by nature (the serial kernel has no
/// mailboxes), so it is surfaced only on explicit request — obs gauges
/// and the byte-pinned export paths never include it implicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTelemetry<'a> {
    /// Effective shard count.
    pub shards: usize,
    /// Capacity every event mailbox was allocated with.
    pub mailbox_capacity: usize,
    /// Highest event-mailbox fill observed, per shard (borrowed from the
    /// runtime — taking a snapshot clones nothing).
    pub mailbox_high_water: &'a [usize],
    /// Mailbox entries (events + traces + injection notices) merged, per
    /// shard.
    pub merged_entries: &'a [u64],
}

/// Everything the sharded kernel owns: the partition, the worker pool and
/// one scratch per shard.
pub(crate) struct ShardRuntime {
    pub plan: ShardPlan,
    pub pool: WorkerPool,
    pub scratch: Vec<ShardScratch>,
    pub mailbox_capacity: usize,
    /// Highest fill of any event mailbox (`SegBuf::emit`) seen per shard,
    /// measured on the main-thread merge path. Pure telemetry: surfaced as
    /// obs gauges and in `simulate`, never read by the kernel.
    pub mailbox_high_water: Vec<usize>,
    /// Total mailbox entries (events + trace records + injection notices)
    /// merged per shard over the run.
    pub merged_entries: Vec<u64>,
}

impl std::fmt::Debug for ShardRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRuntime")
            .field("shards", &self.plan.shards())
            .field("mailbox_capacity", &self.mailbox_capacity)
            .finish_non_exhaustive()
    }
}

impl ShardRuntime {
    pub(crate) fn new(plan: ShardPlan, mailbox_capacity: usize, num_vnets: usize) -> Self {
        let shards = plan.shards();
        Self {
            plan,
            pool: WorkerPool::new(shards - 1),
            scratch: (0..shards).map(|_| ShardScratch::new(num_vnets)).collect(),
            mailbox_capacity,
            mailbox_high_water: vec![0; shards],
            merged_entries: vec![0; shards],
        }
    }

    /// Aligns each shard's shadow sinks with the global tracer/obs state
    /// (both can be armed mid-run). Called at the top of every sharded
    /// phase, when all capture buffers are empty.
    pub(crate) fn arm(&mut self, trace_on: bool, obs_on: bool) {
        for sc in &mut self.scratch {
            if obs_on && !sc.obs.is_enabled() {
                sc.obs.enable();
            }
            if sc.trace_armed != trace_on {
                sc.trace_armed = trace_on;
                for phase in &mut sc.segs {
                    for seg in phase {
                        seg.trace = if trace_on {
                            Tracer::capture()
                        } else {
                            Tracer::disabled()
                        };
                    }
                }
            }
        }
    }
}

// ------------------------------------------------------------ the job bodies

#[inline]
fn check_mailbox(len: usize, capacity: usize, shard: usize, phase: &str) {
    assert!(
        len <= capacity,
        "shard mailbox overflow: {len} staged events exceed the capacity of \
         {capacity} (shard {shard}, {phase} phase); raise the mailbox \
         capacity via Network::set_shards_with_mailbox_capacity"
    );
}

/// Per-shard slice of the network state for one phase.
pub(crate) struct ShardParts<'a> {
    pub cfg: &'a NocConfig,
    pub topo: &'a Topology,
    pub routing: &'a dyn RouteComputer,
    pub now: Cycle,
    pub sched: bool,
    /// `[chiplet range, interposer range]` component slices.
    pub routers: [&'a mut [Router]; 2],
    pub nis: [&'a mut [Ni]; 2],
    pub router_active: [&'a mut [bool]; 2],
    pub ni_active: [&'a mut [bool]; 2],
    /// First node index of each range (for event-target lookup).
    pub base: [usize; 2],
    pub scratch: &'a mut ShardScratch,
    /// Shared read-only descriptor arena (allocs/frees happen only on the
    /// serial path, never during a parallel phase).
    pub arena: &'a PacketArena,
    pub mailbox_capacity: usize,
    pub shard_ix: usize,
}

/// Begin phase, compute step: delivers this shard's pending events in slot
/// order. Deliveries mutate only the target component (plus commutative
/// obs counters, routed to the shadow registry); ejections (`NiFlitArrive`)
/// were already handled serially on the main thread, in slot order, because
/// they touch global stats/tracker/tracer state.
pub(crate) fn begin_shard(p: &mut ShardParts<'_>) {
    let base = p.base;
    let locate = |node: NodeId| -> (usize, usize) {
        let ix = node.index();
        if ix >= base[1] {
            (1, ix - base[1])
        } else {
            (0, ix - base[0])
        }
    };
    let ShardScratch {
        pending,
        begin_emit,
        begin_trace,
        stats,
        link_touch,
        obs,
        tracker,
        ..
    } = &mut *p.scratch;
    for ev in pending.drain(..) {
        match ev {
            Event::FlitArrive {
                node,
                in_port,
                vc_flat,
                flit,
            } => {
                let (r, j) = locate(node);
                let mut ctx = RouterCtx {
                    cfg: p.cfg,
                    topo: p.topo,
                    routing: p.routing,
                    now: p.now,
                    ni: &mut p.nis[r][j],
                    emit: &mut *begin_emit,
                    stats: &mut *stats,
                    tracker: &mut *tracker,
                    arena: p.arena,
                    tracer: &mut *begin_trace,
                    obs: &mut *obs,
                    link_log: Some(&mut *link_touch),
                };
                p.routers[r][j].deliver_flit(&mut ctx, in_port, vc_flat, flit);
            }
            Event::CreditArrive {
                node,
                out_port,
                vc_flat,
                is_free,
            } => {
                let (r, j) = locate(node);
                p.routers[r][j].deliver_credit(out_port, vc_flat, is_free);
            }
            Event::NiCreditArrive {
                node,
                vc_flat,
                is_free,
            } => {
                let (r, j) = locate(node);
                p.nis[r][j].on_credit(vc_flat, is_free);
            }
            Event::ControlArrive { node, in_port, msg } => {
                let (r, j) = locate(node);
                p.routers[r][j].deliver_control(in_port, msg, p.now);
            }
            Event::NiControlArrive { node, in_port, msg } => {
                let (r, j) = locate(node);
                p.nis[r][j].deliver_control(DeliveredControl {
                    msg,
                    in_port,
                    at: p.now,
                });
            }
            Event::NiFlitArrive { .. } => {
                unreachable!("ejections are handled serially on the main thread")
            }
        }
    }
}

/// Finish phase, compute step: NI injection, router allocation/commit and
/// PE consumption over this shard's two node ranges, mirroring the serial
/// kernel's loops with every global side effect redirected to the shard's
/// mailboxes and delta accumulators.
pub(crate) fn finish_shard(p: &mut ShardParts<'_>) {
    let vct = p.cfg.flow_control == crate::config::FlowControl::VirtualCutThrough;
    // NI injection (serial: ascending node order; here per range, with the
    // merge concatenating ranges back into ascending order).
    for r in 0..2 {
        let seg = &mut p.scratch.segs[0][r];
        for (j, ni) in p.nis[r].iter_mut().enumerate() {
            if p.sched && !p.ni_active[r][j] {
                continue;
            }
            if let Some((flit, vc_flat)) = ni.inject_step(p.now, p.cfg.vcs_per_vnet, vct) {
                if flit.kind.is_head() {
                    seg.injected.push(flit.desc);
                    p.scratch.stats.packets_injected += 1;
                    if seg.trace.enabled() {
                        seg.trace.record(TraceEvent::PacketInjected {
                            at: p.now,
                            packet: p.arena.get(flit.desc).id,
                            node: ni.node(),
                        });
                    }
                }
                p.scratch.stats.flits_injected += 1;
                p.scratch.tracker.touch(p.now);
                seg.emit.push((
                    p.now + p.cfg.link_latency,
                    Event::FlitArrive {
                        node: ni.node(),
                        in_port: Port::Local,
                        vc_flat,
                        flit,
                    },
                ));
            }
        }
        check_mailbox(seg.emit.len(), p.mailbox_capacity, p.shard_ix, "inject");
    }

    // Routers: bypass, control, switch allocation.
    for r in 0..2 {
        let ShardScratch {
            segs,
            stats,
            link_touch,
            obs,
            tracker,
            router_ticks,
            ..
        } = &mut *p.scratch;
        let seg = &mut segs[1][r];
        for j in 0..p.routers[r].len() {
            if p.sched && !p.router_active[r][j] {
                continue;
            }
            *router_ticks += 1;
            let mut ctx = RouterCtx {
                cfg: p.cfg,
                topo: p.topo,
                routing: p.routing,
                now: p.now,
                ni: &mut p.nis[r][j],
                emit: &mut seg.emit,
                stats: &mut *stats,
                tracker: &mut *tracker,
                arena: p.arena,
                tracer: &mut seg.trace,
                obs: &mut *obs,
                link_log: Some(&mut *link_touch),
            };
            p.routers[r][j].step(&mut ctx);
            if p.sched && !p.routers[r][j].has_pending_work() {
                p.router_active[r][j] = false;
            }
        }
        check_mailbox(seg.emit.len(), p.mailbox_capacity, p.shard_ix, "route");
    }

    // PE consumption, then NI deactivation.
    for r in 0..2 {
        for (j, ni) in p.nis[r].iter_mut().enumerate() {
            if p.sched && !p.ni_active[r][j] {
                continue;
            }
            ni.consume_step(p.now);
            if p.sched && !ni.has_pending_work() {
                p.ni_active[r][j] = false;
            }
        }
    }
}

// ------------------------------------------------------------- worker pool

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A posted job: a lifetime-erased fat reference to a caller-stack closure.
/// [`WorkerPool::post`]'s safety contract guarantees the pointee outlives
/// the run (the caller keeps the closure alive until [`WorkerPool::join`]).
struct RawJob(&'static mut (dyn FnMut() + Send));

/// Per-worker handoff slot.
enum SlotState {
    /// No job posted; the previous result (if any) was collected.
    Idle,
    /// A job is posted and not yet picked up.
    Ready(RawJob),
    /// The job ran to completion (`Ok`) or panicked (`Err(message)`).
    Done(Result<(), String>),
    /// The pool is being dropped; the worker exits.
    Shutdown,
}

struct WorkerSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

/// A persistent pool of worker threads, one fixed handoff slot per worker.
/// Threads persist across cycles (spawning per cycle would dominate the
/// kernel), and — unlike a channel-fed pool, which boxes every closure and
/// allocates a queue node per send — the slot protocol is allocation-free
/// per dispatch: a job is a fat pointer to a closure on the dispatcher's
/// stack, handed over under a mutex and signalled by condvar. Worker panics
/// are caught, reported through the slot (so the join barrier never
/// deadlocks mid-unwind) and re-raised on the calling thread.
pub(crate) struct WorkerPool {
    slots: Arc<[WorkerSlot]>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    pub(crate) fn new(workers: usize) -> Self {
        let slots: Arc<[WorkerSlot]> = (0..workers)
            .map(|_| WorkerSlot {
                state: Mutex::new(SlotState::Idle),
                cv: Condvar::new(),
            })
            .collect();
        let handles = (0..workers)
            .map(|w| {
                let slots = Arc::clone(&slots);
                std::thread::Builder::new()
                    .name(format!("upp-shard-{}", w + 1))
                    .spawn(move || {
                        let slot = &slots[w];
                        loop {
                            let job = {
                                let mut st = slot.state.lock().expect("slot mutex");
                                loop {
                                    match &*st {
                                        SlotState::Ready(_) => break,
                                        SlotState::Shutdown => return,
                                        _ => st = slot.cv.wait(st).expect("slot mutex"),
                                    }
                                }
                                match std::mem::replace(&mut *st, SlotState::Idle) {
                                    SlotState::Ready(job) => job,
                                    _ => unreachable!(),
                                }
                            };
                            let RawJob(f) = job;
                            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
                                .map_err(panic_message);
                            let mut st = slot.state.lock().expect("slot mutex");
                            if matches!(*st, SlotState::Shutdown) {
                                return;
                            }
                            *st = SlotState::Done(result);
                            slot.cv.notify_all();
                        }
                    })
                    .expect("spawn shard worker thread")
            })
            .collect();
        Self { slots, handles }
    }

    /// Posts `job` to worker `w` (which must be idle, i.e. collected by a
    /// previous [`WorkerPool::join`]).
    ///
    /// # Safety
    ///
    /// The caller must keep `job` (and everything it borrows) alive and
    /// untouched until a `join` covering worker `w` returns.
    pub(crate) unsafe fn post(&self, w: usize, job: &mut (dyn FnMut() + Send)) {
        // SAFETY: lifetime erasure only; the caller contract above keeps the
        // pointee valid for the duration of the dispatch.
        let raw = unsafe {
            std::mem::transmute::<&mut (dyn FnMut() + Send), &'static mut (dyn FnMut() + Send)>(job)
        };
        let slot = &self.slots[w];
        let mut st = slot.state.lock().expect("slot mutex");
        debug_assert!(
            matches!(*st, SlotState::Idle),
            "posting to a busy worker slot"
        );
        *st = SlotState::Ready(RawJob(raw));
        slot.cv.notify_all();
    }

    /// Join barrier over workers `0..dispatched`: blocks until each has
    /// finished its posted job, returning the first panic message (if any).
    pub(crate) fn join(&self, dispatched: usize) -> Option<String> {
        let mut first_panic = None;
        for slot in &self.slots[..dispatched] {
            let mut st = slot.state.lock().expect("slot mutex");
            loop {
                match &*st {
                    SlotState::Done(_) => break,
                    _ => st = slot.cv.wait(st).expect("slot mutex"),
                }
            }
            if let SlotState::Done(Err(msg)) = std::mem::replace(&mut *st, SlotState::Idle) {
                first_panic.get_or_insert(msg);
            }
        }
        first_panic
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            *slot.state.lock().expect("slot mutex") = SlotState::Shutdown;
            slot.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ChipletSystemSpec;

    #[test]
    fn plan_partitions_baseline_into_contiguous_ranges() {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let plan = ShardPlan::build(&topo, 2).expect("baseline is shardable");
        assert_eq!(plan.shards(), 2);
        let n = topo.nodes().len();
        // Ranges tile the node space.
        let (r0a, r1a) = &plan.ranges[0];
        let (r0b, r1b) = &plan.ranges[1];
        assert_eq!(r0a.start, 0);
        assert_eq!(r0a.end, r0b.start);
        assert_eq!(r0b.end, plan.interposer_base);
        assert_eq!(r1a.start, plan.interposer_base);
        assert_eq!(r1a.end, r1b.start);
        assert_eq!(r1b.end, n);
        // Every node maps to the shard whose range holds it.
        for ix in 0..n {
            let s = plan.shard_of(NodeId(ix as u32));
            let (r0, r1) = &plan.ranges[s];
            assert!(r0.contains(&ix) || r1.contains(&ix), "node {ix} shard {s}");
        }
    }

    #[test]
    fn plan_rejects_more_shards_than_chiplets() {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let chiplets = topo.chiplets().len();
        assert!(ShardPlan::build(&topo, chiplets + 1).is_none());
        assert!(ShardPlan::build(&topo, 1).is_none(), "serial needs no plan");
    }

    #[test]
    fn worker_pool_runs_jobs_and_propagates_panics() {
        let pool = WorkerPool::new(2);
        let mut a = 0u64;
        let mut b = 0u64;
        {
            let mut ja = || a = 1;
            let mut jb = || b = 2;
            // SAFETY: the closures outlive the join below.
            unsafe {
                pool.post(0, &mut ja);
                pool.post(1, &mut jb);
            }
            assert!(pool.join(2).is_none());
        }
        assert_eq!((a, b), (1, 2));
        {
            let mut jp = || panic!("worker job failed deliberately");
            // SAFETY: as above.
            unsafe { pool.post(0, &mut jp) };
            let msg = pool.join(1).expect("panic must surface");
            assert!(msg.contains("worker job failed deliberately"), "{msg}");
        }
        // The pool survives a reported panic and keeps running jobs.
        let mut d = 0u64;
        {
            let mut jd = || d = 4;
            // SAFETY: as above.
            unsafe { pool.post(0, &mut jd) };
            assert!(pool.join(1).is_none());
        }
        assert_eq!(d, 4);
    }
}
