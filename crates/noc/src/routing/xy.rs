//! Dimension-ordered (XY) routing within one mesh region.

use crate::ids::{NodeId, Port};
use crate::topology::Topology;

/// The port an XY-routed packet takes at `node` toward `target`.
///
/// Both nodes must belong to the same region. X is fully resolved before Y,
/// which makes the intra-region channel dependency graph acyclic.
///
/// # Panics
///
/// Panics if the nodes are in different regions or if `node == target`.
pub fn xy_step(topo: &Topology, node: NodeId, target: NodeId) -> Port {
    let (n, t) = (topo.node(node), topo.node(target));
    assert_eq!(n.region, t.region, "xy_step routes within one region");
    assert_ne!(node, target, "xy_step needs a remote target");
    if t.x > n.x {
        Port::East
    } else if t.x < n.x {
        Port::West
    } else if t.y > n.y {
        Port::North
    } else {
        Port::South
    }
}

/// The port through which an XY-routed packet from `src` *arrives* at
/// `target` (i.e. the input port of the final hop), or `Port::Local` when
/// `src == target`.
///
/// Used by turn-legality analyses: the arrival direction determines which
/// turn a packet would take into a vertical link at a boundary router.
pub fn xy_arrival_port(topo: &Topology, src: NodeId, target: NodeId) -> Port {
    if src == target {
        return Port::Local;
    }
    let (s, t) = (topo.node(src), topo.node(target));
    assert_eq!(
        s.region, t.region,
        "xy_arrival_port routes within one region"
    );
    if s.y != t.y {
        // The last move is in Y.
        if t.y > s.y {
            Port::South // entered moving north, i.e. from the south side
        } else {
            Port::North
        }
    } else if t.x > s.x {
        Port::West
    } else {
        Port::East
    }
}

/// The first port an XY-routed packet takes when departing `src` toward
/// `target`, or `Port::Local` when they coincide.
pub fn xy_departure_port(topo: &Topology, src: NodeId, target: NodeId) -> Port {
    if src == target {
        Port::Local
    } else {
        xy_step(topo, src, target)
    }
}

/// True if the mesh-to-mesh turn `(in_port, out_port)` is legal under XY
/// dimension order (no U-turns, no Y-to-X turns).
///
/// Turns involving `Local`, `Up` or `Down` are outside XY's jurisdiction and
/// are reported legal here; vertical-turn legality is governed by
/// [`crate::routing::turns::TurnRestrictions`].
pub fn xy_turn_legal(in_port: Port, out_port: Port) -> bool {
    if !in_port.is_mesh() || !out_port.is_mesh() {
        return true;
    }
    if in_port == out_port {
        return false; // U-turn: leaving through the port it arrived on
    }
    // A packet arriving on an X-side port was moving in X; it may continue in
    // X or turn to Y. A packet arriving on a Y-side port must stay in Y.
    if in_port.is_y() && out_port.is_x() {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ChipletSystemSpec;

    fn topo() -> Topology {
        ChipletSystemSpec::baseline().build(0).unwrap()
    }

    #[test]
    fn x_before_y() {
        let t = topo();
        let c = &t.chiplets()[0];
        let at = |x: u16, y: u16| c.routers[(y * c.width + x) as usize];
        assert_eq!(xy_step(&t, at(0, 0), at(3, 3)), Port::East);
        assert_eq!(xy_step(&t, at(3, 0), at(3, 3)), Port::North);
        assert_eq!(xy_step(&t, at(3, 3), at(0, 3)), Port::West);
        assert_eq!(xy_step(&t, at(0, 3), at(0, 0)), Port::South);
    }

    #[test]
    fn walk_terminates_at_target() {
        let t = topo();
        let c = &t.chiplets()[1];
        for &src in &c.routers {
            for &dst in &c.routers {
                if src == dst {
                    continue;
                }
                let mut cur = src;
                let mut hops = 0;
                while cur != dst {
                    let p = xy_step(&t, cur, dst);
                    cur = t
                        .raw_neighbor(cur, p)
                        .expect("XY step must follow an existing link");
                    hops += 1;
                    assert!(hops <= 16, "XY must be minimal in a 4x4 mesh");
                }
                assert_eq!(hops, t.manhattan(src, dst));
            }
        }
    }

    #[test]
    fn arrival_and_departure_ports() {
        let t = topo();
        let c = &t.chiplets()[0];
        let at = |x: u16, y: u16| c.routers[(y * c.width + x) as usize];
        // Moving north overall: final hop enters from the south.
        assert_eq!(xy_arrival_port(&t, at(0, 0), at(2, 2)), Port::South);
        // Same row: pure X; arrives from the west when moving east.
        assert_eq!(xy_arrival_port(&t, at(0, 1), at(3, 1)), Port::West);
        assert_eq!(xy_arrival_port(&t, at(2, 2), at(2, 2)), Port::Local);
        assert_eq!(xy_departure_port(&t, at(0, 0), at(2, 0)), Port::East);
        assert_eq!(xy_departure_port(&t, at(1, 1), at(1, 1)), Port::Local);
    }

    #[test]
    fn turn_legality_is_xy() {
        assert!(xy_turn_legal(Port::West, Port::North)); // X then Y
        assert!(!xy_turn_legal(Port::North, Port::East)); // Y to X forbidden
        assert!(!xy_turn_legal(Port::East, Port::East)); // U-turn (in from East = moving West)
        assert!(xy_turn_legal(Port::West, Port::East)); // straight through
        assert!(xy_turn_legal(Port::Local, Port::North));
        assert!(xy_turn_legal(Port::Down, Port::East));
    }
}
