//! Adversarial verification CLI.
//!
//! ```text
//! verify campaign [--system mini|baseline|large] [--points N] [--seed-base S]
//!                 [--jobs J] [--horizon C] [--rate R] [--link-faults K]
//!                 [--throttles T] [--vcs V] [--max-cycles M]
//!                 [--schemes a,b,c] [--out DIR] [--shrink-evals E]
//! verify replay FILE
//! ```
//!
//! `campaign` sweeps seeded random (traffic, fault-plan) points, runs every
//! scheme differentially under the deadlock oracle, and — on failure —
//! shrinks the scenario to a minimal repro written as a JSON artifact that
//! `verify replay` re-executes exactly.

use std::path::PathBuf;
use std::process::ExitCode;

use upp_bench::sweep::SweepEngine;
use upp_tracetools::{PhaseTotals, ProfileSummary};
use upp_verify::scenario::{random_scenario, CampaignParams};
use upp_verify::{oracle_for, run_differential, run_scenario, shrink, Scenario};

struct CampaignOpts {
    params: CampaignParams,
    points: usize,
    seed_base: u64,
    jobs: Option<usize>,
    schemes: Vec<String>,
    out: PathBuf,
    shrink_evals: usize,
}

impl Default for CampaignOpts {
    fn default() -> Self {
        Self {
            params: CampaignParams::default(),
            points: 100,
            seed_base: 0,
            jobs: None,
            schemes: vec!["UPP".into(), "remote-control".into(), "composable".into()],
            out: PathBuf::from("verify-artifacts"),
            shrink_evals: 48,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: verify campaign [--system mini|baseline|large] [--points N] \
         [--seed-base S] [--jobs J] [--horizon C] [--rate R] [--link-faults K] \
         [--throttles T] [--vcs V] [--max-cycles M] [--schemes a,b,c] \
         [--out DIR] [--shrink-evals E]\n       verify replay FILE"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("campaign") => campaign(parse_campaign(&args[1..])),
        Some("replay") => match args.get(1) {
            Some(path) => replay(path),
            None => usage(),
        },
        _ => usage(),
    }
}

fn parse_campaign(args: &[String]) -> CampaignOpts {
    let mut o = CampaignOpts::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage()).clone();
        match flag.as_str() {
            "--system" => o.params.system = val(),
            "--points" => o.points = val().parse().unwrap_or_else(|_| usage()),
            "--seed-base" => o.seed_base = val().parse().unwrap_or_else(|_| usage()),
            "--jobs" => o.jobs = Some(val().parse().unwrap_or_else(|_| usage())),
            "--horizon" => o.params.horizon = val().parse().unwrap_or_else(|_| usage()),
            "--rate" => o.params.rate = val().parse().unwrap_or_else(|_| usage()),
            "--link-faults" => o.params.link_faults = val().parse().unwrap_or_else(|_| usage()),
            "--throttles" => o.params.throttles = val().parse().unwrap_or_else(|_| usage()),
            "--vcs" => o.params.vcs_per_vnet = val().parse().unwrap_or_else(|_| usage()),
            "--max-cycles" => o.params.max_cycles = val().parse().unwrap_or_else(|_| usage()),
            "--schemes" => o.schemes = val().split(',').map(str::to_string).collect(),
            "--out" => o.out = PathBuf::from(val()),
            "--shrink-evals" => o.shrink_evals = val().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    o
}

/// Builds the seeded scenario for one campaign point (scheme left blank;
/// the differential runner fills it per scheme).
fn point_scenario(o: &CampaignOpts, seed: u64) -> Scenario {
    random_scenario(&o.params, seed).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

fn campaign(o: CampaignOpts) -> ExitCode {
    let engine = match o.jobs {
        Some(j) => SweepEngine::new(j),
        None => SweepEngine::new(upp_bench::sweep::default_jobs()),
    };
    let seeds: Vec<u64> = (0..o.points as u64).map(|i| o.seed_base + i).collect();
    let schemes: Vec<&str> = o.schemes.iter().map(String::as_str).collect();
    eprintln!(
        "campaign: {} points on {} ({} schemes, {} jobs)",
        o.points,
        o.params.system,
        schemes.len(),
        engine.jobs()
    );
    let results = engine.map(&seeds, |_, &seed| {
        let base = point_scenario(&o, seed);
        let diff = run_differential(&base, &schemes, oracle_for(&base));
        (seed, base, diff)
    });

    // Aggregate latency attribution per scheme over the whole campaign:
    // even an all-green campaign should explain where each scheme's cycles
    // went (e.g. UPP's extra cycles sit in wait_ack/locate/pop, not in the
    // steady-state phases).
    let mut by_scheme: Vec<(String, ProfileSummary)> = Vec::new();
    for (_, _, diff) in &results {
        for report in &diff.reports {
            match by_scheme.iter_mut().find(|(s, _)| *s == report.scheme) {
                Some((_, agg)) => agg.merge(&report.profile),
                None => by_scheme.push((report.scheme.clone(), report.profile.clone())),
            }
        }
    }
    println!("latency attribution (cycles/packet over the campaign):");
    for (scheme, agg) in &by_scheme {
        let parts: Vec<String> = PhaseTotals::LABELS
            .iter()
            .zip(agg.phase_means())
            .map(|(l, m)| format!("{l} {m:.2}"))
            .collect();
        println!(
            "  {scheme:>14}: {} ({} packets, {} popups)",
            parts.join(" | "),
            agg.packets,
            agg.popups
        );
    }

    let mut failed_points = 0usize;
    let mut artifacts = Vec::new();
    for (seed, base, diff) in results {
        if diff.ok() {
            continue;
        }
        failed_points += 1;
        for f in &diff.failures {
            eprintln!("seed {seed}: {f}");
        }
        // Shrink per failing scheme and dump a replayable artifact.
        for report in &diff.reports {
            let Some(failure) = report.failure() else {
                continue;
            };
            let mut sc = base.clone();
            sc.scheme = report.scheme.clone();
            let reduced = shrink(
                &sc,
                |cand| run_scenario(cand, oracle_for(cand)).failure().is_some(),
                o.shrink_evals,
            );
            let mut minimal = reduced.scenario;
            minimal.failure = Some(failure);
            if let Err(e) = std::fs::create_dir_all(&o.out) {
                eprintln!("cannot create {}: {e}", o.out.display());
                return ExitCode::FAILURE;
            }
            let path = o.out.join(format!(
                "repro-{}-{}-s{seed}.json",
                minimal.system, minimal.scheme
            ));
            if let Err(e) = std::fs::write(&path, minimal.to_json()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!(
                "  shrunk {} traffic -> {}, {} fault events -> {} ({} evals): {}",
                reduced.traffic.0,
                reduced.traffic.1,
                reduced.faults.0,
                reduced.faults.1,
                reduced.evaluations,
                path.display()
            );
            artifacts.push(path);
        }
    }
    if failed_points == 0 {
        println!(
            "campaign OK: {} points x {} schemes, zero oracle violations, all multisets match",
            o.points,
            schemes.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "campaign FAILED: {failed_points}/{} points, {} repro artifact(s)",
            o.points,
            artifacts.len()
        );
        ExitCode::FAILURE
    }
}

fn replay(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sc = match Scenario::from_json(&text) {
        Ok(sc) => sc,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "replaying {}: system={} scheme={} seed={} traffic={} faults={}",
        path,
        sc.system,
        sc.scheme,
        sc.seed,
        sc.traffic.len(),
        sc.faults.len()
    );
    let report = run_scenario(&sc, oracle_for(&sc));
    let parts: Vec<String> = PhaseTotals::LABELS
        .iter()
        .zip(report.profile.phase_means())
        .map(|(l, m)| format!("{l} {m:.2}"))
        .collect();
    eprintln!(
        "latency attribution (cycles/packet): {} ({} packets profiled)",
        parts.join(" | "),
        report.profile.packets
    );
    match report.failure() {
        Some(f) => {
            println!("reproduced: {f}");
            ExitCode::SUCCESS
        }
        None => {
            println!(
                "did NOT reproduce: run drained healthily at cycle {}",
                report.end_cycle
            );
            ExitCode::FAILURE
        }
    }
}
