//! Replay bridge between `upp-check` counterexample artifacts and the
//! concrete simulator.
//!
//! The model checker in `crates/check` explores an *abstracted* transition
//! system of the popup protocol. Its verdicts are only trustworthy if the
//! abstraction tracks the real implementation, so every artifact it emits
//! embeds a fully concrete [`Scenario`] — the same schema family as the
//! ddmin shrinker's repro artifacts — that sets up the analogous situation
//! in the full simulator, plus the outcome class the abstract verdict
//! predicts. [`replay_artifact`] runs the scenario end to end under the
//! scheme-independent oracle and checks the prediction:
//!
//! * an abstract *violation* (a deadlock the weakened protocol never
//!   recovers, a popup livelock) must wedge concretely — the oracle
//!   convicts a persistent circular wait or the run hits its cycle bound;
//! * an abstract *clean* verdict (bounded recovery proven) must drain
//!   concretely with the delivered multiset matching the offered one.
//!
//! A mismatch in either direction means the abstraction has drifted from
//! the implementation and the model checker's proof is void — which is
//! exactly what the cross-validation tests in `crates/check` exist to
//! catch.

use serde_json::Value;

use crate::harness::{oracle_for, run_scenario, RunReport, Verdict};
use crate::scenario::Scenario;

/// Current bridge artifact format version.
pub const CHECK_ARTIFACT_VERSION: u64 = 1;

/// The outcome class an abstract verdict predicts for its concrete replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedOutcome {
    /// The protocol recovers: the concrete run drains with delivery intact.
    Recovers,
    /// The (weakened) protocol wedges: the oracle convicts or the run is
    /// still stuck at its cycle bound.
    Wedges,
}

impl ExpectedOutcome {
    /// The artifact-format label.
    pub fn label(self) -> &'static str {
        match self {
            ExpectedOutcome::Recovers => "recovers",
            ExpectedOutcome::Wedges => "wedges",
        }
    }

    /// Parses an artifact-format label.
    ///
    /// # Errors
    ///
    /// Returns `Err` for unknown labels.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "recovers" => Ok(ExpectedOutcome::Recovers),
            "wedges" => Ok(ExpectedOutcome::Wedges),
            other => Err(format!("unknown expected outcome {other:?}")),
        }
    }
}

impl std::fmt::Display for ExpectedOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One step of the abstract counterexample trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractStep {
    /// The fired transition, e.g. `"WatchdogExpire(r1)"`.
    pub transition: String,
    /// Compact rendering of the post-state.
    pub state: String,
}

/// A replayable `upp-check` verdict artifact.
#[derive(Debug, Clone)]
pub struct CheckArtifact {
    /// Artifact format version ([`CHECK_ARTIFACT_VERSION`]).
    pub version: u64,
    /// The property the verdict concerns: `"bounded-recovery"`,
    /// `"no-livelock"` or `"clean"` (both properties verified).
    pub property: String,
    /// Human-readable summary of the abstract model configuration.
    pub model: String,
    /// The protocol mutation the model ran with, if any.
    pub mutation: Option<String>,
    /// The abstract trace: transitions from the initial state to the
    /// violating state (or cycle). Empty for clean verdicts.
    pub steps: Vec<AbstractStep>,
    /// The outcome class predicted for the concrete replay.
    pub expected: ExpectedOutcome,
    /// The concrete scenario that reproduces the abstract situation.
    pub scenario: Scenario,
}

impl CheckArtifact {
    /// Renders the artifact as a JSON document (the embedded scenario is a
    /// nested object in the scenario schema, not an escaped string).
    pub fn to_json(&self) -> String {
        let scenario: Value = serde_json::from_str(&self.scenario.to_json())
            .expect("Scenario::to_json emits valid JSON");
        let steps = Value::Array(
            self.steps
                .iter()
                .map(|s| {
                    Value::Object(vec![
                        ("transition".into(), Value::String(s.transition.clone())),
                        ("state".into(), Value::String(s.state.clone())),
                    ])
                })
                .collect(),
        );
        let mut pairs = vec![
            ("version".into(), Value::U64(self.version)),
            ("kind".into(), Value::String("upp-check/artifact".into())),
            ("property".into(), Value::String(self.property.clone())),
            ("model".into(), Value::String(self.model.clone())),
        ];
        if let Some(m) = &self.mutation {
            pairs.push(("mutation".into(), Value::String(m.clone())));
        }
        pairs.push(("steps".into(), steps));
        pairs.push((
            "expected".into(),
            Value::String(self.expected.label().into()),
        ));
        pairs.push(("scenario".into(), scenario));
        let mut text =
            serde_json::to_string_pretty(&Value::Object(pairs)).expect("artifact serializes");
        text.push('\n');
        text
    }

    /// Parses an artifact from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns `Err` on malformed JSON, an unsupported version, or
    /// missing/ill-typed fields (including the embedded scenario's own
    /// validation).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("bad JSON: {e}"))?;
        let version = v
            .get("version")
            .and_then(Value::as_u64)
            .ok_or("missing \"version\"")?;
        if version != CHECK_ARTIFACT_VERSION {
            return Err(format!(
                "unsupported check artifact version {version} (this build reads {CHECK_ARTIFACT_VERSION})"
            ));
        }
        let field_str = |k: &str| -> Result<String, String> {
            Ok(v.get(k)
                .and_then(Value::as_str)
                .ok_or(format!("missing \"{k}\""))?
                .to_string())
        };
        let steps = v
            .get("steps")
            .and_then(Value::as_array)
            .ok_or("missing \"steps\"")?
            .iter()
            .map(|s| {
                Ok(AbstractStep {
                    transition: s
                        .get("transition")
                        .and_then(Value::as_str)
                        .ok_or("step missing \"transition\"")?
                        .to_string(),
                    state: s
                        .get("state")
                        .and_then(Value::as_str)
                        .ok_or("step missing \"state\"")?
                        .to_string(),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let scenario_value = v.get("scenario").ok_or("missing \"scenario\"")?;
        let scenario_text =
            serde_json::to_string(scenario_value).map_err(|e| format!("scenario subtree: {e}"))?;
        let scenario = Scenario::from_json(&scenario_text)?;
        Ok(Self {
            version,
            property: field_str("property")?,
            model: field_str("model")?,
            mutation: v
                .get("mutation")
                .and_then(Value::as_str)
                .map(str::to_string),
            steps,
            expected: ExpectedOutcome::parse(&field_str("expected")?)?,
            scenario,
        })
    }
}

/// Outcome of replaying one artifact through the concrete simulator.
#[derive(Debug, Clone)]
pub struct BridgeReport {
    /// The full concrete run report.
    pub report: RunReport,
    /// The outcome class the concrete run actually landed in.
    pub concrete: ExpectedOutcome,
    /// True when the concrete outcome matches the abstract prediction.
    pub confirmed: bool,
}

impl BridgeReport {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        let verdict = match &self.report.verdict {
            Verdict::Drained { at } => format!("drained at cycle {at}"),
            Verdict::OracleViolation(v) => format!("oracle violation: {v}"),
            Verdict::Stuck {
                in_flight,
                last_progress,
            } => format!("stuck with {in_flight} in flight (last progress {last_progress})"),
        };
        format!(
            "{} — concrete outcome `{}` {} the abstract prediction",
            verdict,
            self.concrete,
            if self.confirmed {
                "confirms"
            } else {
                "CONTRADICTS"
            }
        )
    }
}

/// Classifies a concrete run report into the bridge's outcome classes.
///
/// `Recovers` requires a clean drain *and* intact end-to-end delivery; any
/// failure mode — oracle conviction, cycle-bound exhaustion, or a
/// delivered-multiset mismatch — counts as `Wedges`.
pub fn classify(report: &RunReport) -> ExpectedOutcome {
    match (&report.verdict, report.failure()) {
        (Verdict::Drained { .. }, None) => ExpectedOutcome::Recovers,
        _ => ExpectedOutcome::Wedges,
    }
}

/// Replays an artifact's embedded scenario through the concrete simulator
/// and checks the abstract prediction.
pub fn replay_artifact(artifact: &CheckArtifact) -> BridgeReport {
    let report = run_scenario(&artifact.scenario, oracle_for(&artifact.scenario));
    let concrete = classify(&report);
    BridgeReport {
        confirmed: concrete == artifact.expected,
        concrete,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{random_scenario, CampaignParams};

    fn sample_artifact() -> CheckArtifact {
        let mut sc = random_scenario(&CampaignParams::default(), 3).expect("valid");
        sc.scheme = "UPP".into();
        CheckArtifact {
            version: CHECK_ARTIFACT_VERSION,
            property: "bounded-recovery".into(),
            model: "routers=2 queue_depth=2".into(),
            mutation: Some("never-expire-watchdog".into()),
            steps: vec![
                AbstractStep {
                    transition: "Inject(r0, d1)".into(),
                    state: "q0=[1] q1=[]".into(),
                },
                AbstractStep {
                    transition: "Hop(r0)".into(),
                    state: "q0=[] q1=[1]".into(),
                },
            ],
            expected: ExpectedOutcome::Recovers,
            scenario: sc,
        }
    }

    #[test]
    fn artifact_json_round_trips() {
        let a = sample_artifact();
        let json = a.to_json();
        let back = CheckArtifact::from_json(&json).expect("parses");
        assert_eq!(back.version, a.version);
        assert_eq!(back.property, a.property);
        assert_eq!(back.model, a.model);
        assert_eq!(back.mutation, a.mutation);
        assert_eq!(back.steps, a.steps);
        assert_eq!(back.expected, a.expected);
        assert_eq!(back.scenario.scheme, a.scenario.scheme);
        assert_eq!(back.scenario.traffic, a.scenario.traffic);
        assert_eq!(back.scenario.faults, a.scenario.faults);
    }

    #[test]
    fn version_and_field_validation() {
        let a = sample_artifact();
        let json = a.to_json().replace("\"version\": 1", "\"version\": 99");
        assert!(CheckArtifact::from_json(&json)
            .unwrap_err()
            .contains("version"));
        assert!(CheckArtifact::from_json("{}").is_err());
        assert!(CheckArtifact::from_json("not json").is_err());
    }

    #[test]
    fn expected_outcome_labels_round_trip() {
        for e in [ExpectedOutcome::Recovers, ExpectedOutcome::Wedges] {
            assert_eq!(ExpectedOutcome::parse(e.label()), Ok(e));
        }
        assert!(ExpectedOutcome::parse("explodes").is_err());
    }
}
