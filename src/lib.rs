//! # upp — Upward Packet Popup for Deadlock Freedom in Modular Chiplet-Based Systems
//!
//! Facade crate re-exporting the whole reproduction:
//!
//! * [`noc`] — the cycle-accurate chiplet/interposer NoC substrate;
//! * [`core`] — UPP itself (detection + popup recovery);
//! * [`baselines`] — composable routing, remote control, unprotected;
//! * [`workloads`] — synthetic traffic, the MESI-style coherence engine,
//!   sweep runner, energy and area models.
//!
//! See the `examples/` directory for runnable entry points and
//! `EXPERIMENTS.md` for the paper-vs-measured comparison.

#![warn(missing_docs)]

pub use upp_baselines as baselines;
pub use upp_core as core;
pub use upp_noc as noc;
pub use upp_workloads as workloads;
