//! Observability: flight-recorder tracing, epoch metrics, and deadlock
//! forensics.
//!
//! Three pillars, all strictly opt-in:
//!
//! * **Flight recorder** — a [`Tracer`] attached to the network records
//!   typed [`TraceEvent`]s covering the full packet lifecycle (creation,
//!   injection, per-hop VC allocation, blocked-on-{credit, VC, switch}
//!   stalls, bypass pops, ejection), control-signal hops with their Fig. 4
//!   fields, and UPP popup spans from detection to completion. Sinks:
//!   nothing ([`TraceSink::Disabled`]), a bounded in-memory ring buffer, a
//!   JSONL stream, or a Chrome trace-event buffer loadable in
//!   `chrome://tracing` / Perfetto. With the sink disabled every hook is a
//!   single branch on [`Tracer::enabled`] — the simulation stays
//!   cycle-for-cycle identical (see `benches/trace_overhead.rs` and the
//!   `trace_determinism` integration test).
//! * **Epoch metrics** — a [`MetricsSampler`] snapshots injection/ejection
//!   rates, in-flight population, per-link flit utilization and per-router
//!   buffer/control-queue occupancy every K cycles into a serde-serializable
//!   time series with a CSV renderer.
//! * **Deadlock forensics** — [`StallReport`]
//!   (built by [`crate::network::Network::stall_report`]) names every wedged
//!   packet, its per-VC "holds X, waits on Y" chain, and the circular wait
//!   extracted through the [`crate::routing::GlobalCdg`] machinery.

use crate::control::{ControlClass, ControlRoute};
use crate::ids::{Cycle, NodeId, PacketId, Port, VnetId};
use crate::profile::SpanRecorder;
use crate::routing::GlobalChannel;
use serde::Serialize;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write;

// --------------------------------------------------------------- events

/// Renders a string as a JSON string literal (quotes included) through the
/// serde_json writer, so quotes, backslashes and control characters are
/// escaped exactly as a conforming serializer would.
fn json_str(s: &str) -> String {
    serde_json::to_string(&s).expect("string serialization is infallible")
}

/// Why a buffered head-of-line flit failed to advance this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BlockReason {
    /// The allocated downstream VC has no credits left.
    Credit,
    /// No free downstream VC exists in the packet's VNet.
    VcAlloc,
    /// The flit bid but lost switch allocation to another input.
    SwitchAlloc,
}

impl BlockReason {
    fn label(self) -> &'static str {
        match self {
            BlockReason::Credit => "credit",
            BlockReason::VcAlloc => "vc",
            BlockReason::SwitchAlloc => "sa",
        }
    }
}

/// One recorded observation. Every variant carries the cycle it happened at
/// and enough identity to reconstruct a packet's path after the fact.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TraceEvent {
    /// A packet was enqueued at its source NI.
    PacketCreated {
        /// Cycle of the observation.
        at: Cycle,
        /// The packet.
        packet: PacketId,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dest: NodeId,
        /// VNet.
        vnet: VnetId,
        /// Length in flits.
        len_flits: u16,
    },
    /// A packet's head flit left its source NI into the network.
    PacketInjected {
        /// Cycle of the observation.
        at: Cycle,
        /// The packet.
        packet: PacketId,
        /// Injecting node.
        node: NodeId,
    },
    /// A packet was fully assembled at its destination NI.
    PacketEjected {
        /// Cycle of the observation.
        at: Cycle,
        /// The packet.
        packet: PacketId,
        /// Ejecting node.
        node: NodeId,
        /// Inject-to-eject latency in cycles.
        net_latency: u64,
        /// Create-to-eject latency in cycles.
        total_latency: u64,
    },
    /// A head flit won switch allocation and was assigned a downstream VC.
    VcAllocated {
        /// Cycle of the observation.
        at: Cycle,
        /// The packet.
        packet: PacketId,
        /// Router performing the allocation.
        node: NodeId,
        /// Input port the flit sits on.
        in_port: Port,
        /// Flat input VC index.
        vc_flat: usize,
        /// Output port granted.
        out_port: Port,
        /// Flat downstream VC index granted.
        out_vc: usize,
    },
    /// A buffered head-of-line flit could not advance this cycle.
    Blocked {
        /// Cycle of the observation.
        at: Cycle,
        /// The stalled packet.
        packet: PacketId,
        /// Router it is stalled at.
        node: NodeId,
        /// Input port of the stalled VC.
        in_port: Port,
        /// Flat input VC index.
        vc_flat: usize,
        /// Output port the flit wants (when route computation has run).
        out_port: Option<Port>,
        /// Why it could not advance.
        reason: BlockReason,
    },
    /// A flit was popped out of an input VC into the bypass latch (the
    /// popup transmission of Sec. V-C).
    BypassPop {
        /// Cycle of the observation.
        at: Cycle,
        /// The popped packet.
        packet: PacketId,
        /// Router popping the flit.
        node: NodeId,
        /// Input port the flit was buffered on.
        in_port: Port,
        /// Flat input VC index.
        vc_flat: usize,
        /// Output port of the bypass circuit.
        out_port: Port,
    },
    /// An upward flit crossed a router through the single-ST bypass path.
    BypassHop {
        /// Cycle of the observation.
        at: Cycle,
        /// The upward packet.
        packet: PacketId,
        /// Router traversed.
        node: NodeId,
        /// Port the flit left through.
        out_port: Port,
    },
    /// A control signal won switch allocation and traversed a link
    /// (Fig. 4 fields: class, raw 32-bit encoding, VNet, origin).
    ControlHop {
        /// Cycle of the observation.
        at: Cycle,
        /// Router the signal left.
        node: NodeId,
        /// Port it left through.
        out_port: Port,
        /// Req-like or ack-like buffer class.
        class: ControlClass,
        /// The raw Fig. 4 bit encoding.
        bits: u32,
        /// VNet the signal serves.
        vnet: VnetId,
        /// Interposer router that originated the protocol exchange.
        origin: NodeId,
        /// Forward (routed) or reverse (circuit-following) traversal.
        routing: ControlRoute,
    },
    /// A UPP popup state machine changed stage at an interposer router.
    PopupStage {
        /// Cycle of the observation.
        at: Cycle,
        /// Interposer router owning the state machine.
        node: NodeId,
        /// VNet of the popup.
        vnet: VnetId,
        /// Selected upward packet, when one is bound.
        packet: Option<PacketId>,
        /// Stage left.
        from: &'static str,
        /// Stage entered.
        to: &'static str,
    },
    /// A completed popup, with its per-stage latency decomposition.
    PopupSpan {
        /// Interposer router that ran the popup.
        node: NodeId,
        /// VNet of the popup.
        vnet: VnetId,
        /// The recovered packet.
        packet: PacketId,
        /// Cycle detection selected the packet.
        detected_at: Cycle,
        /// Cycle the tail flit finished popping.
        completed_at: Cycle,
        /// Cycles spent waiting for the `UPP_ack`.
        wait_ack: u64,
        /// Cycles spent locating a partly-transmitted head (0 for full
        /// popups).
        locate: u64,
        /// Cycles spent popping flits through the bypass path.
        pop: u64,
    },
}

impl TraceEvent {
    /// Cycle the event was recorded at (span events report their start).
    pub fn at(&self) -> Cycle {
        match *self {
            TraceEvent::PacketCreated { at, .. }
            | TraceEvent::PacketInjected { at, .. }
            | TraceEvent::PacketEjected { at, .. }
            | TraceEvent::VcAllocated { at, .. }
            | TraceEvent::Blocked { at, .. }
            | TraceEvent::BypassPop { at, .. }
            | TraceEvent::BypassHop { at, .. }
            | TraceEvent::ControlHop { at, .. }
            | TraceEvent::PopupStage { at, .. } => at,
            TraceEvent::PopupSpan { detected_at, .. } => detected_at,
        }
    }

    /// Short event name (the Chrome trace `name` field).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::PacketCreated { .. } => "packet_created",
            TraceEvent::PacketInjected { .. } => "packet_injected",
            TraceEvent::PacketEjected { .. } => "packet_ejected",
            TraceEvent::VcAllocated { .. } => "vc_allocated",
            TraceEvent::Blocked { .. } => "blocked",
            TraceEvent::BypassPop { .. } => "bypass_pop",
            TraceEvent::BypassHop { .. } => "bypass_hop",
            TraceEvent::ControlHop { .. } => "control_hop",
            TraceEvent::PopupStage { .. } => "popup_stage",
            TraceEvent::PopupSpan { .. } => "popup_span",
        }
    }

    /// Node the event is attributed to (the Chrome trace `tid`), when any.
    pub fn node(&self) -> Option<NodeId> {
        match *self {
            TraceEvent::PacketCreated { src, .. } => Some(src),
            TraceEvent::PacketInjected { node, .. }
            | TraceEvent::PacketEjected { node, .. }
            | TraceEvent::VcAllocated { node, .. }
            | TraceEvent::Blocked { node, .. }
            | TraceEvent::BypassPop { node, .. }
            | TraceEvent::BypassHop { node, .. }
            | TraceEvent::ControlHop { node, .. }
            | TraceEvent::PopupStage { node, .. }
            | TraceEvent::PopupSpan { node, .. } => Some(node),
        }
    }

    /// Renders the event's payload as a JSON object (the Chrome trace
    /// `args` field and the JSONL line body). Numbers are hand-rendered so
    /// the tracer needs no serializer in its hot path, but every string
    /// field goes through the serde_json writer's escaping
    /// ([`json_str`]) — stage labels and port names can never corrupt the
    /// output, however hostile their contents.
    pub fn args_json(&self) -> String {
        fn opt_port(p: Option<Port>) -> String {
            match p {
                Some(p) => json_str(&p.to_string()),
                None => "null".into(),
            }
        }
        fn port(p: Port) -> String {
            json_str(&p.to_string())
        }
        match *self {
            TraceEvent::PacketCreated { at, packet, src, dest, vnet, len_flits } => format!(
                "{{\"at\":{at},\"packet\":{},\"src\":{},\"dest\":{},\"vnet\":{},\"len_flits\":{len_flits}}}",
                packet.0, src.0, dest.0, vnet.0
            ),
            TraceEvent::PacketInjected { at, packet, node } => {
                format!("{{\"at\":{at},\"packet\":{},\"node\":{}}}", packet.0, node.0)
            }
            TraceEvent::PacketEjected { at, packet, node, net_latency, total_latency } => format!(
                "{{\"at\":{at},\"packet\":{},\"node\":{},\"net_latency\":{net_latency},\"total_latency\":{total_latency}}}",
                packet.0, node.0
            ),
            TraceEvent::VcAllocated { at, packet, node, in_port, vc_flat, out_port, out_vc } => format!(
                "{{\"at\":{at},\"packet\":{},\"node\":{},\"in_port\":{},\"vc_flat\":{vc_flat},\"out_port\":{},\"out_vc\":{out_vc}}}",
                packet.0, node.0, port(in_port), port(out_port)
            ),
            TraceEvent::Blocked { at, packet, node, in_port, vc_flat, out_port, reason } => format!(
                "{{\"at\":{at},\"packet\":{},\"node\":{},\"in_port\":{},\"vc_flat\":{vc_flat},\"out_port\":{},\"reason\":{}}}",
                packet.0, node.0, port(in_port), opt_port(out_port), json_str(reason.label())
            ),
            TraceEvent::BypassPop { at, packet, node, in_port, vc_flat, out_port } => format!(
                "{{\"at\":{at},\"packet\":{},\"node\":{},\"in_port\":{},\"vc_flat\":{vc_flat},\"out_port\":{}}}",
                packet.0, node.0, port(in_port), port(out_port)
            ),
            TraceEvent::BypassHop { at, packet, node, out_port } => format!(
                "{{\"at\":{at},\"packet\":{},\"node\":{},\"out_port\":{}}}",
                packet.0, node.0, port(out_port)
            ),
            TraceEvent::ControlHop { at, node, out_port, class, bits, vnet, origin, routing } => format!(
                "{{\"at\":{at},\"node\":{},\"out_port\":{},\"class\":{},\"bits\":{bits},\"vnet\":{},\"origin\":{},\"routing\":{}}}",
                node.0,
                port(out_port),
                json_str(match class {
                    ControlClass::ReqLike => "req",
                    ControlClass::AckLike => "ack",
                }),
                vnet.0,
                origin.0,
                json_str(match routing {
                    ControlRoute::Forward => "forward",
                    ControlRoute::Reverse => "reverse",
                }),
            ),
            TraceEvent::PopupStage { at, node, vnet, packet, from, to } => format!(
                "{{\"at\":{at},\"node\":{},\"vnet\":{},\"packet\":{},\"from\":{},\"to\":{}}}",
                node.0,
                vnet.0,
                match packet {
                    Some(p) => p.0.to_string(),
                    None => "null".into(),
                },
                json_str(from),
                json_str(to),
            ),
            TraceEvent::PopupSpan { node, vnet, packet, detected_at, completed_at, wait_ack, locate, pop } => format!(
                "{{\"node\":{},\"vnet\":{},\"packet\":{},\"detected_at\":{detected_at},\"completed_at\":{completed_at},\"wait_ack\":{wait_ack},\"locate\":{locate},\"pop\":{pop}}}",
                node.0, vnet.0, packet.0
            ),
        }
    }

    /// Renders the event as one self-contained JSONL line (no trailing
    /// newline).
    pub fn jsonl(&self) -> String {
        format!(
            "{{\"event\":{},\"args\":{}}}",
            json_str(self.name()),
            self.args_json()
        )
    }

    /// Renders the event as one Chrome trace-event object. Instant events
    /// use phase `"i"`; [`TraceEvent::PopupSpan`] becomes a complete
    /// (`"X"`) event with its duration. One simulated cycle maps to one
    /// microsecond of trace time.
    pub fn chrome_json(&self) -> String {
        let tid = self.node().map(|n| n.0).unwrap_or(0);
        match *self {
            TraceEvent::PopupSpan { detected_at, completed_at, .. } => format!(
                "{{\"name\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{tid},\"args\":{}}}",
                json_str(self.name()),
                detected_at,
                completed_at.saturating_sub(detected_at).max(1),
                self.args_json()
            ),
            _ => format!(
                "{{\"name\":{},\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{tid},\"s\":\"t\",\"args\":{}}}",
                json_str(self.name()),
                self.at(),
                self.args_json()
            ),
        }
    }
}

// --------------------------------------------------------------- tracer

/// Where recorded events go.
pub enum TraceSink {
    /// Record nothing; every hook reduces to one predictable branch.
    Disabled,
    /// Keep the most recent events in a bounded in-memory ring buffer.
    Ring {
        /// Maximum number of retained events (oldest are dropped first).
        capacity: usize,
    },
    /// Stream each event as one JSON line to a writer.
    Jsonl(Box<dyn Write + Send>),
    /// Buffer everything for a Chrome trace-event JSON export
    /// ([`Tracer::chrome_trace_json`]).
    Chrome,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceSink::Disabled => f.write_str("Disabled"),
            TraceSink::Ring { capacity } => write!(f, "Ring({capacity})"),
            TraceSink::Jsonl(_) => f.write_str("Jsonl(..)"),
            TraceSink::Chrome => f.write_str("Chrome"),
        }
    }
}

enum SinkState {
    Disabled,
    Ring {
        capacity: usize,
        buf: VecDeque<TraceEvent>,
        dropped: u64,
    },
    Jsonl {
        out: Box<dyn Write + Send>,
        written: u64,
    },
    Chrome {
        buf: Vec<TraceEvent>,
    },
    /// Unbounded in-order buffer used by the sharded kernel: each shard
    /// records into its own capture tracer, and the merge step replays the
    /// buffers into the real tracer in canonical order.
    Capture {
        buf: Vec<TraceEvent>,
    },
}

/// The flight recorder. Owned by [`crate::network::Network`]; disabled by
/// default.
///
/// Besides the event sink, a [`SpanRecorder`] can ride along (see
/// [`Tracer::set_profiler`]): it observes every recorded event and folds
/// the stream into per-packet latency spans. A profiler alone (sink
/// disabled) turns [`Tracer::enabled`] on, so the instrumentation sites
/// feed it without any extra branches.
pub struct Tracer {
    state: SinkState,
    profiler: Option<Box<SpanRecorder>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (kind, len) = match &self.state {
            SinkState::Disabled => ("disabled", 0),
            SinkState::Ring { buf, .. } => ("ring", buf.len()),
            SinkState::Jsonl { written, .. } => ("jsonl", *written as usize),
            SinkState::Chrome { buf } => ("chrome", buf.len()),
            SinkState::Capture { buf } => ("capture", buf.len()),
        };
        f.debug_struct("Tracer")
            .field("sink", &kind)
            .field("events", &len)
            .field("profiling", &self.profiler.is_some())
            .finish()
    }
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Self {
            state: SinkState::Disabled,
            profiler: None,
        }
    }

    /// Builds a tracer over the given sink.
    pub fn new(sink: TraceSink) -> Self {
        let state = match sink {
            TraceSink::Disabled => SinkState::Disabled,
            TraceSink::Ring { capacity } => SinkState::Ring {
                capacity: capacity.max(1),
                buf: VecDeque::new(),
                dropped: 0,
            },
            TraceSink::Jsonl(out) => SinkState::Jsonl { out, written: 0 },
            TraceSink::Chrome => SinkState::Chrome { buf: Vec::new() },
        };
        Self {
            state,
            profiler: None,
        }
    }

    /// A tracer with no sink but a fresh span recorder: events feed the
    /// per-packet latency profiler and are otherwise discarded.
    pub fn profiling() -> Self {
        let mut t = Self::disabled();
        t.profiler = Some(Box::new(SpanRecorder::new()));
        t
    }

    /// A ring-buffer tracer holding the latest `capacity` events.
    pub fn ring(capacity: usize) -> Self {
        Self::new(TraceSink::Ring { capacity })
    }

    /// A streaming JSONL tracer.
    pub fn jsonl(out: Box<dyn Write + Send>) -> Self {
        Self::new(TraceSink::Jsonl(out))
    }

    /// A Chrome trace-event tracer (export with
    /// [`Tracer::chrome_trace_json`]).
    pub fn chrome() -> Self {
        Self::new(TraceSink::Chrome)
    }

    /// A capture tracer for shard-local recording: events buffer in order
    /// and are later replayed into the real tracer via
    /// [`Tracer::drain_captured`].
    pub(crate) fn capture() -> Self {
        Self {
            state: SinkState::Capture { buf: Vec::new() },
            profiler: None,
        }
    }

    /// Takes the events buffered by a capture tracer (empty for every other
    /// sink), leaving the buffer's allocation in place for reuse.
    pub(crate) fn drain_captured(&mut self) -> Vec<TraceEvent> {
        match &mut self.state {
            SinkState::Capture { buf } => std::mem::take(buf),
            _ => Vec::new(),
        }
    }

    /// Hands a drained capture buffer back so its allocation is reused on
    /// the next cycle (no-op for other sinks).
    pub(crate) fn recycle_captured(&mut self, mut spare: Vec<TraceEvent>) {
        if let SinkState::Capture { buf } = &mut self.state {
            if buf.is_empty() && spare.capacity() > buf.capacity() {
                spare.clear();
                *buf = spare;
            }
        }
    }

    /// True when events are being recorded (a sink is armed or a profiler
    /// is installed). Instrumentation sites branch on this before building
    /// event payloads, so a disabled tracer costs one predictable branch
    /// per site.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.profiler.is_some() || !matches!(self.state, SinkState::Disabled)
    }

    /// Installs (or removes) the per-packet span recorder, returning the
    /// previous one with whatever it has accumulated.
    pub fn set_profiler(
        &mut self,
        profiler: Option<Box<SpanRecorder>>,
    ) -> Option<Box<SpanRecorder>> {
        std::mem::replace(&mut self.profiler, profiler)
    }

    /// The installed span recorder, when any.
    pub fn profiler(&self) -> Option<&SpanRecorder> {
        self.profiler.as_deref()
    }

    /// Mutable access to the installed span recorder (drivers drain
    /// finished spans through this).
    pub fn profiler_mut(&mut self) -> Option<&mut SpanRecorder> {
        self.profiler.as_deref_mut()
    }

    /// Records one event (no-op when disabled).
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        if let Some(p) = &mut self.profiler {
            p.observe(&ev);
        }
        match &mut self.state {
            SinkState::Disabled => {}
            SinkState::Ring {
                capacity,
                buf,
                dropped,
            } => {
                if buf.len() == *capacity {
                    buf.pop_front();
                    *dropped += 1;
                }
                buf.push_back(ev);
            }
            SinkState::Jsonl { out, written } => {
                let _ = writeln!(out, "{}", ev.jsonl());
                *written += 1;
            }
            SinkState::Chrome { buf } => buf.push(ev),
            SinkState::Capture { buf } => buf.push(ev),
        }
    }

    /// Number of events currently retained (ring/Chrome) or written so far
    /// (JSONL).
    pub fn len(&self) -> usize {
        match &self.state {
            SinkState::Disabled => 0,
            SinkState::Ring { buf, .. } => buf.len(),
            SinkState::Jsonl { written, .. } => *written as usize,
            SinkState::Chrome { buf } => buf.len(),
            SinkState::Capture { buf } => buf.len(),
        }
    }

    /// True when no events have been retained or written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped from the ring buffer so far (0 for other sinks).
    pub fn dropped(&self) -> u64 {
        match &self.state {
            SinkState::Ring { dropped, .. } => *dropped,
            _ => 0,
        }
    }

    /// Iterates the retained events, oldest first (ring and Chrome sinks;
    /// empty for disabled/JSONL).
    pub fn events(&self) -> Box<dyn Iterator<Item = &TraceEvent> + '_> {
        match &self.state {
            SinkState::Ring { buf, .. } => Box::new(buf.iter()),
            SinkState::Chrome { buf } => Box::new(buf.iter()),
            _ => Box::new(std::iter::empty()),
        }
    }

    /// Flushes a streaming sink.
    pub fn flush(&mut self) {
        if let SinkState::Jsonl { out, .. } = &mut self.state {
            let _ = out.flush();
        }
    }

    /// Renders the retained events as a complete Chrome trace-event JSON
    /// document (the `{"traceEvents": [...]}` object format understood by
    /// `chrome://tracing` and Perfetto). Works for the Chrome and ring
    /// sinks; a disabled or streaming tracer yields an empty trace.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, ev) in self.events().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&ev.chrome_json());
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

// -------------------------------------------------------- epoch metrics

/// One epoch's worth of aggregate network state, sampled by
/// [`MetricsSampler`]. Rates are per cycle over the epoch; occupancies are
/// instantaneous at the sample cycle.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Sample cycle.
    pub cycle: Cycle,
    /// Cycles covered by this epoch.
    pub epoch_cycles: u64,
    /// Packets created during the epoch.
    pub packets_created: u64,
    /// Packets ejected during the epoch.
    pub packets_ejected: u64,
    /// Flits injected during the epoch.
    pub flits_injected: u64,
    /// Flits ejected during the epoch.
    pub flits_ejected: u64,
    /// Injected flits per cycle per endpoint over the epoch.
    pub injection_rate: f64,
    /// Ejected flits per cycle per endpoint over the epoch.
    pub ejection_rate: f64,
    /// Packets in flight at the sample cycle.
    pub in_flight: usize,
    /// Total flits buffered in router input VCs at the sample cycle.
    pub buffered_flits: usize,
    /// Largest per-router buffered-flit count at the sample cycle.
    pub max_router_occupancy: usize,
    /// Total req/stop control-buffer occupancy at the sample cycle.
    pub req_buf_total: usize,
    /// Largest per-router req/stop buffer occupancy.
    pub req_buf_max: usize,
    /// Total ack control-buffer occupancy at the sample cycle.
    pub ack_buf_total: usize,
    /// Largest per-router ack buffer occupancy.
    pub ack_buf_max: usize,
    /// Mean flits per cycle over all links during the epoch.
    pub mean_link_util: f64,
    /// Largest per-link flits-per-cycle during the epoch.
    pub max_link_util: f64,
    /// UPP wait-ack stage cycles accumulated during the epoch (from the
    /// scheme's stage counters via [`MetricsSampler::set_upp_probe`]; zero
    /// when no probe is installed).
    pub upp_wait_ack_cycles: u64,
    /// UPP locate stage cycles accumulated during the epoch.
    pub upp_locate_cycles: u64,
    /// UPP pop stage cycles accumulated during the epoch.
    pub upp_pop_cycles: u64,
    /// Per-router buffered flits at the sample cycle (dense by node id).
    pub router_occupancy: Vec<usize>,
    /// Per-link flits moved during the epoch, flat-indexed
    /// `node * Port::COUNT + port` (same layout as
    /// [`crate::stats::NetStats::link_flits`]).
    pub link_flits: Vec<u64>,
}

/// Schema tag of [`MetricsSampler::to_csv`] output, emitted as the first
/// line (`# schema: upp-metrics/v1`). Bump the version whenever columns
/// change meaning or order so downstream tooling rejects stale files
/// instead of silently misreading them (the same contract as the sweep
/// journal's config fingerprint).
pub const METRICS_SCHEMA: &str = "upp-metrics/v1";

/// Columns of [`MetricsSampler::to_csv`].
pub const METRICS_CSV_HEADER: &str = "cycle,epoch_cycles,packets_created,packets_ejected,\
flits_injected,flits_ejected,injection_rate,ejection_rate,in_flight,buffered_flits,\
max_router_occupancy,req_buf_total,ack_buf_total,mean_link_util,max_link_util,\
upp_wait_ack_cycles,upp_locate_cycles,upp_pop_cycles";

/// Checks that `content` is a metrics CSV produced by the current schema:
/// the schema line and the column header must both match exactly.
///
/// # Errors
///
/// Returns a human-readable reason when the file is missing the schema
/// line, was written by a different schema version, or carries a different
/// column set.
pub fn validate_metrics_csv(content: &str) -> Result<(), String> {
    let mut lines = content.lines();
    let schema = lines.next().unwrap_or("");
    let expected = format!("# schema: {METRICS_SCHEMA}");
    if schema != expected {
        return Err(format!(
            "stale or foreign metrics CSV: first line is {schema:?}, expected {expected:?}"
        ));
    }
    let header = lines.next().unwrap_or("");
    if header != METRICS_CSV_HEADER {
        return Err(format!(
            "metrics CSV column mismatch: got {header:?}, expected {METRICS_CSV_HEADER:?}"
        ));
    }
    Ok(())
}

/// Reads the scheme's cumulative UPP stage counters as
/// `[wait_ack, locate, pop]` total cycles. The sampler differences
/// consecutive reads into per-epoch deltas, so the closure just returns the
/// running totals (e.g. from `UppStats`).
pub type UppStageProbe = std::sync::Arc<dyn Fn() -> [u64; 3] + Send + Sync>;

/// Samples epoch metrics every K cycles into a time series.
#[derive(Clone)]
pub struct MetricsSampler {
    every: u64,
    endpoints: usize,
    last_cycle: Cycle,
    last_packets_created: u64,
    last_packets_ejected: u64,
    last_flits_injected: u64,
    last_flits_ejected: u64,
    last_link_flits: Vec<u64>,
    last_upp: [u64; 3],
    upp_probe: Option<UppStageProbe>,
    history: Vec<MetricsSnapshot>,
}

impl std::fmt::Debug for MetricsSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsSampler")
            .field("every", &self.every)
            .field("endpoints", &self.endpoints)
            .field("samples", &self.history.len())
            .field("upp_probe", &self.upp_probe.is_some())
            .finish()
    }
}

impl MetricsSampler {
    /// Creates a sampler with epoch length `every` cycles; rates are
    /// normalised over `endpoints` injecting nodes (see
    /// [`crate::topology::Topology::num_endpoints`]).
    pub fn new(every: u64, endpoints: usize) -> Self {
        Self {
            every: every.max(1),
            endpoints: endpoints.max(1),
            last_cycle: 0,
            last_packets_created: 0,
            last_packets_ejected: 0,
            last_flits_injected: 0,
            last_flits_ejected: 0,
            last_link_flits: Vec::new(),
            last_upp: [0; 3],
            upp_probe: None,
            history: Vec::new(),
        }
    }

    /// Installs a probe for the scheme's cumulative UPP stage counters so
    /// epoch snapshots carry per-epoch wait-ack/locate/pop cycle deltas.
    /// The `noc` crate does not know any scheme's stats type, so callers
    /// (e.g. the `simulate` CLI) adapt their `UppStats` behind this closure.
    pub fn set_upp_probe(&mut self, probe: UppStageProbe) {
        self.last_upp = probe();
        self.upp_probe = Some(probe);
    }

    /// Epoch length in cycles.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Samples now if the network's cycle is on an epoch boundary that has
    /// not been sampled yet. Call once per simulated cycle.
    pub fn maybe_sample(&mut self, net: &crate::network::Network) -> bool {
        let c = net.cycle();
        if c == 0 || !c.is_multiple_of(self.every) || c == self.last_cycle {
            return false;
        }
        self.sample(net);
        true
    }

    /// Takes a snapshot unconditionally.
    pub fn sample(&mut self, net: &crate::network::Network) {
        let stats = net.stats();
        let cycle = net.cycle();
        let epoch_cycles = cycle.saturating_sub(self.last_cycle).max(1);

        let mut buffered_flits = 0usize;
        let mut max_router_occupancy = 0usize;
        let mut router_occupancy = Vec::with_capacity(net.topo().num_nodes());
        let (mut req_total, mut req_max, mut ack_total, mut ack_max) = (0, 0, 0, 0);
        for n in net.topo().nodes() {
            let r = net.router(n.id);
            let occ: usize = r.input_vcs().map(|(p, f)| r.vc_buf_len(p, f)).sum();
            buffered_flits += occ;
            max_router_occupancy = max_router_occupancy.max(occ);
            router_occupancy.push(occ);
            req_total += r.req_buf_len();
            req_max = req_max.max(r.req_buf_len());
            ack_total += r.ack_buf_len();
            ack_max = ack_max.max(r.ack_buf_len());
        }

        let cur_links = stats.link_flits.clone();
        let mut link_flits = cur_links.clone();
        for (i, v) in link_flits.iter_mut().enumerate() {
            *v -= self.last_link_flits.get(i).copied().unwrap_or(0);
        }
        let active_links = link_flits.iter().filter(|&&v| v > 0).count().max(1);
        let moved: u64 = link_flits.iter().sum();
        let mean_link_util = moved as f64 / active_links as f64 / epoch_cycles as f64;
        let max_link_util =
            link_flits.iter().copied().max().unwrap_or(0) as f64 / epoch_cycles as f64;

        let flits_injected = stats.flits_injected - self.last_flits_injected;
        let flits_ejected = stats.flits_ejected - self.last_flits_ejected;
        let cur_upp = self.upp_probe.as_ref().map(|p| p()).unwrap_or([0; 3]);
        let upp_delta = [
            cur_upp[0].saturating_sub(self.last_upp[0]),
            cur_upp[1].saturating_sub(self.last_upp[1]),
            cur_upp[2].saturating_sub(self.last_upp[2]),
        ];
        let snap = MetricsSnapshot {
            cycle,
            epoch_cycles,
            packets_created: stats.packets_created - self.last_packets_created,
            packets_ejected: stats.packets_ejected - self.last_packets_ejected,
            flits_injected,
            flits_ejected,
            injection_rate: flits_injected as f64 / epoch_cycles as f64 / self.endpoints as f64,
            ejection_rate: flits_ejected as f64 / epoch_cycles as f64 / self.endpoints as f64,
            in_flight: net.in_flight(),
            buffered_flits,
            max_router_occupancy,
            req_buf_total: req_total,
            req_buf_max: req_max,
            ack_buf_total: ack_total,
            ack_buf_max: ack_max,
            mean_link_util,
            max_link_util,
            upp_wait_ack_cycles: upp_delta[0],
            upp_locate_cycles: upp_delta[1],
            upp_pop_cycles: upp_delta[2],
            router_occupancy,
            link_flits,
        };
        self.last_upp = cur_upp;
        self.last_cycle = cycle;
        self.last_packets_created = stats.packets_created;
        self.last_packets_ejected = stats.packets_ejected;
        self.last_flits_injected = stats.flits_injected;
        self.last_flits_ejected = stats.flits_ejected;
        self.last_link_flits = cur_links;
        self.history.push(snap);
    }

    /// The sampled time series, oldest first.
    pub fn history(&self) -> &[MetricsSnapshot] {
        &self.history
    }

    /// Renders the summary columns of the time series as CSV: a
    /// `# schema:` line ([`METRICS_SCHEMA`]), the [`METRICS_CSV_HEADER`]
    /// column header, then one row per sample. Readers should gate on
    /// [`validate_metrics_csv`] before parsing.
    pub fn to_csv(&self) -> String {
        let mut out = format!("# schema: {METRICS_SCHEMA}\n");
        out.push_str(METRICS_CSV_HEADER);
        out.push('\n');
        for s in &self.history {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{:.6},{:.6},{},{},{},{},{},{:.6},{:.6},{},{},{}",
                s.cycle,
                s.epoch_cycles,
                s.packets_created,
                s.packets_ejected,
                s.flits_injected,
                s.flits_ejected,
                s.injection_rate,
                s.ejection_rate,
                s.in_flight,
                s.buffered_flits,
                s.max_router_occupancy,
                s.req_buf_total,
                s.ack_buf_total,
                s.mean_link_util,
                s.max_link_util,
                s.upp_wait_ack_cycles,
                s.upp_locate_cycles,
                s.upp_pop_cycles,
            );
        }
        out
    }
}

// ---------------------------------------------------- deadlock forensics

/// One input VC held by a wedged packet, with what it waits on.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct VcHold {
    /// Router holding the flits.
    pub node: NodeId,
    /// Input port of the held VC.
    pub in_port: Port,
    /// Flat VC index.
    pub vc_flat: usize,
    /// Flits buffered in the VC.
    pub buffered: usize,
    /// True when the head-of-line flit is this packet's head flit.
    pub head_of_line: bool,
    /// Output port the packet needs next (route computation result).
    pub waits_out: Option<Port>,
    /// Downstream router on that output, when it exists.
    pub waits_node: Option<NodeId>,
}

/// One wedged packet and everything it holds.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WedgedPacket {
    /// The packet.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// VNet.
    pub vnet: VnetId,
    /// Length in flits.
    pub len_flits: u16,
    /// Cycles since creation.
    pub age: u64,
    /// True when the head flit entered the network.
    pub injected: bool,
    /// Input VCs across the system currently owned by this packet.
    pub holds: Vec<VcHold>,
}

/// Forensic snapshot of a globally-stalled network: every wedged packet,
/// its hold/wait chains, and the circular wait over physical channels.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StallReport {
    /// Cycle the report was taken at.
    pub cycle: Cycle,
    /// Cycle of the last observed flit movement.
    pub last_progress: Cycle,
    /// Packets in flight.
    pub in_flight: usize,
    /// Wedged packets, ordered by id.
    pub wedged: Vec<WedgedPacket>,
    /// One circular wait over directed channels extracted from the runtime
    /// wait-for graph via [`crate::routing::GlobalCdg`]; empty when no
    /// cycle exists (e.g. starvation rather than deadlock).
    pub wait_cycle: Vec<GlobalChannel>,
    /// Per-node buffered-flit occupancy
    /// ([`crate::network::Network::occupancy`]) at the report cycle.
    pub occupancy: Vec<(NodeId, usize)>,
}

impl StallReport {
    /// True when a circular wait was found — the stall is a deadlock, not
    /// starvation.
    pub fn is_deadlock(&self) -> bool {
        !self.wait_cycle.is_empty()
    }

    /// Total flits held in router buffers by wedged packets.
    pub fn held_flits(&self) -> usize {
        self.wedged
            .iter()
            .flat_map(|w| w.holds.iter())
            .map(|h| h.buffered)
            .sum()
    }

    /// Renders the report as human-readable text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== stall report @ cycle {} (last progress {}, {} packets in flight) ===",
            self.cycle, self.last_progress, self.in_flight
        );
        let _ = writeln!(
            out,
            "verdict: {}",
            if self.is_deadlock() {
                "DEADLOCK (circular wait found)"
            } else {
                "stall without a detected channel cycle"
            }
        );
        let _ = writeln!(out, "wedged packets ({}):", self.wedged.len());
        for w in &self.wedged {
            let _ = writeln!(
                out,
                "  {} {} {} -> {}, {} flits, age {}, {}",
                w.id,
                w.vnet,
                w.src,
                w.dest,
                w.len_flits,
                w.age,
                if w.injected {
                    "in network"
                } else {
                    "queued at source NI"
                }
            );
            for h in &w.holds {
                let wait = match (h.waits_out, h.waits_node) {
                    (Some(p), Some(n)) => format!("waits on {}:{} -> {}", h.node, p, n),
                    (Some(p), None) => format!("waits on {}:{} (NI)", h.node, p),
                    _ => "no route yet".to_string(),
                };
                let _ = writeln!(
                    out,
                    "    holds {}[{} vc{}] ({} flit{}{}), {}",
                    h.node,
                    h.in_port,
                    h.vc_flat,
                    h.buffered,
                    if h.buffered == 1 { "" } else { "s" },
                    if h.head_of_line { ", head-of-line" } else { "" },
                    wait
                );
            }
        }
        if self.is_deadlock() {
            let _ = writeln!(
                out,
                "circular wait over {} channels:",
                self.wait_cycle.len()
            );
            let chain = self
                .wait_cycle
                .iter()
                .map(|c| format!("{}:{}", c.from, c.out))
                .collect::<Vec<_>>()
                .join(" -> ");
            let first = self
                .wait_cycle
                .first()
                .map(|c| format!(" -> {}:{}", c.from, c.out))
                .unwrap_or_default();
            let _ = writeln!(out, "  {chain}{first}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal JSON well-formedness checker for exporter tests: validates
    /// bracket/brace balance, string escapes and bare-token shape without
    /// building a tree.
    fn json_is_wellformed(s: &str) -> bool {
        let b = s.as_bytes();
        let mut i = 0usize;
        let mut stack: Vec<u8> = Vec::new();
        let mut saw_value = false;
        while i < b.len() {
            match b[i] {
                b'{' | b'[' => {
                    stack.push(b[i]);
                    i += 1;
                }
                b'}' => {
                    if stack.pop() != Some(b'{') {
                        return false;
                    }
                    saw_value = true;
                    i += 1;
                }
                b']' => {
                    if stack.pop() != Some(b'[') {
                        return false;
                    }
                    saw_value = true;
                    i += 1;
                }
                b'"' => {
                    i += 1;
                    loop {
                        if i >= b.len() {
                            return false;
                        }
                        match b[i] {
                            b'\\' => {
                                if i + 1 >= b.len() {
                                    return false;
                                }
                                i += 2;
                            }
                            b'"' => {
                                i += 1;
                                break;
                            }
                            c if c < 0x20 => return false,
                            _ => i += 1,
                        }
                    }
                    saw_value = true;
                }
                b',' | b':' | b' ' | b'\n' | b'\t' | b'\r' => i += 1,
                c if c == b'-' || c.is_ascii_digit() => {
                    while i < b.len()
                        && (b[i].is_ascii_digit()
                            || matches!(b[i], b'-' | b'+' | b'.' | b'e' | b'E'))
                    {
                        i += 1;
                    }
                    saw_value = true;
                }
                b't' | b'f' | b'n' => {
                    let ok = s[i..].starts_with("true")
                        || s[i..].starts_with("false")
                        || s[i..].starts_with("null");
                    if !ok {
                        return false;
                    }
                    i += if s[i..].starts_with("false") { 5 } else { 4 };
                    saw_value = true;
                }
                _ => return false,
            }
        }
        stack.is_empty() && saw_value
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::PacketCreated {
                at: 1,
                packet: PacketId(7),
                src: NodeId(0),
                dest: NodeId(9),
                vnet: VnetId(2),
                len_flits: 5,
            },
            TraceEvent::PacketInjected {
                at: 3,
                packet: PacketId(7),
                node: NodeId(0),
            },
            TraceEvent::VcAllocated {
                at: 5,
                packet: PacketId(7),
                node: NodeId(4),
                in_port: Port::West,
                vc_flat: 2,
                out_port: Port::Up,
                out_vc: 2,
            },
            TraceEvent::Blocked {
                at: 6,
                packet: PacketId(7),
                node: NodeId(4),
                in_port: Port::West,
                vc_flat: 2,
                out_port: Some(Port::Up),
                reason: BlockReason::Credit,
            },
            TraceEvent::Blocked {
                at: 6,
                packet: PacketId(8),
                node: NodeId(5),
                in_port: Port::Local,
                vc_flat: 0,
                out_port: None,
                reason: BlockReason::SwitchAlloc,
            },
            TraceEvent::BypassPop {
                at: 7,
                packet: PacketId(7),
                node: NodeId(4),
                in_port: Port::West,
                vc_flat: 2,
                out_port: Port::Up,
            },
            TraceEvent::BypassHop {
                at: 8,
                packet: PacketId(7),
                node: NodeId(9),
                out_port: Port::North,
            },
            TraceEvent::ControlHop {
                at: 9,
                node: NodeId(4),
                out_port: Port::Up,
                class: ControlClass::ReqLike,
                bits: 0xdead,
                vnet: VnetId(2),
                origin: NodeId(4),
                routing: ControlRoute::Forward,
            },
            TraceEvent::PopupStage {
                at: 10,
                node: NodeId(4),
                vnet: VnetId(2),
                packet: Some(PacketId(7)),
                from: "Idle",
                to: "WaitAck",
            },
            TraceEvent::PopupStage {
                at: 10,
                node: NodeId(4),
                vnet: VnetId(2),
                packet: None,
                from: "WaitAck",
                to: "Idle",
            },
            TraceEvent::PopupSpan {
                node: NodeId(4),
                vnet: VnetId(2),
                packet: PacketId(7),
                detected_at: 10,
                completed_at: 31,
                wait_ack: 12,
                locate: 0,
                pop: 9,
            },
            TraceEvent::PacketEjected {
                at: 31,
                packet: PacketId(7),
                node: NodeId(9),
                net_latency: 28,
                total_latency: 30,
            },
        ]
    }

    #[test]
    fn validator_rejects_malformed_json() {
        assert!(json_is_wellformed(r#"{"a":[1,2,{"b":"c\"d"}],"e":null}"#));
        assert!(!json_is_wellformed(r#"{"a":1"#));
        assert!(!json_is_wellformed(r#"{"a":}"#) || json_is_wellformed("{}"));
        assert!(!json_is_wellformed(r#"{"a":1]"#));
        assert!(!json_is_wellformed(r#"{"a":"unterminated}"#));
        assert!(!json_is_wellformed("garbage"));
    }

    #[test]
    fn every_event_renders_wellformed_jsonl() {
        for ev in sample_events() {
            let line = ev.jsonl();
            assert!(json_is_wellformed(&line), "malformed JSONL: {line}");
            assert!(line.contains(ev.name()), "name missing in {line}");
        }
    }

    #[test]
    fn chrome_trace_document_is_wellformed_and_complete() {
        let mut t = Tracer::chrome();
        let events = sample_events();
        for ev in events.clone() {
            t.record(ev);
        }
        let doc = t.chrome_trace_json();
        assert!(json_is_wellformed(&doc), "malformed Chrome trace: {doc}");
        assert!(doc.starts_with("{\"traceEvents\":["));
        for ev in &events {
            assert!(doc.contains(ev.name()));
        }
        // The popup span is the one complete ("X") event and carries a
        // positive duration.
        assert_eq!(doc.matches("\"ph\":\"X\"").count(), 1);
        assert!(doc.contains("\"dur\":21"));
        // Instant events mark thread scope.
        assert_eq!(doc.matches("\"ph\":\"i\"").count(), events.len() - 1);
    }

    #[test]
    fn empty_chrome_trace_is_valid() {
        let t = Tracer::chrome();
        let doc = t.chrome_trace_json();
        assert!(json_is_wellformed(&doc));
        assert!(doc.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn ring_buffer_bounds_retention_and_counts_drops() {
        let mut t = Tracer::ring(3);
        for i in 0..10u64 {
            t.record(TraceEvent::PacketInjected {
                at: i,
                packet: PacketId(i),
                node: NodeId(0),
            });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        let ats: Vec<Cycle> = t.events().map(|e| e.at()).collect();
        assert_eq!(ats, vec![7, 8, 9], "oldest events are evicted first");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.enabled());
        t.record(TraceEvent::PacketInjected {
            at: 0,
            packet: PacketId(0),
            node: NodeId(0),
        });
        assert!(t.is_empty());
        assert_eq!(t.events().count(), 0);
    }

    #[test]
    fn jsonl_sink_streams_one_line_per_event() {
        let buf: Vec<u8> = Vec::new();
        let shared = std::sync::Arc::new(std::sync::Mutex::new(buf));
        struct SharedWriter(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut t = Tracer::jsonl(Box::new(SharedWriter(std::sync::Arc::clone(&shared))));
        for ev in sample_events() {
            t.record(ev);
        }
        t.flush();
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), sample_events().len());
        for line in lines {
            assert!(json_is_wellformed(line), "malformed line: {line}");
        }
    }

    #[test]
    fn stall_report_text_names_packets_and_cycle() {
        let report = StallReport {
            cycle: 5_000,
            last_progress: 3_979,
            in_flight: 2,
            wedged: vec![
                WedgedPacket {
                    id: PacketId(3),
                    src: NodeId(0),
                    dest: NodeId(70),
                    vnet: VnetId(2),
                    len_flits: 5,
                    age: 4_000,
                    injected: true,
                    holds: vec![VcHold {
                        node: NodeId(64),
                        in_port: Port::West,
                        vc_flat: 2,
                        buffered: 3,
                        head_of_line: true,
                        waits_out: Some(Port::Up),
                        waits_node: Some(NodeId(12)),
                    }],
                },
                WedgedPacket {
                    id: PacketId(4),
                    src: NodeId(12),
                    dest: NodeId(1),
                    vnet: VnetId(2),
                    len_flits: 5,
                    age: 3_990,
                    injected: true,
                    holds: vec![],
                },
            ],
            wait_cycle: vec![
                GlobalChannel {
                    from: NodeId(64),
                    out: Port::Up,
                },
                GlobalChannel {
                    from: NodeId(12),
                    out: Port::South,
                },
            ],
            occupancy: vec![(NodeId(64), 3)],
        };
        assert!(report.is_deadlock());
        assert_eq!(report.held_flits(), 3);
        let text = report.render_text();
        assert!(text.contains("cycle 5000"));
        assert!(text.contains("p3"));
        assert!(text.contains("p4"));
        assert!(text.contains("DEADLOCK"));
        assert!(text.contains("holds n64[W vc2]"));
        assert!(text.contains("waits on n64:U -> n12"));
        assert!(
            text.contains("n64:U -> n12:S -> n64:U"),
            "cycle closes on itself:\n{text}"
        );
    }

    #[test]
    fn metrics_csv_has_header_and_one_row_per_sample() {
        let mut s = MetricsSampler::new(100, 64);
        // Hand-roll two snapshots (sampling a real network is covered by
        // integration tests; here we pin the CSV shape).
        s.history.push(MetricsSnapshot {
            cycle: 100,
            epoch_cycles: 100,
            packets_created: 10,
            packets_ejected: 8,
            flits_injected: 50,
            flits_ejected: 40,
            injection_rate: 0.0078,
            ejection_rate: 0.00625,
            in_flight: 2,
            buffered_flits: 7,
            max_router_occupancy: 4,
            req_buf_total: 1,
            req_buf_max: 1,
            ack_buf_total: 0,
            ack_buf_max: 0,
            mean_link_util: 0.2,
            max_link_util: 0.9,
            upp_wait_ack_cycles: 12,
            upp_locate_cycles: 3,
            upp_pop_cycles: 5,
            router_occupancy: vec![0, 4, 3],
            link_flits: vec![0, 20, 30],
        });
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], format!("# schema: {METRICS_SCHEMA}"));
        assert_eq!(lines[1], METRICS_CSV_HEADER);
        assert!(lines[2].starts_with("100,100,10,8,50,40,"));
        let cols = lines[1].split(',').count();
        assert_eq!(
            lines[2].split(',').count(),
            cols,
            "row arity matches header"
        );
        assert!(
            lines[2].ends_with(",12,3,5"),
            "UPP stage columns are last: {}",
            lines[2]
        );
        validate_metrics_csv(&csv).expect("fresh output validates");
    }

    #[test]
    fn metrics_csv_validation_rejects_stale_and_foreign_files() {
        let fresh = MetricsSampler::new(10, 4).to_csv();
        validate_metrics_csv(&fresh).expect("current schema accepted");
        assert!(
            validate_metrics_csv("# schema: upp-metrics/v0\ncycle\n")
                .unwrap_err()
                .contains("stale or foreign"),
            "old versions must be rejected"
        );
        assert!(
            validate_metrics_csv("cycle,epoch_cycles\n1,2\n")
                .unwrap_err()
                .contains("stale or foreign"),
            "headerless legacy files must be rejected"
        );
        let wrong_cols = format!("# schema: {METRICS_SCHEMA}\ncycle,extra\n");
        assert!(
            validate_metrics_csv(&wrong_cols)
                .unwrap_err()
                .contains("column mismatch"),
            "same version but different columns must be rejected"
        );
    }

    #[test]
    fn hostile_strings_round_trip_through_serde_json_escaping() {
        // &'static str fields can legally contain quotes, backslashes and
        // control characters; the renderers must escape them, not trust
        // them.
        let hostile = TraceEvent::PopupStage {
            at: 3,
            node: NodeId(1),
            vnet: VnetId(0),
            packet: None,
            from: "quo\"te\\back\nline\ttab",
            to: "}{\"pwn\":1,\"x\":\"",
        };
        for rendered in [hostile.jsonl(), hostile.chrome_json(), hostile.args_json()] {
            assert!(json_is_wellformed(&rendered), "malformed: {rendered}");
            let v = serde_json::from_str(&rendered).expect("parses back");
            let obj = if rendered == hostile.args_json() {
                v
            } else {
                v.get("args").cloned().expect("args object")
            };
            assert_eq!(
                obj.get("from").and_then(|s| s.as_str()),
                Some("quo\"te\\back\nline\ttab")
            );
            assert_eq!(
                obj.get("to").and_then(|s| s.as_str()),
                Some("}{\"pwn\":1,\"x\":\"")
            );
        }
    }

    #[test]
    fn profiling_tracer_feeds_spans_without_a_sink() {
        let mut t = Tracer::profiling();
        assert!(t.enabled(), "profiler alone must light the hook sites");
        for ev in sample_events() {
            t.record(ev);
        }
        assert!(t.is_empty(), "no sink: no retained events");
        let spans = t
            .profiler_mut()
            .expect("profiler installed")
            .drain_finished();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.packet, PacketId(7));
        assert_eq!(s.net_latency(), 28);
        assert_eq!(s.total_latency(), 30);
        assert_eq!(s.wait_ack, 12);
        assert_eq!(s.pop, 9);
        // Moving the profiler out leaves a plain disabled tracer.
        let p = t.set_profiler(None);
        assert!(p.is_some());
        assert!(!t.enabled());
    }

    #[test]
    fn upp_probe_latches_totals_at_install() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let counter = Arc::new(AtomicU64::new(100));
        let c2 = Arc::clone(&counter);
        let mut s = MetricsSampler::new(10, 4);
        // Installing the probe snapshots the current totals so the first
        // sampled epoch reports growth from now on, not all of history.
        s.set_upp_probe(Arc::new(move || {
            let v = c2.load(Ordering::Relaxed);
            [v, v / 2, v / 4]
        }));
        assert_eq!(s.last_upp, [100, 50, 25]);
        counter.store(160, Ordering::Relaxed);
        assert_eq!(s.upp_probe.as_ref().unwrap()(), [160, 80, 40]);
    }
}
