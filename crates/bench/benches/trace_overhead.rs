//! Tracer overhead benches: the flight recorder's promise is that a
//! disabled tracer costs nothing. Three configurations run the identical
//! simulation — no tracer call sites would even be a fourth, but the
//! default `Tracer::disabled()` *is* the no-tracer configuration, so the
//! comparison of interest is `disabled` vs the recording sinks. The
//! `obs_registry` configuration makes the same promise for the
//! protocol-state telemetry registry: `disabled` already runs every obs
//! call site behind the closed gate, so compare it against `obs_registry`
//! for the enabled cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use upp_core::{Upp, UppConfig};
use upp_noc::config::NocConfig;
use upp_noc::ids::{NodeId, VnetId};
use upp_noc::network::Network;
use upp_noc::ni::ConsumePolicy;
use upp_noc::routing::ChipletRouting;
use upp_noc::sim::System;
use upp_noc::topology::ChipletSystemSpec;
use upp_noc::trace::Tracer;

const CYCLES: u64 = 1_500;
const RATE_NUM: u64 = 1; // inject on 1 of every 5 (node, cycle) slots
const RATE_DEN: u64 = 5;

/// A deterministic, RNG-free traffic pattern so every configuration
/// simulates the identical workload.
fn run_once(tracer: Tracer, obs: bool) -> u64 {
    let topo = ChipletSystemSpec::baseline().build(0).expect("valid spec");
    let net = Network::new(
        NocConfig::default(),
        topo,
        Arc::new(ChipletRouting::xy()),
        ConsumePolicy::Immediate { latency: 1 },
        1,
    );
    let mut sys = System::new(net, Box::new(Upp::new(UppConfig::default())));
    sys.net_mut().set_tracer(tracer);
    if obs {
        sys.net_mut().enable_obs();
    }
    let nodes: Vec<NodeId> = sys
        .net()
        .topo()
        .chiplets()
        .iter()
        .flat_map(|c| c.routers.iter().copied())
        .collect();
    let n = nodes.len() as u64;
    for cycle in 0..CYCLES {
        for (i, &src) in nodes.iter().enumerate() {
            let slot = cycle * n + i as u64;
            if slot % RATE_DEN >= RATE_NUM {
                continue;
            }
            let dest = nodes[((i as u64 + 7 * cycle + 13) % n) as usize];
            if dest == src {
                continue;
            }
            let _ = sys.send(src, dest, VnetId((slot % 3) as u8), 3);
        }
        sys.step();
        if obs && cycle.is_multiple_of(64) {
            sys.observe();
        }
    }
    let _ = sys.run_until_drained(50_000);
    sys.net().stats().flits_ejected
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    group.bench_function("disabled", |b| {
        b.iter(|| black_box(run_once(Tracer::disabled(), false)))
    });
    group.bench_function("ring_64k", |b| {
        b.iter(|| black_box(run_once(Tracer::ring(1 << 16), false)))
    });
    group.bench_function("profiler", |b| {
        b.iter(|| black_box(run_once(Tracer::profiling(), false)))
    });
    group.bench_function("chrome_buffered", |b| {
        b.iter(|| black_box(run_once(Tracer::chrome(), false)))
    });
    group.bench_function("jsonl_sink", |b| {
        b.iter(|| black_box(run_once(Tracer::jsonl(Box::new(std::io::sink())), false)))
    });
    group.bench_function("obs_registry", |b| {
        b.iter(|| black_box(run_once(Tracer::disabled(), true)))
    });
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
