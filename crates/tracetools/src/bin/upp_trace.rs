//! `upp-trace` — analysis CLI over flight-recorder traces and profiles.
//!
//! ```text
//! upp-trace analyze <input> [--json] [--out FILE]
//! upp-trace heatmap <input> [--csv-out FILE] [--svg-out FILE]
//! upp-trace critical-path <input> [--top N]
//! upp-trace diff <a> <b>
//! upp-trace obs <input> [--csv-out FILE] [--svg-out FILE] [--metric NAME]
//! ```
//!
//! `<input>` is either a profile summary JSON written by
//! `simulate --profile-out` (detected by its `"upp_profile": 1` marker) or
//! a raw JSONL flight-recorder trace from `simulate --trace`; both yield
//! the same `ProfileSummary`. Use `--system`/`--scheme` to label raw
//! traces (profiles carry their own labels).
//!
//! `obs` instead reads protocol-state telemetry: a summary JSON from
//! `simulate --obs` (also embedded as the `"obs"` field of `--json`
//! payloads) or an epoch JSONL stream from `--obs-every`/`--obs-out`,
//! auto-detected by their markers.

use std::fs::File;
use std::io::{BufReader, Read};
use std::process::ExitCode;

use upp_tracetools::render;
use upp_tracetools::summary::ProfileSummary;

fn usage() -> ! {
    eprintln!(
        "usage:\n\
         upp-trace analyze <input> [--json] [--out FILE] [--system S] [--scheme S]\n\
         upp-trace heatmap <input> [--csv-out FILE] [--svg-out FILE] [--system S]\n\
         upp-trace critical-path <input> [--top N] [--system S] [--scheme S]\n\
         upp-trace diff <a> <b>\n\
         upp-trace obs <input> [--csv-out FILE] [--svg-out FILE] [--metric NAME]\n\
         \n\
         <input>: profile JSON from `simulate --profile-out` or JSONL from\n\
         `simulate --trace`; the kind is auto-detected. `obs` reads telemetry\n\
         summaries (`simulate --obs`, or `--json` payloads embedding one) and\n\
         epoch streams (`--obs-every`/`--obs-out`); repeat --metric to select\n\
         the series plotted by --svg-out (default: all)."
    );
    std::process::exit(2)
}

/// Loads either input shape into a summary; `system`/`scheme` label raw
/// JSONL traces and are ignored when the profile document carries its own.
fn load(path: &str, system: &str, scheme: &str) -> Result<ProfileSummary, String> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("{path}: {e}"))?;
    let head = text.trim_start();
    if head.starts_with('{') {
        if let Ok(v) = serde_json::from_str(head) {
            if ProfileSummary::is_profile_value(&v) {
                return ProfileSummary::from_json(head).map_err(|e| format!("{path}: {e}"));
            }
        }
    }
    let (summary, malformed) =
        ProfileSummary::from_jsonl(BufReader::new(text.as_bytes()), system, scheme)
            .map_err(|e| format!("{path}: {e}"))?;
    if malformed > 0 {
        eprintln!("warning: {path}: skipped {malformed} malformed trace lines");
    }
    Ok(summary)
}

fn write_or_die(path: &str, content: &str) {
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("error: {path}: {e}");
        std::process::exit(1);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };

    // Shared flag parsing: positional inputs plus `--flag value` pairs.
    let mut inputs: Vec<&str> = Vec::new();
    let mut json = false;
    let mut out: Option<&str> = None;
    let mut csv_out: Option<&str> = None;
    let mut svg_out: Option<&str> = None;
    let mut system = String::new();
    let mut scheme = String::new();
    let mut top = 10usize;
    let mut metrics: Vec<String> = Vec::new();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().map(String::as_str).unwrap_or_else(|| usage());
        match a.as_str() {
            "--json" => json = true,
            "--out" => out = Some(val()),
            "--csv-out" => csv_out = Some(val()),
            "--svg-out" => svg_out = Some(val()),
            "--system" => system = val().to_string(),
            "--scheme" => scheme = val().to_string(),
            "--top" => top = val().parse().unwrap_or_else(|_| usage()),
            "--metric" => metrics.push(val().to_string()),
            flag if flag.starts_with("--") => usage(),
            input => inputs.push(input),
        }
    }

    let one_input = || -> &str {
        if inputs.len() != 1 {
            usage()
        }
        inputs[0]
    };
    let load_or_die = |path: &str| -> ProfileSummary {
        match load(path, &system, &scheme) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    };

    match cmd.as_str() {
        "analyze" => {
            let p = load_or_die(one_input());
            let rendered = if json {
                p.to_json()
            } else {
                render::analyze_text(&p)
            };
            match out {
                Some(path) => write_or_die(path, &rendered),
                None => print!("{rendered}"),
            }
        }
        "heatmap" => {
            let p = load_or_die(one_input());
            let csv = format!("{}\n{}", render::router_csv(&p), render::link_csv(&p));
            match csv_out {
                Some(path) => write_or_die(path, &csv),
                None => print!("{csv}"),
            }
            if let Some(path) = svg_out {
                match render::heatmap_svg(&p) {
                    Some(svg) => write_or_die(path, &svg),
                    None => {
                        eprintln!(
                            "error: unknown system {:?}; pass --system \
                             baseline|large|b2|b8 for SVG layout",
                            p.system
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        "critical-path" => {
            let p = load_or_die(one_input());
            print!("{}", render::critical_path_text(&p, top));
        }
        "diff" => {
            if inputs.len() != 2 {
                usage()
            }
            let a = load_or_die(inputs[0]);
            let b = load_or_die(inputs[1]);
            print!("{}", render::diff_text(&a, &b));
        }
        "obs" => {
            let path = one_input();
            let mut text = String::new();
            if let Err(e) = File::open(path).and_then(|mut f| f.read_to_string(&mut text)) {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
            let report = match upp_tracetools::obs::ObsReport::parse(&text) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            print!("{}", upp_tracetools::obs::report_text(&report));
            if let Some(p) = csv_out {
                match upp_tracetools::obs::timeseries_csv(&report) {
                    Some(csv) => write_or_die(p, &csv),
                    None => eprintln!("error: --csv-out needs epoch input (simulate --obs-every)"),
                }
            }
            if let Some(p) = svg_out {
                match upp_tracetools::obs::timeseries_svg(&report, &metrics) {
                    Some(svg) => write_or_die(p, &svg),
                    None => eprintln!("error: --svg-out needs epoch input (simulate --obs-every)"),
                }
            }
        }
        _ => usage(),
    }
    ExitCode::SUCCESS
}
