//! Fig. 11 scenario: UPP on irregular topologies. Links fail at random, each
//! region falls back to up*/down* table routing, and UPP keeps the system
//! deadlock-free while throughput degrades gracefully.
//!
//! ```text
//! cargo run --release --example faulty_links
//! ```

use upp::core::UppConfig;
use upp::noc::config::NocConfig;
use upp::noc::ni::ConsumePolicy;
use upp::noc::topology::{chiplet::inject_random_faults, ChipletSystemSpec};
use upp::workloads::runner::{build_on_topology, SchemeKind};
use upp::workloads::synthetic::{Pattern, SyntheticTraffic};

fn main() {
    println!("faults | delivered | avg latency | upward packets | outcome");
    println!("-------+-----------+-------------+----------------+--------");
    for faults in [0usize, 1, 5, 10, 15, 20] {
        let mut topo = ChipletSystemSpec::baseline().build(0).expect("valid spec");
        if faults > 0 {
            let failed =
                inject_random_faults(&mut topo, faults, 99).expect("regions stay connected");
            assert_eq!(failed.len(), faults);
        }
        let built = build_on_topology(
            topo,
            NocConfig::default(),
            &SchemeKind::Upp(UppConfig::default()),
            3,
            ConsumePolicy::Immediate { latency: 1 },
        );
        let mut sys = built.sys;
        let mut traffic = SyntheticTraffic::new(sys.net().topo(), Pattern::UniformRandom, 0.05, 3);
        for _ in 0..20_000 {
            traffic.tick(&mut sys);
            sys.step();
        }
        let outcome = sys.run_until_drained(100_000);
        let upward = built
            .upp_stats
            .as_ref()
            .map(|h| h.lock().expect("single-threaded").upward_packets)
            .unwrap_or(0);
        let stats = sys.net().stats();
        println!(
            "{faults:>6} | {:>9} | {:>11.1} | {:>14} | {outcome:?}",
            stats.packets_ejected,
            stats.avg_total_latency(),
            upward,
        );
        assert_eq!(
            stats.packets_ejected, stats.packets_created,
            "UPP must deliver everything even on irregular topologies"
        );
    }
    println!("\nno run deadlocked; latency rises gracefully with the fault count (Fig. 11).");
}
