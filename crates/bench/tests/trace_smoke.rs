//! End-to-end smoke tests for the latency-profiling pipeline: `simulate
//! --profile-out` must emit a byte-identical profile document regardless of
//! `--jobs`, match the committed golden in `tests/goldens/`, and feed the
//! `upp-tracetools` analysis surface (report, heatmap, diff) without loss.
//!
//! To regenerate the golden after an *intentional* behaviour change:
//!
//! ```text
//! UPP_UPDATE_GOLDENS=1 cargo test -p upp-bench --test trace_smoke
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

use upp_tracetools::{render, ProfileSummary};

fn goldens_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("upp-trace-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Runs `simulate` with the given args plus `--profile-out OUT` and returns
/// the profile document bytes.
fn simulate_profile(args: &[&str], out_name: &str) -> String {
    let out = tmp_path(out_name);
    let _ = std::fs::remove_file(&out);
    let status = Command::new(env!("CARGO_BIN_EXE_simulate"))
        .args(args)
        .arg("--profile-out")
        .arg(&out)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("simulate binary runs");
    assert!(status.success(), "simulate {args:?} failed: {status}");
    std::fs::read_to_string(&out).expect("simulate wrote the profile")
}

fn check_golden(name: &str, actual: &str) {
    let path = goldens_dir().join(name);
    if std::env::var("UPP_UPDATE_GOLDENS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(goldens_dir()).expect("goldens dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPP_UPDATE_GOLDENS=1 to record",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "{name}: output differs from committed golden.\n\
         If the change is intentional, refresh with UPP_UPDATE_GOLDENS=1.\n\
         --- golden ---\n{expected}\n--- actual ---\n{actual}"
    );
}

// The faulty-link run from the determinism goldens: rerouting around the
// faults congests the interposer paths enough that UPP actually detects
// upward packets and pops them, so the recovery phases are exercised.
const UPP_RUN: &[&str] = &[
    "--scheme",
    "upp",
    "--pattern",
    "uniform_random",
    "--rate",
    "0.06",
    "--cycles",
    "4000",
    "--faults",
    "3",
    "--seed",
    "5",
];

/// The profile document is deterministic (byte-identical for any `--jobs`
/// value), matches the committed golden, and drives every analysis surface.
#[test]
fn profile_matches_golden_and_is_jobs_invariant() {
    let serial = simulate_profile(&[UPP_RUN, &["--jobs", "1"]].concat(), "prof_j1.json");
    let parallel = simulate_profile(&[UPP_RUN, &["--jobs", "4"]].concat(), "prof_j4.json");
    assert!(
        serial == parallel,
        "profile must be bit-identical for any --jobs value.\n\
         --- jobs 1 ---\n{serial}\n--- jobs 4 ---\n{parallel}"
    );
    check_golden("upp_profile.json", &serial);

    let p = ProfileSummary::from_json(&serial).expect("profile parses");
    assert!(p.packets > 0, "profiled packets");
    assert_eq!(p.to_json(), serial, "document round-trips byte-identically");
    let report = render::analyze_text(&p);
    assert!(
        report.contains("wait_ack"),
        "report lists UPP phases:\n{report}"
    );
    assert!(
        render::heatmap_svg(&p).is_some(),
        "system label {:?} drives the SVG topology layout",
        p.system
    );
    assert!(
        !render::critical_path_text(&p, 3).is_empty(),
        "slowest packets render"
    );
}

/// Fig. 13's popup-overhead story, via the diff surface: UPP's extra
/// latency is attributed to its recovery phases (wait_ack/locate/pop plus
/// bypass hops), while remote-control pays at the source instead — its
/// injection control holds packets in the source NI (higher inj_queue),
/// buying lower in-network credit blocking and zero recovery cycles.
#[test]
fn diff_attributes_upp_recovery_vs_remote_throttling() {
    let upp = simulate_profile(UPP_RUN, "prof_upp.json");
    let mut remote_args: Vec<&str> = UPP_RUN.to_vec();
    remote_args[1] = "remote";
    let remote = simulate_profile(&remote_args, "prof_remote.json");

    let pu = ProfileSummary::from_json(&upp).expect("UPP profile parses");
    let pr = ProfileSummary::from_json(&remote).expect("remote profile parses");
    assert!(
        pu.phases.upp_recovery() > 0,
        "UPP at this load recovers popups, so recovery cycles are nonzero"
    );
    assert!(pu.popups > 0, "popups observed");
    assert_eq!(
        pr.phases.upp_recovery(),
        0,
        "remote-control never enters UPP recovery"
    );
    assert_eq!(pr.bypass_hops, 0, "no popup bypass under remote-control");
    assert!(pu.bypass_hops > 0, "UPP pops flits over the bypass path");
    let per_pkt = |total: u64, p: &ProfileSummary| total as f64 / p.packets.max(1) as f64;
    assert!(
        per_pkt(pr.phases.inj_queue, &pr) > per_pkt(pu.phases.inj_queue, &pu),
        "remote-control's injection control holds packets at the source: \
         {:.1} vs {:.1} inj_queue cycles/packet",
        per_pkt(pr.phases.inj_queue, &pr),
        per_pkt(pu.phases.inj_queue, &pu)
    );
    assert!(
        per_pkt(pr.phases.credit, &pr) < per_pkt(pu.phases.credit, &pu),
        "what remote-control buys with throttling is less in-network blocking: \
         {:.1} vs {:.1} credit cycles/packet",
        per_pkt(pr.phases.credit, &pr),
        per_pkt(pu.phases.credit, &pu)
    );
    let diff = render::diff_text(&pu, &pr);
    assert!(
        diff.contains("wait_ack"),
        "diff lists recovery phases:\n{diff}"
    );
    assert!(diff.contains("hops/packet"), "diff lists hop cost:\n{diff}");
}
