//! System topology: chiplet meshes stacked on an interposer mesh.

pub mod chiplet;

pub use chiplet::{ChipletPlacement, ChipletSystemSpec, SystemKind};

use crate::ids::{ChipletId, NodeId, Port};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Which mesh layer a node lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// One of the chiplets.
    Chiplet(ChipletId),
    /// The (active) interposer.
    Interposer,
}

/// Static description of one node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// This node's id (its index in [`Topology::nodes`]).
    pub id: NodeId,
    /// Layer the node belongs to.
    pub region: Region,
    /// X coordinate within its layer's mesh.
    pub x: u16,
    /// Y coordinate within its layer's mesh.
    pub y: u16,
    /// True for chiplet routers owning a `Down` vertical link, and for
    /// interposer routers owning an `Up` vertical link.
    pub boundary: bool,
    /// Neighbour on each port (indexed by [`Port::index`]); `None` where no
    /// link exists. `Local` is always `None` (the NI is implicit).
    pub neighbors: [Option<NodeId>; Port::COUNT],
}

impl NodeInfo {
    /// Iterates over `(port, neighbor)` pairs of existing links.
    pub fn links(&self) -> impl Iterator<Item = (Port, NodeId)> + '_ {
        Port::ALL
            .iter()
            .filter_map(move |&p| self.neighbors[p.index()].map(|n| (p, n)))
    }
}

/// Static description of one chiplet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipletInfo {
    /// The chiplet's id.
    pub id: ChipletId,
    /// Mesh width.
    pub width: u16,
    /// Mesh height.
    pub height: u16,
    /// All router ids of this chiplet, row-major (`y * width + x`).
    pub routers: Vec<NodeId>,
    /// The chiplet's boundary routers (each owns a `Down` link).
    pub boundary_routers: Vec<NodeId>,
}

/// The full system graph.
///
/// Build one with [`ChipletSystemSpec`]; the baseline system of Fig. 1 is
/// [`ChipletSystemSpec::baseline`].
///
/// # Examples
///
/// ```
/// use upp_noc::topology::ChipletSystemSpec;
///
/// let topo = ChipletSystemSpec::baseline().build(7).expect("valid spec");
/// assert_eq!(topo.chiplets().len(), 4);
/// assert_eq!(topo.num_nodes(), 4 * 16 + 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<NodeInfo>,
    chiplets: Vec<ChipletInfo>,
    interposer_width: u16,
    interposer_height: u16,
    interposer_routers: Vec<NodeId>,
    /// For every chiplet router: the boundary router it is statically bound
    /// to (Sec. V-D). Boundary routers are bound to themselves. Interposer
    /// routers map to themselves (unused).
    binding: Vec<NodeId>,
    /// Faulty directed links as `(node, out_port)`; faults are symmetric (the
    /// reverse direction is also present in the set).
    faulty: HashSet<(NodeId, Port)>,
}

impl Topology {
    pub(crate) fn from_parts(
        nodes: Vec<NodeInfo>,
        chiplets: Vec<ChipletInfo>,
        interposer_width: u16,
        interposer_height: u16,
        interposer_routers: Vec<NodeId>,
        binding: Vec<NodeId>,
    ) -> Self {
        Self {
            nodes,
            chiplets,
            interposer_width,
            interposer_height,
            interposer_routers,
            binding,
            faulty: HashSet::new(),
        }
    }

    /// Total number of nodes (chiplet routers + interposer routers).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of traffic endpoints: the chiplet routers, whose NIs source
    /// and sink synthetic workloads. Interposer routers only forward. This
    /// is the canonical denominator for injection/throughput rates
    /// (flits/cycle/node) everywhere in the workspace.
    #[inline]
    pub fn num_endpoints(&self) -> usize {
        self.chiplets.iter().map(|c| c.routers.len()).sum()
    }

    /// All nodes.
    #[inline]
    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// Looks up one node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &NodeInfo {
        &self.nodes[id.index()]
    }

    /// All chiplets.
    #[inline]
    pub fn chiplets(&self) -> &[ChipletInfo] {
        &self.chiplets
    }

    /// One chiplet.
    #[inline]
    pub fn chiplet(&self, id: ChipletId) -> &ChipletInfo {
        &self.chiplets[id.index()]
    }

    /// Interposer mesh dimensions `(width, height)`.
    #[inline]
    pub fn interposer_dims(&self) -> (u16, u16) {
        (self.interposer_width, self.interposer_height)
    }

    /// All interposer routers, row-major.
    #[inline]
    pub fn interposer_routers(&self) -> &[NodeId] {
        &self.interposer_routers
    }

    /// The layer a node lives on.
    #[inline]
    pub fn region(&self, id: NodeId) -> Region {
        self.node(id).region
    }

    /// The chiplet a node belongs to, if any.
    #[inline]
    pub fn chiplet_of(&self, id: NodeId) -> Option<ChipletId> {
        match self.node(id).region {
            Region::Chiplet(c) => Some(c),
            Region::Interposer => None,
        }
    }

    /// True if the node is an interposer router.
    #[inline]
    pub fn is_interposer(&self, id: NodeId) -> bool {
        matches!(self.node(id).region, Region::Interposer)
    }

    /// The neighbour reached through `port`, unless the link is absent or
    /// faulty.
    #[inline]
    pub fn neighbor(&self, id: NodeId, port: Port) -> Option<NodeId> {
        if self.faulty.contains(&(id, port)) {
            return None;
        }
        self.node(id).neighbors[port.index()]
    }

    /// The neighbour reached through `port` ignoring fault status.
    #[inline]
    pub fn raw_neighbor(&self, id: NodeId, port: Port) -> Option<NodeId> {
        self.node(id).neighbors[port.index()]
    }

    /// The boundary router a chiplet router is statically bound to.
    ///
    /// # Panics
    ///
    /// Panics if `id` is an interposer router.
    #[inline]
    pub fn bound_boundary(&self, id: NodeId) -> NodeId {
        assert!(
            !self.is_interposer(id),
            "bound_boundary is defined for chiplet routers only"
        );
        self.binding[id.index()]
    }

    /// The interposer router directly below a chiplet boundary router.
    pub fn below(&self, boundary: NodeId) -> Option<NodeId> {
        self.raw_neighbor(boundary, Port::Down)
    }

    /// The chiplet boundary router directly above an interposer router.
    pub fn above(&self, interposer: NodeId) -> Option<NodeId> {
        self.raw_neighbor(interposer, Port::Up)
    }

    /// The interposer router whose `Up` port leads toward chiplet router
    /// `dest` under the static binding.
    pub fn entry_interposer_for(&self, dest: NodeId) -> Option<NodeId> {
        if self.is_interposer(dest) {
            return None;
        }
        self.below(self.bound_boundary(dest))
    }

    /// Marks the (bidirectional) link leaving `node` through `port` faulty.
    ///
    /// # Panics
    ///
    /// Panics if no link exists there.
    pub fn set_link_faulty(&mut self, node: NodeId, port: Port) {
        let peer = self
            .raw_neighbor(node, port)
            .expect("cannot mark a non-existent link faulty");
        self.faulty.insert((node, port));
        self.faulty.insert((peer, port.opposite()));
    }

    /// Clears a fault previously set with [`Topology::set_link_faulty`].
    pub fn clear_link_fault(&mut self, node: NodeId, port: Port) {
        if let Some(peer) = self.raw_neighbor(node, port) {
            self.faulty.remove(&(node, port));
            self.faulty.remove(&(peer, port.opposite()));
        }
    }

    /// True if the directed link `(node, port)` is faulty.
    #[inline]
    pub fn is_link_faulty(&self, node: NodeId, port: Port) -> bool {
        self.faulty.contains(&(node, port))
    }

    /// Number of faulty bidirectional links.
    pub fn num_faulty_links(&self) -> usize {
        self.faulty.len() / 2
    }

    /// Nodes of the region `r`, in deterministic order.
    pub fn region_nodes(&self, r: Region) -> &[NodeId] {
        match r {
            Region::Chiplet(c) => &self.chiplet(c).routers,
            Region::Interposer => &self.interposer_routers,
        }
    }

    /// Manhattan distance between two nodes of the same region.
    ///
    /// # Panics
    ///
    /// Panics if the nodes live in different regions.
    pub fn manhattan(&self, a: NodeId, b: NodeId) -> u32 {
        let (na, nb) = (self.node(a), self.node(b));
        assert_eq!(
            na.region, nb.region,
            "manhattan distance requires one region"
        );
        (na.x as i32 - nb.x as i32).unsigned_abs() + (na.y as i32 - nb.y as i32).unsigned_abs()
    }

    /// Checks structural invariants; returns a description of the first
    /// violation found.
    ///
    /// # Errors
    ///
    /// Returns `Err` if link symmetry is broken, a region is disconnected
    /// (considering faults), or a chiplet has lost all vertical links.
    pub fn validate(&self) -> Result<(), String> {
        // Link symmetry.
        for n in &self.nodes {
            for (p, peer) in n.links() {
                let back = self.raw_neighbor(peer, p.opposite());
                if back != Some(n.id) {
                    return Err(format!("asymmetric link {}:{p} -> {peer}", n.id));
                }
                if self.is_link_faulty(n.id, p) != self.is_link_faulty(peer, p.opposite()) {
                    return Err(format!("asymmetric fault on {}:{p}", n.id));
                }
            }
        }
        // Region connectivity under faults.
        let mut regions: Vec<Region> = self
            .chiplets
            .iter()
            .map(|c| Region::Chiplet(c.id))
            .collect();
        regions.push(Region::Interposer);
        for r in regions {
            let members = self.region_nodes(r);
            if members.is_empty() {
                return Err(format!("region {r:?} has no nodes"));
            }
            let set: HashSet<NodeId> = members.iter().copied().collect();
            let mut seen = HashSet::new();
            let mut stack = vec![members[0]];
            seen.insert(members[0]);
            while let Some(n) = stack.pop() {
                for p in Port::ALL {
                    if !p.is_mesh() {
                        continue;
                    }
                    if let Some(peer) = self.neighbor(n, p) {
                        if set.contains(&peer) && seen.insert(peer) {
                            stack.push(peer);
                        }
                    }
                }
            }
            if seen.len() != members.len() {
                return Err(format!("region {r:?} is disconnected"));
            }
        }
        // Vertical links.
        for c in &self.chiplets {
            if c.boundary_routers.is_empty() {
                return Err(format!("chiplet {} has no boundary routers", c.id));
            }
            for &b in &c.boundary_routers {
                let below = self
                    .below(b)
                    .ok_or_else(|| format!("boundary router {b} lacks a Down link"))?;
                if self.above(below) != Some(b) {
                    return Err(format!("vertical link at {b} is asymmetric"));
                }
            }
        }
        // Binding sanity.
        for c in &self.chiplets {
            let bset: HashSet<NodeId> = c.boundary_routers.iter().copied().collect();
            for &r in &c.routers {
                if !bset.contains(&self.binding[r.index()]) {
                    return Err(format!(
                        "router {r} bound outside its chiplet's boundary set"
                    ));
                }
            }
        }
        Ok(())
    }
}
