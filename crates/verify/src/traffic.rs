//! Deterministic pre-generated traffic traces.
//!
//! Unlike the closed-loop synthetic generators in `upp-workloads` (which
//! sample an RNG *while* the run executes, so two schemes at different
//! speeds see different offered traffic), a [`TrafficTrace`] is generated
//! up front from a seed: the exact same packets, at the same nominal
//! cycles, are offered to every scheme under differential comparison. The
//! harness retries each entry until the source injection queue accepts it,
//! so backpressure delays but never drops offered traffic.

use upp_noc::ids::{Cycle, NodeId, VnetId};
use upp_noc::topology::Topology;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One offered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficEntry {
    /// Nominal cycle the packet becomes ready at the source.
    pub at: Cycle,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dest: NodeId,
    /// Virtual network.
    pub vnet: VnetId,
    /// Length in flits.
    pub len_flits: u16,
}

/// A pre-generated, seed-deterministic packet trace sorted by ready cycle.
#[derive(Debug, Clone, Default)]
pub struct TrafficTrace {
    /// The offered packets, sorted by [`TrafficEntry::at`].
    pub entries: Vec<TrafficEntry>,
}

impl TrafficTrace {
    /// Generates uniform-random traffic over the chiplet endpoints of
    /// `topo`: each endpoint offers a packet with probability `rate` per
    /// cycle for `window` cycles, to a uniformly-chosen other endpoint, on
    /// a uniformly-chosen VNet. VNet 2 carries 5-flit data packets, the
    /// control VNets single-flit packets (the paper's coherence split).
    pub fn random(topo: &Topology, seed: u64, window: Cycle, rate: f64) -> Self {
        const TRAFFIC_SALT: u64 = 0x51ed_2701_93bb_8c45;
        let mut rng = SmallRng::seed_from_u64(seed ^ TRAFFIC_SALT);
        let endpoints: Vec<NodeId> = topo
            .chiplets()
            .iter()
            .flat_map(|c| c.routers.iter().copied())
            .collect();
        let mut entries = Vec::new();
        for at in 0..window {
            for &src in &endpoints {
                if !rng.gen_bool(rate) {
                    continue;
                }
                let mut dest = endpoints[rng.gen_range(0..endpoints.len())];
                if dest == src {
                    dest = endpoints
                        [(endpoints.iter().position(|&e| e == src).unwrap() + 1) % endpoints.len()];
                }
                let vnet = VnetId(rng.gen_range(0..3u8));
                let len_flits = if vnet.0 == 2 { 5 } else { 1 };
                entries.push(TrafficEntry {
                    at,
                    src,
                    dest,
                    vnet,
                    len_flits,
                });
            }
        }
        Self { entries }
    }

    /// Number of offered packets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the trace offers nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upp_noc::topology::ChipletSystemSpec;

    #[test]
    fn traces_are_deterministic_and_sorted() {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let a = TrafficTrace::random(&topo, 3, 200, 0.05);
        let b = TrafficTrace::random(&topo, 3, 200, 0.05);
        assert_eq!(a.entries, b.entries);
        assert!(!a.is_empty());
        assert!(a.entries.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.entries.iter().all(|e| e.src != e.dest));
        assert!(a
            .entries
            .iter()
            .all(|e| e.len_flits == if e.vnet.0 == 2 { 5 } else { 1 }));
    }
}
