//! Property tests over the Fig. 4 signal codec: every valid signal
//! round-trips through its compact encoding, every encoding respects its
//! field width, and decoding never panics on arbitrary 32-bit words.

use proptest::prelude::*;
use upp_core::signal::{UppSignal, ACK_WIDTH, REQ_WIDTH};
use upp_noc::ids::{NodeId, VnetId};

fn valid_signal() -> impl Strategy<Value = UppSignal> {
    prop_oneof![
        (0u32..256, 0u8..3, 0u8..16).prop_map(|(d, v, vc)| UppSignal::Req {
            dest: NodeId(d),
            vnet: VnetId(v),
            input_vc: vc,
        }),
        (0u32..256, 0u8..3).prop_map(|(d, v)| UppSignal::Stop {
            dest: NodeId(d),
            vnet: VnetId(v),
        }),
        (0u8..3, 0u8..8).prop_map(|(v, s)| UppSignal::Ack {
            vnet: VnetId(v),
            started: s
        }),
    ]
}

proptest! {
    #[test]
    fn roundtrip(sig in valid_signal()) {
        let bits = sig.encode().expect("valid signals encode");
        prop_assert_eq!(UppSignal::decode(bits).expect("encodings decode"), sig);
    }

    #[test]
    fn encodings_fit_their_fields(sig in valid_signal()) {
        let bits = sig.encode().expect("valid signals encode");
        let width = match sig {
            UppSignal::Ack { .. } => ACK_WIDTH,
            _ => REQ_WIDTH,
        };
        prop_assert!(bits < (1u32 << width), "{sig:?} spilled past {width} bits: {bits:#b}");
    }

    #[test]
    fn decode_never_panics(bits in any::<u32>()) {
        // Arbitrary words either decode to a valid signal that re-encodes to
        // the same semantic content, or return a codec error.
        if let Ok(sig) = UppSignal::decode(bits) {
            let re = sig.encode().expect("decoded signals re-encode");
            prop_assert_eq!(UppSignal::decode(re).expect("re-encoding decodes"), sig);
        }
    }

    #[test]
    fn oversized_destinations_rejected(d in 256u32..10_000, v in 0u8..3) {
        let req = UppSignal::Req { dest: NodeId(d), vnet: VnetId(v), input_vc: 0 };
        let stop = UppSignal::Stop { dest: NodeId(d), vnet: VnetId(v) };
        prop_assert!(req.encode().is_err());
        prop_assert!(stop.encode().is_err());
    }

    #[test]
    fn oversized_vnets_rejected(v in 3u8..8) {
        let ack = UppSignal::Ack { vnet: VnetId(v), started: 0 };
        prop_assert!(ack.encode().is_err());
    }
}
