//! The UPP deadlock-recovery scheme (Secs. IV and V).
//!
//! UPP permits integration-induced deadlocks to form in the fully unrestricted
//! network, detects them with per-VNet timeout counters on the interposer
//! routers, and recovers by *popping up* the stalled upward packet: an
//! `UPP_req` reserves an ejection-queue entry at the destination NI and sets
//! up a buffer-bypass circuit on its way; the returning `UPP_ack` starts the
//! popup; upward flits then cross each chiplet router in a single
//! switch-traversal stage. False positives (congestion mistaken for
//! deadlock) cost only the signal bandwidth: if the packet proceeds normally
//! an `UPP_stop` recycles the reservation and the late ack is dropped.

use crate::detect::{up_sent_recently, UppCounter, UpwardArbiter};
use crate::protocol::{self, PopupStage};
use crate::signal::UppSignal;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use upp_noc::control::{ControlClass, ControlMsg, ControlRoute, DeliveredControl};
use upp_noc::ids::{ChipletId, Cycle, NodeId, PacketId, Port, VnetId};
use upp_noc::network::{Network, UpwardCandidate};
use upp_noc::obs::{CounterId, GaugeId, HistId};
use upp_noc::packet::RouteInfo;
use upp_noc::scheme::{Scheme, SchemeProperties};
use upp_noc::trace::TraceEvent;

/// UPP tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UppConfig {
    /// Deadlock-detection timeout in cycles (Table II uses 20).
    pub threshold: u64,
    /// Minimum gap between consecutive protocol signals from one interposer
    /// router; `None` resolves to `data_packet_flits + 1` (Sec. V-B5).
    pub signal_gap: Option<u64>,
    /// Serialise popups per (chiplet, VNet) instead of relying on the
    /// destination-keyed circuit table (the paper's interposer-coordination
    /// alternative, Sec. V-B5).
    pub serialize_per_chiplet: bool,
}

impl Default for UppConfig {
    fn default() -> Self {
        Self {
            threshold: protocol::DEFAULT_DETECTION_THRESHOLD,
            signal_gap: None,
            serialize_per_chiplet: false,
        }
    }
}

impl UppConfig {
    /// Config with a custom detection threshold (Fig. 13 sweeps 20/100/1000).
    pub fn with_threshold(threshold: u64) -> Self {
        Self {
            threshold,
            ..Self::default()
        }
    }
}

/// Counters describing one run's recovery activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UppStats {
    /// Upward packets selected by detection (the metric of Figs. 12/13).
    pub upward_packets: u64,
    /// Popups that transmitted a packet to its destination NI.
    pub popups_completed: u64,
    /// Popups that started mid-worm inside the chiplet (Sec. V-B3).
    pub partial_popups: u64,
    /// `UPP_req` signals emitted.
    pub reqs_sent: u64,
    /// `UPP_ack` signals emitted.
    pub acks_sent: u64,
    /// `UPP_stop` signals emitted (false positives that made progress).
    pub stops_sent: u64,
    /// Stale acks discarded at interposer routers.
    pub acks_dropped: u64,
    /// Cycles a reservation request waited for a free ejection entry.
    pub reservation_retries: u64,
    /// Total cycles between upward-packet selection and popup completion,
    /// summed over completed popups (divide by `popups_completed` for the
    /// mean recovery latency).
    pub recovery_cycles: u64,
    /// Cycles spent between selection and the `UPP_ack` arriving, summed
    /// over completed popups (the `WaitAck` stage of the recovery span).
    pub wait_ack_cycles: u64,
    /// Cycles spent searching for a partly-transmitted worm's head flit,
    /// summed over completed popups (zero for full popups).
    pub locate_cycles: u64,
    /// Cycles spent actually popping flits through the bypass path, summed
    /// over completed popups.
    pub pop_cycles: u64,
}

impl UppStats {
    /// Reads a consistent copy out of a shared handle. Tolerates a poisoned
    /// mutex (a panicked sweep worker must not cascade into every thread
    /// that later reads the same counters).
    pub fn snapshot(handle: &UppStatsHandle) -> UppStats {
        *handle
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mean cycles from detection to delivered popup.
    pub fn avg_recovery_latency(&self) -> f64 {
        if self.popups_completed == 0 {
            0.0
        } else {
            self.recovery_cycles as f64 / self.popups_completed as f64
        }
    }
}

/// Shared handle to a run's [`UppStats`].
pub type UppStatsHandle = Arc<Mutex<UppStats>>;

#[derive(Debug, Clone, Copy)]
enum Stage {
    Idle,
    /// Req queued/sent; waiting for the ack.
    WaitAck {
        cand: UpwardCandidate,
        selected_at: Cycle,
    },
    /// Ack received, head still at the interposer: popping flits up the
    /// bypass path.
    PopInterposer {
        cand: UpwardCandidate,
        selected_at: Cycle,
        acked_at: Cycle,
    },
    /// Ack received for a partly-transmitted worm: searching for the router
    /// currently holding the head flit.
    LocateHead {
        cand: UpwardCandidate,
        selected_at: Cycle,
        acked_at: Cycle,
    },
    /// Popping from the chiplet router that holds the head flit.
    PopChiplet {
        packet: PacketId,
        dest: NodeId,
        r_star: NodeId,
        in_port: Port,
        vc_flat: usize,
        selected_at: Cycle,
        acked_at: Cycle,
        located_at: Cycle,
    },
}

impl Stage {
    /// The shared-protocol stage this concrete (payload-carrying) stage
    /// corresponds to.
    fn kind(&self) -> PopupStage {
        match self {
            Stage::Idle => PopupStage::Idle,
            Stage::WaitAck { .. } => PopupStage::WaitAck,
            Stage::PopInterposer { .. } => PopupStage::PopInterposer,
            Stage::LocateHead { .. } => PopupStage::LocateHead,
            Stage::PopChiplet { .. } => PopupStage::PopChiplet,
        }
    }
}

struct VnetState {
    counter: UppCounter,
    arbiter: UpwardArbiter,
    stage: Stage,
    acks_to_drop: u32,
}

impl VnetState {
    fn new() -> Self {
        Self {
            counter: UppCounter::new(),
            arbiter: UpwardArbiter::new(),
            stage: Stage::Idle,
            acks_to_drop: 0,
        }
    }
}

struct RouterState {
    vnets: Vec<VnetState>,
    signal_q: VecDeque<ControlMsg>,
    last_signal: Option<Cycle>,
    chiplet: ChipletId,
}

/// Pre-registered telemetry ids for UPP's protocol-state metrics
/// (`Some` only while the network's obs registry is enabled).
///
/// Counters are recorded event-by-event from the per-cycle hooks, which
/// keeps them exact across `advance_to` fast-forwards: every recording
/// site sits on a path that [`Upp::advance_to`] refuses to skip (a
/// non-`Idle` stage, a queued signal, or — for the watchdog counter — an
/// expiry, which requires upward candidates and hence buffered flits that
/// keep the network non-quiescent). Distributions and queue depths are
/// sampled in [`Scheme::observe`] instead.
#[derive(Debug, Clone, Copy)]
struct UppObs {
    /// `(node, VNet)` pairs whose timeout watchdog sat expired this cycle.
    watchdog_expired: CounterId,
    /// Distribution of live watchdog counter values at epoch boundaries.
    watchdog_counter: HistId,
    /// Stage-transition counts (entries into each non-idle stage).
    enter_wait_ack: CounterId,
    enter_pop_interposer: CounterId,
    enter_locate_head: CounterId,
    enter_pop_chiplet: CounterId,
    /// Per-cycle dwell counts (cycles spent in each non-idle stage, summed
    /// over all `(node, VNet)` state machines).
    dwell_wait_ack: CounterId,
    dwell_pop_interposer: CounterId,
    dwell_locate_head: CounterId,
    dwell_pop_chiplet: CounterId,
    /// Per-popup latency decomposition (same quantities as [`UppStats`],
    /// but as distributions rather than sums).
    recovery: HistId,
    wait_ack: HistId,
    locate: HistId,
    pop: HistId,
    /// Chiplet-side circuit-table consultations during `PopChiplet`, and
    /// the defensive route-computation fallbacks among them.
    circuit_lookups: CounterId,
    circuit_fallbacks: CounterId,
    /// Non-idle popup state machines (sampled).
    stages_active: GaugeId,
    /// Total queued signals across serial signal units (sampled).
    signal_queue: GaugeId,
    /// Total queued NI-side protocol actions (sampled).
    ni_queue: GaugeId,
}

/// A queued NI-side protocol action. Requests and stops for one `(NI, VNet)`
/// always originate from the same interposer router (static binding) and are
/// processed in FIFO order, so a stop can never overtake its request.
#[derive(Debug, Clone, Copy)]
enum NiMsg {
    Req { origin: NodeId },
    Stop,
}

/// The UPP scheme.
///
/// # Examples
///
/// ```
/// use upp_core::{Upp, UppConfig};
///
/// let upp = Upp::new(UppConfig::default());
/// let stats = upp.stats_handle();
/// // ... hand `upp` to a `upp_noc::sim::System`, run, then read `stats`.
/// assert_eq!(stats.lock().unwrap().upward_packets, 0);
/// ```
pub struct Upp {
    cfg: UppConfig,
    gap: u64,
    routers: HashMap<NodeId, RouterState>,
    /// Interposer routers with an `Up` port, in scan order.
    up_nodes: Vec<NodeId>,
    /// All chiplet routers (NI inbox scan list).
    chiplet_nodes: Vec<NodeId>,
    ni_queues: HashMap<(NodeId, VnetId), VecDeque<NiMsg>>,
    stats: UppStatsHandle,
    initialized: bool,
    /// Telemetry ids, registered lazily once the network's obs registry is
    /// enabled.
    obs: Option<UppObs>,
    /// Reusable buffer for draining router/NI control inboxes
    /// (allocation-free on the per-cycle path).
    inbox_scratch: Vec<DeliveredControl>,
    /// Reusable buffer for upward-candidate scans (allocation-free on the
    /// per-cycle path).
    cand_scratch: Vec<UpwardCandidate>,
}

impl std::fmt::Debug for Upp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Upp")
            .field("cfg", &self.cfg)
            .field("up_nodes", &self.up_nodes.len())
            .finish_non_exhaustive()
    }
}

impl Upp {
    /// Creates the scheme.
    pub fn new(cfg: UppConfig) -> Self {
        Self {
            cfg,
            gap: 0,
            routers: HashMap::new(),
            up_nodes: Vec::new(),
            chiplet_nodes: Vec::new(),
            ni_queues: HashMap::new(),
            stats: Arc::new(Mutex::new(UppStats::default())),
            initialized: false,
            obs: None,
            inbox_scratch: Vec::new(),
            cand_scratch: Vec::new(),
        }
    }

    /// Shared handle to the run's recovery statistics (clone before boxing
    /// the scheme into a `System`).
    pub fn stats_handle(&self) -> UppStatsHandle {
        Arc::clone(&self.stats)
    }

    fn initialize(&mut self, net: &Network) {
        self.gap = self
            .cfg
            .signal_gap
            .unwrap_or_else(|| protocol::default_signal_gap(net.cfg().data_packet_flits));
        let num_vnets = net.cfg().num_vnets;
        for &ir in net.topo().interposer_routers() {
            let Some(above) = net.topo().above(ir) else {
                continue;
            };
            let chiplet = net
                .topo()
                .chiplet_of(above)
                .expect("boundary routers sit in chiplets");
            self.up_nodes.push(ir);
            self.routers.insert(
                ir,
                RouterState {
                    vnets: (0..num_vnets).map(|_| VnetState::new()).collect(),
                    signal_q: VecDeque::new(),
                    last_signal: None,
                    chiplet,
                },
            );
        }
        for c in net.topo().chiplets() {
            self.chiplet_nodes.extend(c.routers.iter().copied());
        }
        self.initialized = true;
    }

    /// Registers UPP's telemetry metrics once the registry is enabled
    /// (idempotent; a no-op while telemetry is off).
    fn ensure_obs(&mut self, net: &mut Network) {
        if self.obs.is_some() || !net.obs().is_enabled() {
            return;
        }
        let r = net.obs_mut();
        self.obs = Some(UppObs {
            watchdog_expired: r.counter("upp.watchdog.expired_cycles"),
            watchdog_counter: r.hist("upp.watchdog.counter"),
            enter_wait_ack: r.counter("upp.stage.enter.wait_ack"),
            enter_pop_interposer: r.counter("upp.stage.enter.pop_interposer"),
            enter_locate_head: r.counter("upp.stage.enter.locate_head"),
            enter_pop_chiplet: r.counter("upp.stage.enter.pop_chiplet"),
            dwell_wait_ack: r.counter("upp.stage.dwell.wait_ack"),
            dwell_pop_interposer: r.counter("upp.stage.dwell.pop_interposer"),
            dwell_locate_head: r.counter("upp.stage.dwell.locate_head"),
            dwell_pop_chiplet: r.counter("upp.stage.dwell.pop_chiplet"),
            recovery: r.hist("upp.popup.recovery_cycles"),
            wait_ack: r.hist("upp.popup.wait_ack_cycles"),
            locate: r.hist("upp.popup.locate_cycles"),
            pop: r.hist("upp.popup.pop_cycles"),
            circuit_lookups: r.counter("upp.circuit.lookups"),
            circuit_fallbacks: r.counter("upp.circuit.fallback_routes"),
            stages_active: r.gauge("upp.stages.active"),
            signal_queue: r.gauge("upp.signal_queue.depth"),
            ni_queue: r.gauge("upp.ni_queue.depth"),
        });
    }

    fn make_req(net: &Network, origin: NodeId, cand: &UpwardCandidate) -> ControlMsg {
        let bits = UppSignal::Req {
            dest: cand.dest,
            vnet: cand.vnet,
            input_vc: cand.vc_flat as u8,
        }
        .encode()
        .expect("baseline systems fit the Fig. 4 encoding");
        ControlMsg {
            class: ControlClass::ReqLike,
            bits,
            vnet: cand.vnet,
            routing: ControlRoute::Forward,
            route: net.plan_route(origin, cand.dest),
            origin,
            circuit_key: cand.dest,
            record_circuit: true,
            deliver_to_ni: true,
        }
    }

    fn make_stop(net: &Network, origin: NodeId, dest: NodeId, vnet: VnetId) -> ControlMsg {
        let bits = UppSignal::Stop { dest, vnet }
            .encode()
            .expect("baseline systems fit the Fig. 4 encoding");
        ControlMsg {
            class: ControlClass::ReqLike,
            bits,
            vnet,
            routing: ControlRoute::Forward,
            route: net.plan_route(origin, dest),
            origin,
            circuit_key: dest,
            record_circuit: false,
            deliver_to_ni: true,
        }
    }

    fn make_ack(origin_interposer: NodeId, dest_router: NodeId, vnet: VnetId) -> ControlMsg {
        let bits = UppSignal::Ack { vnet, started: 0 }
            .encode()
            .expect("ack encoding is total");
        ControlMsg {
            class: ControlClass::AckLike,
            bits,
            vnet,
            routing: ControlRoute::Reverse,
            route: RouteInfo::intra(origin_interposer),
            origin: dest_router,
            circuit_key: dest_router,
            record_circuit: false,
            deliver_to_ni: false,
        }
    }

    /// Records a popup stage transition in the network's tracer, when one
    /// is attached and enabled. Debug builds assert the transition is legal
    /// per the shared protocol relation — the same relation the `upp-check`
    /// model checker explores.
    fn trace_stage(
        net: &mut Network,
        node: NodeId,
        vnet: VnetId,
        packet: Option<PacketId>,
        from: PopupStage,
        to: PopupStage,
    ) {
        debug_assert!(
            from.can_transition_to(to),
            "illegal popup stage transition {from} -> {to}"
        );
        if net.tracer().enabled() {
            let at = net.cycle();
            net.tracer_mut().record(TraceEvent::PopupStage {
                at,
                node,
                vnet,
                packet,
                from: from.name(),
                to: to.name(),
            });
        }
    }

    /// Final accounting for one completed popup: recovery-latency stats,
    /// the per-stage latency decomposition, and the tracer's popup span.
    #[allow(clippy::too_many_arguments)]
    fn complete_popup(
        &mut self,
        net: &mut Network,
        node: NodeId,
        vnet: VnetId,
        packet: PacketId,
        selected_at: Cycle,
        acked_at: Cycle,
        located_at: Cycle,
        now: Cycle,
        from_stage: PopupStage,
    ) {
        let wait_ack = acked_at.saturating_sub(selected_at);
        let locate = located_at.saturating_sub(acked_at);
        let pop = now.saturating_sub(located_at);
        if let Some(o) = &self.obs {
            let r = net.obs_mut();
            r.record(o.recovery, now.saturating_sub(selected_at));
            r.record(o.wait_ack, wait_ack);
            r.record(o.locate, locate);
            r.record(o.pop, pop);
        }
        {
            let mut s = self.stats.lock().unwrap();
            s.popups_completed += 1;
            s.recovery_cycles += now.saturating_sub(selected_at);
            s.wait_ack_cycles += wait_ack;
            s.locate_cycles += locate;
            s.pop_cycles += pop;
        }
        if net.tracer().enabled() {
            net.tracer_mut().record(TraceEvent::PopupStage {
                at: now,
                node,
                vnet,
                packet: Some(packet),
                from: from_stage.name(),
                to: PopupStage::Idle.name(),
            });
            net.tracer_mut().record(TraceEvent::PopupSpan {
                node,
                vnet,
                packet,
                detected_at: selected_at,
                completed_at: now,
                wait_ack,
                locate,
                pop,
            });
        }
    }

    /// Marks popup priority for `packet` at every router currently holding
    /// its flits, so the worm drains ahead of ordinary traffic.
    fn mark_priority_everywhere(net: &mut Network, packet: PacketId) {
        let nodes: Vec<NodeId> = net.topo().nodes().iter().map(|n| n.id).collect();
        for n in nodes {
            let holds = {
                let r = net.router(n);
                r.input_vcs()
                    .any(|(p, f)| r.input_vc(p, f).owner == Some(packet))
            };
            if holds {
                net.router_mut(n).add_priority_packet(packet);
            }
        }
    }

    /// Finds the router whose input VC currently holds `packet`'s head flit.
    fn locate_head(net: &Network, packet: PacketId) -> Option<(NodeId, Port, usize)> {
        for node in net.topo().nodes() {
            let r = net.router(node.id);
            for (p, f) in r.input_vcs() {
                let vc = r.input_vc(p, f);
                if vc.owner == Some(packet) {
                    if let Some(front) = r.vc_front(p, f) {
                        if front.flit.kind.is_head() {
                            return Some((node.id, p, f));
                        }
                    }
                }
            }
        }
        None
    }

    /// True when no router holds any flit of `packet`.
    fn packet_gone(net: &Network, packet: PacketId) -> bool {
        net.topo().nodes().iter().all(|n| {
            let r = net.router(n.id);
            r.input_vcs()
                .all(|(p, f)| r.input_vc(p, f).owner != Some(packet))
        })
    }

    fn sibling_popup_active(&self, node: NodeId, vnet: VnetId) -> bool {
        let Some(chiplet) = self.routers.get(&node).map(|r| r.chiplet) else {
            return false;
        };
        self.up_nodes.iter().any(|&other| {
            other != node
                && self.routers.get(&other).is_some_and(|r| {
                    r.chiplet == chiplet && !r.vnets[vnet.index()].stage.kind().is_idle()
                })
        })
    }

    /// Drains NI control inboxes into the per-(NI, VNet) FIFO queues.
    fn collect_ni_messages(&mut self, net: &mut Network) {
        let mut inbox = std::mem::take(&mut self.inbox_scratch);
        for &node in &self.chiplet_nodes.clone() {
            net.drain_ni_inbox(node, &mut inbox);
            for d in inbox.drain(..) {
                match UppSignal::decode(d.msg.bits) {
                    Ok(UppSignal::Req { vnet, .. }) => self
                        .ni_queues
                        .entry((node, vnet))
                        .or_default()
                        .push_back(NiMsg::Req {
                            origin: d.msg.origin,
                        }),
                    Ok(UppSignal::Stop { vnet, .. }) => self
                        .ni_queues
                        .entry((node, vnet))
                        .or_default()
                        .push_back(NiMsg::Stop),
                    other => debug_assert!(false, "unexpected NI signal {other:?}"),
                }
            }
        }
        self.inbox_scratch = inbox;
    }

    /// Processes the NI-side protocol: reservations (retrying until an entry
    /// frees, which Sec. V-B4 proves always happens) and stops.
    fn process_ni_queues(&mut self, net: &mut Network) {
        let keys: Vec<(NodeId, VnetId)> = self
            .ni_queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&k, _)| k)
            .collect();
        for (node, vnet) in keys {
            let Some(front) = self
                .ni_queues
                .get(&(node, vnet))
                .and_then(|q| q.front().copied())
            else {
                continue;
            };
            match front {
                NiMsg::Req { origin } => {
                    if net.try_reserve_ejection(node, vnet) {
                        net.send_control(node, Self::make_ack(origin, node, vnet));
                        self.stats.lock().unwrap().acks_sent += 1;
                        self.ni_queues.get_mut(&(node, vnet)).unwrap().pop_front();
                    } else {
                        self.stats.lock().unwrap().reservation_retries += 1;
                    }
                }
                NiMsg::Stop => {
                    net.release_ejection_reservation(node, vnet);
                    self.ni_queues.get_mut(&(node, vnet)).unwrap().pop_front();
                }
            }
        }
    }

    /// Per-interposer-router detection, ack handling, stage machine and
    /// signal serialisation.
    fn process_router(&mut self, net: &mut Network, node: NodeId) {
        let now = net.cycle();
        let num_vnets = net.cfg().num_vnets;

        // Ack arrivals first (delivered this cycle by begin_cycle). The
        // scratch buffer is taken out of `self` so `handle_ack` can borrow
        // both `self` and `net` while iterating.
        let mut acks = std::mem::take(&mut self.inbox_scratch);
        net.drain_router_inbox(node, &mut acks);
        for d in acks.drain(..) {
            let Ok(UppSignal::Ack { vnet, .. }) = UppSignal::decode(d.msg.bits) else {
                debug_assert!(false, "router inbox must only hold acks");
                continue;
            };
            self.handle_ack(net, node, vnet);
        }
        self.inbox_scratch = acks;

        for v in 0..num_vnets {
            let vnet = VnetId(v as u8);
            self.advance_stage(net, node, vnet);
            self.detect(net, node, vnet, now);
        }

        // Serial signal unit with the Size_of_Data_Packet + 1 gap.
        let st = self.routers.get_mut(&node).expect("router state exists");
        if let Some(msg) = st.signal_q.front().copied() {
            let ready = match st.last_signal {
                None => true,
                Some(t) => now >= t + self.gap,
            };
            if ready {
                st.signal_q.pop_front();
                st.last_signal = Some(now);
                net.send_control(node, msg);
            }
        }
    }

    fn handle_ack(&mut self, net: &mut Network, node: NodeId, vnet: VnetId) {
        let st = self.routers.get_mut(&node).expect("router state exists");
        let vs = &mut st.vnets[vnet.index()];
        if vs.acks_to_drop > 0 {
            vs.acks_to_drop -= 1;
            self.stats.lock().unwrap().acks_dropped += 1;
            return;
        }
        let Stage::WaitAck { cand, selected_at } = vs.stage else {
            // Stale ack with no drop budget: protocol noise, discard.
            self.stats.lock().unwrap().acks_dropped += 1;
            return;
        };
        // Re-examine the candidate VC at ack time.
        let vc_state = {
            let r = net.router(node);
            let vc = r.input_vc(cand.in_port, cand.vc_flat);
            (
                vc.owner,
                r.vc_partly_transmitted(cand.in_port, cand.vc_flat),
            )
        };
        let acked_at = net.cycle();
        let st = self.routers.get_mut(&node).expect("router state exists");
        let vs = &mut st.vnets[vnet.index()];
        match vc_state {
            (Some(owner), partly) if owner == cand.packet => {
                if partly {
                    vs.stage = Stage::LocateHead {
                        cand,
                        selected_at,
                        acked_at,
                    };
                    if let Some(o) = &self.obs {
                        net.obs_mut().inc(o.enter_locate_head);
                    }
                    Self::trace_stage(
                        net,
                        node,
                        vnet,
                        Some(cand.packet),
                        PopupStage::WaitAck,
                        PopupStage::LocateHead,
                    );
                } else {
                    vs.stage = Stage::PopInterposer {
                        cand,
                        selected_at,
                        acked_at,
                    };
                    if let Some(o) = &self.obs {
                        net.obs_mut().inc(o.enter_pop_interposer);
                    }
                    net.router_mut(node)
                        .set_vc_frozen(cand.in_port, cand.vc_flat, true);
                    net.router_mut(node).add_priority_packet(cand.packet);
                    Self::trace_stage(
                        net,
                        node,
                        vnet,
                        Some(cand.packet),
                        PopupStage::WaitAck,
                        PopupStage::PopInterposer,
                    );
                }
            }
            _ => {
                // The packet proceeded normally between req and ack: recycle
                // the reservation. The ack itself was just consumed, so no
                // drop budget is added.
                st.signal_q
                    .push_back(Self::make_stop(net, node, cand.dest, vnet));
                self.stats.lock().unwrap().stops_sent += 1;
                vs.stage = Stage::Idle;
                Self::trace_stage(
                    net,
                    node,
                    vnet,
                    Some(cand.packet),
                    PopupStage::WaitAck,
                    PopupStage::Idle,
                );
            }
        }
    }

    fn advance_stage(&mut self, net: &mut Network, node: NodeId, vnet: VnetId) {
        let stage = self.routers.get(&node).expect("router state exists").vnets[vnet.index()].stage;
        // Dwell accounting: one count per cycle spent in a non-idle stage.
        // Exact across fast-forwards because `advance_to` vetoes any jump
        // while a stage is non-idle.
        if let Some(o) = &self.obs {
            let id = match stage {
                Stage::Idle => None,
                Stage::WaitAck { .. } => Some(o.dwell_wait_ack),
                Stage::PopInterposer { .. } => Some(o.dwell_pop_interposer),
                Stage::LocateHead { .. } => Some(o.dwell_locate_head),
                Stage::PopChiplet { .. } => Some(o.dwell_pop_chiplet),
            };
            if let Some(id) = id {
                net.obs_mut().inc(id);
            }
        }
        match stage {
            Stage::Idle => {}
            Stage::WaitAck { cand, .. } => {
                let owner = net.router(node).input_vc(cand.in_port, cand.vc_flat).owner;
                if owner != Some(cand.packet) {
                    // Normal progress before the ack: stop + drop the ack.
                    let stop = Self::make_stop(net, node, cand.dest, vnet);
                    let st = self.routers.get_mut(&node).expect("router state exists");
                    st.signal_q.push_back(stop);
                    let vs = &mut st.vnets[vnet.index()];
                    vs.acks_to_drop += 1;
                    vs.stage = Stage::Idle;
                    let mut s = self.stats.lock().unwrap();
                    s.stops_sent += 1;
                    drop(s);
                    Self::trace_stage(
                        net,
                        node,
                        vnet,
                        Some(cand.packet),
                        PopupStage::WaitAck,
                        PopupStage::Idle,
                    );
                }
            }
            Stage::PopInterposer {
                cand,
                selected_at,
                acked_at,
            } => {
                Self::mark_priority_everywhere(net, cand.packet);
                // Pops pipeline with bypass forwarding: one flit per cycle.
                if net.bypass_pending(node) <= 1 {
                    if let Some(flit) = net.pop_upward_flit(node, cand.in_port, cand.vc_flat) {
                        if flit.kind.is_tail() {
                            let now = net.cycle();
                            let st = self.routers.get_mut(&node).expect("router state exists");
                            st.vnets[vnet.index()].stage = Stage::Idle;
                            self.complete_popup(
                                net,
                                node,
                                vnet,
                                cand.packet,
                                selected_at,
                                acked_at,
                                acked_at,
                                now,
                                PopupStage::PopInterposer,
                            );
                        }
                    }
                }
            }
            Stage::LocateHead {
                cand,
                selected_at,
                acked_at,
            } => {
                match Self::locate_head(net, cand.packet) {
                    Some((r_star, in_port, vc_flat)) if r_star == node => {
                        // Head still here after all: full popup.
                        net.router_mut(node).set_vc_frozen(in_port, vc_flat, true);
                        net.router_mut(node).add_priority_packet(cand.packet);
                        let st = self.routers.get_mut(&node).expect("router state exists");
                        st.vnets[vnet.index()].stage = Stage::PopInterposer {
                            cand,
                            selected_at,
                            acked_at,
                        };
                        if let Some(o) = &self.obs {
                            net.obs_mut().inc(o.enter_pop_interposer);
                        }
                        Self::trace_stage(
                            net,
                            node,
                            vnet,
                            Some(cand.packet),
                            PopupStage::LocateHead,
                            PopupStage::PopInterposer,
                        );
                    }
                    Some((r_star, in_port, vc_flat)) => {
                        net.router_mut(r_star).set_vc_frozen(in_port, vc_flat, true);
                        Self::mark_priority_everywhere(net, cand.packet);
                        let located_at = net.cycle();
                        let st = self.routers.get_mut(&node).expect("router state exists");
                        st.vnets[vnet.index()].stage = Stage::PopChiplet {
                            packet: cand.packet,
                            dest: cand.dest,
                            r_star,
                            in_port,
                            vc_flat,
                            selected_at,
                            acked_at,
                            located_at,
                        };
                        if let Some(o) = &self.obs {
                            net.obs_mut().inc(o.enter_pop_chiplet);
                        }
                        self.stats.lock().unwrap().partial_popups += 1;
                        Self::trace_stage(
                            net,
                            node,
                            vnet,
                            Some(cand.packet),
                            PopupStage::LocateHead,
                            PopupStage::PopChiplet,
                        );
                    }
                    None => {
                        if Self::packet_gone(net, cand.packet) {
                            // Fully delivered through the normal path while
                            // we were looking: recycle the reservation.
                            let stop = Self::make_stop(net, node, cand.dest, vnet);
                            let st = self.routers.get_mut(&node).expect("router state exists");
                            st.signal_q.push_back(stop);
                            st.vnets[vnet.index()].stage = Stage::Idle;
                            self.stats.lock().unwrap().stops_sent += 1;
                            Self::trace_stage(
                                net,
                                node,
                                vnet,
                                Some(cand.packet),
                                PopupStage::LocateHead,
                                PopupStage::Idle,
                            );
                        }
                        // Otherwise the head flit is on a link; retry next
                        // cycle.
                    }
                }
            }
            Stage::PopChiplet {
                packet,
                dest,
                r_star,
                in_port,
                vc_flat,
                selected_at,
                acked_at,
                located_at,
            } => {
                Self::mark_priority_everywhere(net, packet);
                if net.bypass_pending(r_star) <= 1 {
                    let hit = net.router(r_star).circuit(vnet, dest).map(|e| e.out_port);
                    if let Some(o) = &self.obs {
                        let r = net.obs_mut();
                        r.inc(o.circuit_lookups);
                        if hit.is_none() {
                            r.inc(o.circuit_fallbacks);
                        }
                    }
                    let out = hit.unwrap_or_else(|| {
                        // The req recorded circuits along this exact path;
                        // fall back to route computation defensively.
                        let route = net.plan_route(r_star, dest);
                        net.routing().route(net.topo(), r_star, in_port, &route)
                    });
                    if let Some(flit) = net.pop_bypass_flit(r_star, in_port, vc_flat, out) {
                        if flit.kind.is_tail() {
                            let now = net.cycle();
                            let st = self.routers.get_mut(&node).expect("router state exists");
                            st.vnets[vnet.index()].stage = Stage::Idle;
                            self.complete_popup(
                                net,
                                node,
                                vnet,
                                packet,
                                selected_at,
                                acked_at,
                                located_at,
                                now,
                                PopupStage::PopChiplet,
                            );
                        }
                    }
                }
            }
        }
    }

    fn detect(&mut self, net: &mut Network, node: NodeId, vnet: VnetId, now: Cycle) {
        let stage_idle = self.routers.get(&node).expect("router state exists").vnets[vnet.index()]
            .stage
            .kind()
            .is_idle();
        self.cand_scratch.clear();
        net.upward_candidates_into(node, vnet, &mut self.cand_scratch);
        let recent = up_sent_recently(net.up_last_sent(node, vnet), now);
        let st = self.routers.get_mut(&node).expect("router state exists");
        let vs = &mut st.vnets[vnet.index()];
        if !stage_idle {
            vs.counter.reset();
            return;
        }
        vs.counter.tick(!self.cand_scratch.is_empty(), recent);
        if !vs.counter.expired(self.cfg.threshold) {
            return;
        }
        // Watchdog pressure: expiry implies upward candidates exist, hence
        // buffered flits, hence a non-quiescent network — so this per-cycle
        // count can never be skipped by a fast-forward.
        if let Some(o) = &self.obs {
            net.obs_mut().inc(o.watchdog_expired);
        }
        if self.cfg.serialize_per_chiplet && self.sibling_popup_active(node, vnet) {
            return;
        }
        let st = self.routers.get_mut(&node).expect("router state exists");
        let vs = &mut st.vnets[vnet.index()];
        let Some(cand) = vs.arbiter.pick(&self.cand_scratch) else {
            return;
        };
        vs.counter.reset();
        vs.stage = Stage::WaitAck {
            cand,
            selected_at: now,
        };
        if let Some(o) = &self.obs {
            net.obs_mut().inc(o.enter_wait_ack);
        }
        let req = Self::make_req(net, node, &cand);
        let st = self.routers.get_mut(&node).expect("router state exists");
        st.signal_q.push_back(req);
        Self::trace_stage(
            net,
            node,
            vnet,
            Some(cand.packet),
            PopupStage::Idle,
            PopupStage::WaitAck,
        );
        let mut s = self.stats.lock().unwrap();
        s.upward_packets += 1;
        s.reqs_sent += 1;
    }
}

impl Scheme for Upp {
    fn name(&self) -> &'static str {
        "UPP"
    }

    fn properties(&self) -> SchemeProperties {
        SchemeProperties {
            topology_modularity: true,
            vc_modularity: true,
            flow_control_modularity: true,
            full_path_diversity: true,
            no_injection_control: true,
            topology_independence: true,
        }
    }

    fn pre_cycle(&mut self, net: &mut Network) {
        if !self.initialized {
            self.initialize(net);
        }
        self.ensure_obs(net);
        self.collect_ni_messages(net);
        self.process_ni_queues(net);
        for node in self.up_nodes.clone() {
            self.process_router(net, node);
        }
    }

    fn observe(&mut self, net: &mut Network) {
        if !net.obs().is_enabled() {
            return;
        }
        if !self.initialized {
            self.initialize(net);
        }
        self.ensure_obs(net);
        let Some(o) = self.obs else { return };
        let mut active = 0u64;
        let mut signals = 0u64;
        for st in self.routers.values() {
            signals += st.signal_q.len() as u64;
            for vs in &st.vnets {
                if !vs.stage.kind().is_idle() {
                    active += 1;
                }
                // Distribution of live watchdog values: how close the
                // population of `(node, VNet)` watchdogs sits to the
                // threshold. Bucket adds commute, so the iteration order of
                // the router map cannot affect the exported bytes.
                net.obs_mut().record(o.watchdog_counter, vs.counter.value());
            }
        }
        let ni_pending: u64 = self.ni_queues.values().map(|q| q.len() as u64).sum();
        let r = net.obs_mut();
        r.gauge_set(o.stages_active, active);
        r.gauge_set(o.signal_queue, signals);
        r.gauge_set(o.ni_queue, ni_pending);
    }

    fn advance_to(&mut self, _net: &Network, _from: Cycle, _to: Cycle) -> bool {
        // A quiescent network still leaves UPP with per-cycle obligations
        // whenever the protocol machinery is mid-flight; any of those vetoes
        // the jump and per-cycle stepping continues:
        //   * not yet initialized — the first pre_cycle must still run;
        //   * a queued signal — the serial signal unit paces sends by cycle;
        //   * a non-Idle stage — WaitAck/Pop* transitions are checked every
        //     cycle;
        //   * a pending NI message — ejection reservations retry per cycle.
        if !self.initialized {
            return false;
        }
        if self.routers.values().any(|st| {
            !st.signal_q.is_empty() || st.vnets.iter().any(|vs| !vs.stage.kind().is_idle())
        }) {
            return false;
        }
        if self.ni_queues.values().any(|q| !q.is_empty()) {
            return false;
        }
        // With every stage Idle and no buffered flits anywhere, each skipped
        // cycle's `detect` would see zero upward candidates and tick every
        // counter back to zero (`tick(false, _)` → 0). Apply that batched
        // effect here so the jump is cycle-exact.
        for st in self.routers.values_mut() {
            for vs in &mut st.vnets {
                vs.counter.reset();
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use upp_noc::config::NocConfig;
    use upp_noc::ni::ConsumePolicy;
    use upp_noc::routing::ChipletRouting;
    use upp_noc::sim::{RunOutcome, System};
    use upp_noc::topology::ChipletSystemSpec;

    fn system(threshold: u64, consume: ConsumePolicy) -> (System, UppStatsHandle) {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let net = upp_noc::network::Network::new(
            NocConfig::default(),
            topo,
            StdArc::new(ChipletRouting::xy()),
            consume,
            11,
        );
        let upp = Upp::new(UppConfig::with_threshold(threshold));
        let stats = upp.stats_handle();
        (System::new(net, Box::new(upp)), stats)
    }

    #[test]
    fn quiet_network_never_detects() {
        let (mut sys, stats) = system(20, ConsumePolicy::Immediate { latency: 1 });
        let src = sys.net().topo().chiplets()[0].routers[0];
        let dest = sys.net().topo().chiplets()[1].routers[9];
        sys.send(src, dest, VnetId(0), 5).unwrap();
        assert!(matches!(
            sys.run_until_drained(2_000),
            RunOutcome::Drained { .. }
        ));
        assert_eq!(stats.lock().unwrap().upward_packets, 0);
    }

    #[test]
    fn congestion_triggers_detection_and_everything_still_drains() {
        // Slow consumption at one hot destination: upward packets stall at
        // the interposer long enough to trip a tiny threshold. These are
        // false positives — and per Sec. V-A handling them is harmless.
        let (mut sys, stats) = system(3, ConsumePolicy::Immediate { latency: 40 });
        let dest = sys.net().topo().chiplets()[0].routers[5];
        let sources: Vec<NodeId> = sys.net().topo().chiplets()[3].routers.clone();
        let mut sent = 0u64;
        for round in 0..6 {
            for &s in &sources {
                if sys.send(s, dest, VnetId(0), 5).is_some() {
                    sent += 1;
                }
            }
            let _ = round;
            sys.run(10);
        }
        let out = sys.run_until_drained(60_000);
        assert!(matches!(out, RunOutcome::Drained { .. }), "got {out:?}");
        assert_eq!(sys.net().stats().packets_ejected, sent);
        let s = *stats.lock().unwrap();
        assert!(
            s.upward_packets > 0,
            "expected detections under hotspot congestion: {s:?}"
        );
        // Protocol conservation: every req is answered by exactly one ack
        // (possibly dropped), every stop matches an earlier req.
        assert!(s.acks_sent <= s.reqs_sent);
        assert!(s.stops_sent + s.popups_completed <= s.reqs_sent + 1);
    }

    #[test]
    fn popup_delivers_into_reserved_entry() {
        // Force popups by making consumption glacial; ensure at least one
        // packet completes via the bypass path and nothing is lost.
        let (mut sys, stats) = system(2, ConsumePolicy::Immediate { latency: 120 });
        let dest = sys.net().topo().chiplets()[1].routers[10];
        let mut sent = 0u64;
        let sources: Vec<NodeId> = sys
            .net()
            .topo()
            .chiplets()
            .iter()
            .flat_map(|c| c.routers.iter().copied())
            .filter(|&n| sys.net().topo().chiplet_of(n) != sys.net().topo().chiplet_of(dest))
            .take(24)
            .collect();
        for _ in 0..4 {
            for &s in &sources {
                if sys.send(s, dest, VnetId(1), 5).is_some() {
                    sent += 1;
                }
            }
            sys.run(5);
        }
        let out = sys.run_until_drained(120_000);
        assert!(matches!(out, RunOutcome::Drained { .. }), "got {out:?}");
        assert_eq!(sys.net().stats().packets_ejected, sent);
        let s = *stats.lock().unwrap();
        assert!(
            s.popups_completed + s.stops_sent > 0,
            "popup machinery must have engaged: {s:?}"
        );
    }

    #[test]
    fn telemetry_sees_watchdog_and_circuit_pressure() {
        // Same hotspot scenario that forces popups, with the obs registry
        // armed: the protocol's boundary structures must show up.
        let (mut sys, _stats) = system(2, ConsumePolicy::Immediate { latency: 120 });
        sys.net_mut().enable_obs();
        let dest = sys.net().topo().chiplets()[1].routers[10];
        let sources: Vec<NodeId> = sys
            .net()
            .topo()
            .chiplets()
            .iter()
            .flat_map(|c| c.routers.iter().copied())
            .filter(|&n| sys.net().topo().chiplet_of(n) != sys.net().topo().chiplet_of(dest))
            .take(24)
            .collect();
        for _ in 0..4 {
            for &s in &sources {
                sys.send(s, dest, VnetId(1), 5);
            }
            sys.run(5);
        }
        let out = sys.run_until_drained(120_000);
        assert!(matches!(out, RunOutcome::Drained { .. }), "got {out:?}");
        sys.observe();
        let obs = sys.net().obs();
        assert!(obs.counter_value("upp.watchdog.expired_cycles") > 0);
        assert!(obs.counter_value("upp.stage.enter.wait_ack") > 0);
        assert!(
            obs.counter_value("upp.stage.dwell.wait_ack")
                >= obs.counter_value("upp.stage.enter.wait_ack"),
            "every entered stage dwells at least one cycle"
        );
        assert!(obs.counter_value("circuit.inserts") > 0);
        assert!(obs.gauge_value("circuit.entries").1 > 0, "high-water mark");
        let wd = obs.histogram("upp.watchdog.counter").expect("registered");
        assert!(wd.count() > 0, "watchdog distribution sampled");
        let summary = obs.summary_json(sys.net().cycle());
        assert!(summary.contains("\"upp.popup.recovery_cycles\""));
        assert!(summary.contains("\"circuit.lookup_hits\""));
    }

    #[test]
    fn properties_match_table_i() {
        let upp = Upp::new(UppConfig::default());
        let p = upp.properties();
        assert!(p.topology_modularity);
        assert!(p.vc_modularity);
        assert!(p.flow_control_modularity);
        assert!(p.full_path_diversity);
        assert!(p.no_injection_control);
        assert!(p.topology_independence);
    }

    #[test]
    fn threshold_config_roundtrip() {
        let c = UppConfig::with_threshold(100);
        assert_eq!(c.threshold, 100);
        assert!(c.signal_gap.is_none());
        assert!(!c.serialize_per_chiplet);
    }
}
