//! Counting-allocator smoke test: the steady-state cycle kernel must run
//! allocation-free once warm.
//!
//! The data-oriented kernel (interned packet descriptors, SoA VC rings,
//! slab-indexed side tables) claims zero heap traffic per cycle after the
//! transients settle: every buffer is fixed-capacity, the descriptor arena
//! recycles handles through a free list, and the event calendar reuses its
//! ring slots. This test installs a counting global allocator, warms the
//! kernel up, then arms the counter and asserts that a window of
//! steady-state cycles performs no allocations — on the serial kernel AND
//! the sharded one (whose phase dispatch keeps worker jobs on recursion
//! stack frames instead of boxing them).
//!
//! Escape hatch: `UPP_ALLOC_LAX=1` downgrades a violation to a warning,
//! for platforms whose std primitives allocate where glibc's do not.

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use upp_noc::config::NocConfig;
use upp_noc::ni::ConsumePolicy;
use upp_noc::topology::ChipletSystemSpec;
use upp_workloads::runner::{build_system, SchemeKind};
use upp_workloads::synthetic::{Pattern, SyntheticTraffic};

/// Forwards to the system allocator, counting allocations (and growing
/// reallocations) while armed. Deallocations are never counted: freeing
/// during the window is harmless — it is *acquiring* memory per cycle
/// that the kernel promises not to do.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        SystemAlloc.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        SystemAlloc.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        SystemAlloc.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        SystemAlloc.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn lax() -> bool {
    std::env::var("UPP_ALLOC_LAX").is_ok_and(|v| v != "0")
}

const WARMUP_CYCLES: u64 = 4_000;
const MEASURE_CYCLES: u64 = 2_000;

/// Runs one kernel configuration and returns the allocations counted over
/// the armed steady-state window.
fn measure(shards: usize) -> u64 {
    let spec = ChipletSystemSpec::baseline();
    let built = build_system(
        &spec,
        NocConfig::default(),
        &SchemeKind::None,
        0,
        2022,
        ConsumePolicy::Immediate { latency: 1 },
    );
    let mut sys = built.sys;
    if shards > 1 {
        let eff = sys.set_shards(shards);
        assert!(
            eff > 1,
            "sharded run degraded to serial (vacuous measurement)"
        );
    }
    // Modest uniform-random load: enough in-flight traffic to keep every
    // pipeline stage busy, low enough that the network reaches a steady
    // state instead of accumulating an unbounded backlog.
    let mut traffic = SyntheticTraffic::new(sys.net().topo(), Pattern::UniformRandom, 0.03, 2022);
    for _ in 0..WARMUP_CYCLES {
        traffic.tick(&mut sys);
        sys.step();
    }
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..MEASURE_CYCLES {
        traffic.tick(&mut sys);
        sys.step();
    }
    ARMED.store(false, Ordering::SeqCst);
    let count = ALLOCS.load(Ordering::SeqCst);
    // Keep the run honest: the window must have carried real traffic.
    assert!(
        sys.net().stats().packets_ejected > 0,
        "measurement window saw no traffic"
    );
    count
}

/// One test function (not two) so the serial and sharded windows cannot
/// interleave their use of the shared global counters.
#[test]
fn steady_state_cycles_are_allocation_free() {
    for shards in [1, 2] {
        let allocs = measure(shards);
        let label = if shards == 1 { "serial" } else { "2-shard" };
        if allocs == 0 {
            continue;
        }
        let msg = format!(
            "{label} kernel performed {allocs} heap allocations over \
             {MEASURE_CYCLES} steady-state cycles (expected 0)"
        );
        if lax() {
            eprintln!("UPP_ALLOC_LAX set; ignoring: {msg}");
        } else {
            panic!("{msg}");
        }
    }
}
