//! # upp-check — exhaustive model checking of the popup protocol
//!
//! The simulator crates *test* UPP on sampled traffic; this crate
//! *verifies* it on an abstraction small enough to exhaust. The popup
//! protocol — watchdog detection, `UPP_req`/`ack`/`stop` handshake,
//! ejection-entry reservation, bypass-circuit transmission — is modelled
//! as an explicit-state transition system over a ring of boundary routers
//! ([`model`]), explored exhaustively with canonical hashing and rotation
//! symmetry reduction ([`explore`]), and checked against two properties
//! ([`props`]):
//!
//! 1. **Bounded recovery** — every reachable state (deadlocks included)
//!    can reach a fully drained state, with a proven worst-case bound;
//! 2. **No popup livelock** — the protocol machinery cannot cycle forever
//!    without packet progress.
//!
//! The model is wired to the same [`upp_core::protocol`] definitions the
//! concrete scheme consumes (stages, legal stage transitions, circuit
//! capacity), and every verdict is concretized ([`artifact`]) into a
//! scenario artifact that `upp-verify`'s bridge replays through the full
//! simulator — abstract claims are cross-validated, not taken on faith.
//! Deliberate protocol mutations (`--mutation`) prove the checker can
//! convict each obligation the paper's argument rests on.
//!
//! See `MODEL.md` in this crate for the abstraction map and its
//! soundness arguments, and the `upp-check` binary for the CLI.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod artifact;
pub mod explore;
pub mod model;
pub mod props;

pub use artifact::{clean_artifact, livelock_artifact, recovery_artifact};
pub use explore::{explore, Exploration, ExploreStats};
pub use model::{ModelCfg, Mutation, State, Transition};
pub use props::{check_bounded_recovery, check_no_livelock};
