//! Network flexibility (Sec. VI-B): UPP adapts to dynamic topology changes —
//! links fail at runtime, the local routing tables are rebuilt in-place, and
//! traffic (including recovery) continues. Composable routing would need its
//! design-time restriction search; remote control's permission subnetwork is
//! hard-wired.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use upp_core::{Upp, UppConfig};
use upp_noc::config::NocConfig;
use upp_noc::ids::{NodeId, Port, VnetId};
use upp_noc::network::Network;
use upp_noc::ni::ConsumePolicy;
use upp_noc::routing::{ChipletRouting, RouteTables};
use upp_noc::sim::{RunOutcome, System};
use upp_noc::topology::ChipletSystemSpec;

fn drive(sys: &mut System, seed: u64, cycles: u64, rate: f64) -> u64 {
    let cores: Vec<NodeId> = sys
        .net()
        .topo()
        .chiplets()
        .iter()
        .flat_map(|c| c.routers.iter().copied())
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sent = 0;
    for _ in 0..cycles {
        for &src in &cores {
            if rng.gen::<f64>() >= rate {
                continue;
            }
            let dest = cores[rng.gen_range(0..cores.len())];
            if dest == src {
                continue;
            }
            let vnet = VnetId(rng.gen_range(0..3u8));
            let len = if vnet.0 == 2 { 5 } else { 1 };
            if sys.send(src, dest, vnet, len).is_some() {
                sent += 1;
            }
        }
        sys.step();
    }
    sent
}

#[test]
fn links_fail_at_runtime_and_traffic_continues() {
    let topo = ChipletSystemSpec::baseline().build(0).unwrap();
    let net = Network::new(
        NocConfig::default(),
        topo,
        Arc::new(ChipletRouting::xy()),
        ConsumePolicy::Immediate { latency: 1 },
        7,
    );
    let mut sys = System::new(net, Box::new(Upp::new(UppConfig::default())));

    // Phase 1: healthy network under real load.
    let sent1 = drive(&mut sys, 1, 2_000, 0.15);
    assert!(matches!(
        sys.run_until_drained(200_000),
        RunOutcome::Drained { .. }
    ));
    assert_eq!(sys.net().stats().packets_ejected, sent1);

    // Phase 2: two mesh links die; rebuild up*/down* tables online.
    let victims: Vec<(NodeId, Port)> = {
        let topo = sys.net().topo();
        let c0 = &topo.chiplets()[0];
        vec![
            (c0.routers[0], Port::East),
            (topo.interposer_routers()[5], Port::North),
        ]
    };
    // Reconfiguration is refused while packets are in flight.
    sys.net_mut()
        .try_send(victims[0].0, victims[0].0, VnetId(0), 1);
    {
        let topo = sys.net().topo().clone();
        let tables = Arc::new(RouteTables::build(&topo));
        // (network still has the probe packet queued)
        let err = sys
            .net_mut()
            .reconfigure(|_| {}, Arc::new(ChipletRouting::with_tables(tables)));
        assert!(err.is_err(), "reconfiguration must be refused mid-flight");
    }
    assert!(matches!(
        sys.run_until_drained(10_000),
        RunOutcome::Drained { .. }
    ));

    // Now drained: apply the faults and swap in table routing.
    {
        let mut planned = sys.net().topo().clone();
        for &(n, p) in &victims {
            planned.set_link_faulty(n, p);
        }
        let tables = Arc::new(RouteTables::build(&planned));
        sys.net_mut()
            .reconfigure(
                |topo| {
                    for &(n, p) in &victims {
                        topo.set_link_faulty(n, p);
                    }
                },
                Arc::new(ChipletRouting::with_tables(tables)),
            )
            .expect("drained network reconfigures");
    }
    assert_eq!(sys.net().topo().num_faulty_links(), 2);

    // Phase 3: same load on the degraded network; UPP still delivers all.
    let before = sys.net().stats().packets_ejected;
    let sent2 = drive(&mut sys, 2, 2_000, 0.15);
    let out = sys.run_until_drained(200_000);
    assert!(matches!(out, RunOutcome::Drained { .. }), "{out:?}");
    assert_eq!(sys.net().stats().packets_ejected - before, sent2);
}

#[test]
fn repeated_reconfigurations_accumulate_faults_gracefully() {
    let topo = ChipletSystemSpec::baseline().build(0).unwrap();
    let net = Network::new(
        NocConfig::default(),
        topo,
        Arc::new(ChipletRouting::xy()),
        ConsumePolicy::Immediate { latency: 1 },
        11,
    );
    let mut sys = System::new(net, Box::new(Upp::new(UppConfig::default())));
    let mut rng = SmallRng::seed_from_u64(77);
    let mut total_sent = 0;
    for round in 0..4u64 {
        total_sent += drive(&mut sys, round, 800, 0.06);
        assert!(matches!(
            sys.run_until_drained(100_000),
            RunOutcome::Drained { .. }
        ));
        // Fail one random surviving mesh link per round (keeping validity).
        let candidates: Vec<(NodeId, Port)> = {
            let topo = sys.net().topo();
            topo.nodes()
                .iter()
                .flat_map(|n| n.links().map(move |(p, _)| (n.id, p)))
                .filter(|&(n, p)| p.is_mesh() && !topo.is_link_faulty(n, p))
                .collect()
        };
        let pick = candidates[rng.gen_range(0..candidates.len())];
        let mut planned = sys.net().topo().clone();
        planned.set_link_faulty(pick.0, pick.1);
        if planned.validate().is_err() {
            continue; // would disconnect a region; skip this round's fault
        }
        let tables = Arc::new(RouteTables::build(&planned));
        sys.net_mut()
            .reconfigure(
                |topo| topo.set_link_faulty(pick.0, pick.1),
                Arc::new(ChipletRouting::with_tables(tables)),
            )
            .unwrap();
    }
    assert!(sys.net().topo().num_faulty_links() >= 1);
    assert_eq!(sys.net().stats().packets_ejected, total_sent);
}
