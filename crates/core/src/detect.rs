//! Deadlock detection (Sec. V-A): per-VNet timeout counters on every
//! interposer router that owns an `Up` port, plus the round-robin upward
//! packet arbiter.

use serde::{Deserialize, Serialize};
use upp_noc::ids::Cycle;
use upp_noc::network::UpwardCandidate;

/// One VNet's timeout counter on one interposer router.
///
/// The counter records for how long packets of this VNet have been stalled
/// while attempting to move up the vertical link without *any* flit of the
/// VNet departing through the `Up` output port. Crossing the threshold marks
/// a (potential) deadlock; the arbiter then picks the upward packet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UppCounter {
    value: u64,
}

impl UppCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the counter for one cycle.
    ///
    /// * `has_stalled_upward` — at least one packet of the VNet is stalled
    ///   wanting the `Up` output;
    /// * `up_sent_recently` — a flit of the VNet left through `Up` last
    ///   cycle (the port is not actually blocked).
    ///
    /// Returns the new value.
    pub fn tick(&mut self, has_stalled_upward: bool, up_sent_recently: bool) -> u64 {
        if has_stalled_upward && !up_sent_recently {
            self.value += 1;
        } else {
            self.value = 0;
        }
        self.value
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Resets to zero (popup selected or port unblocked).
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// True once the counter reaches `threshold`.
    pub fn expired(&self, threshold: u64) -> bool {
        self.value >= threshold
    }
}

/// Round-robin arbiter over upward-stalled VCs (Sec. V-A: every stalled
/// packet is eventually selected, because distinguishing true deadlocks from
/// severe congestion is too expensive).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpwardArbiter {
    next: usize,
}

impl UpwardArbiter {
    /// A fresh arbiter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Picks one candidate, rotating the grant across calls.
    pub fn pick(&mut self, candidates: &[UpwardCandidate]) -> Option<UpwardCandidate> {
        if candidates.is_empty() {
            return None;
        }
        let c = candidates[self.next % candidates.len()];
        self.next = self.next.wrapping_add(1);
        Some(c)
    }
}

/// Helper translating router state into the counter's `up_sent_recently`
/// input: true when the `Up` port carried a flit of the VNet within the last
/// cycle.
pub fn up_sent_recently(up_last_sent: Cycle, now: Cycle) -> bool {
    up_last_sent != 0 && now.saturating_sub(up_last_sent) <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use upp_noc::ids::{NodeId, PacketId, Port, VnetId};

    fn cand(p: u64) -> UpwardCandidate {
        UpwardCandidate {
            in_port: Port::West,
            vc_flat: 0,
            packet: PacketId(p),
            vnet: VnetId(0),
            dest: NodeId(1),
            partly_transmitted: false,
        }
    }

    #[test]
    fn counter_accumulates_only_while_blocked() {
        let mut c = UppCounter::new();
        assert_eq!(c.tick(true, false), 1);
        assert_eq!(c.tick(true, false), 2);
        assert_eq!(c.tick(true, true), 0, "a departing flit resets the counter");
        assert_eq!(
            c.tick(false, false),
            0,
            "no stalled packet resets the counter"
        );
        for _ in 0..20 {
            c.tick(true, false);
        }
        assert!(c.expired(20));
        assert!(!c.expired(21));
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn arbiter_rotates_across_candidates() {
        let mut a = UpwardArbiter::new();
        let cs = vec![cand(1), cand(2), cand(3)];
        let picks: Vec<u64> = (0..6).map(|_| a.pick(&cs).unwrap().packet.0).collect();
        assert_eq!(picks, vec![1, 2, 3, 1, 2, 3]);
        assert!(a.pick(&[]).is_none());
    }

    #[test]
    fn arbiter_handles_shrinking_candidate_sets() {
        let mut a = UpwardArbiter::new();
        let _ = a.pick(&[cand(1), cand(2), cand(3)]);
        let _ = a.pick(&[cand(1), cand(2), cand(3)]);
        // Set shrank; arbiter must still pick a valid member.
        let p = a.pick(&[cand(9)]).unwrap();
        assert_eq!(p.packet, PacketId(9));
    }

    #[test]
    fn up_sent_recently_window() {
        assert!(!up_sent_recently(0, 100), "cycle 0 means never sent");
        assert!(up_sent_recently(99, 100));
        assert!(up_sent_recently(100, 100));
        assert!(!up_sent_recently(98, 100));
    }
}
