//! Spatial sharding of the cycle kernel.
//!
//! The mesh is partitioned along chiplet boundaries into `S` shards, each
//! owning a contiguous block of chiplet routers/NIs plus a contiguous slice
//! of the interposer. Every cycle runs as a deterministic two-phase
//! fork/join: the workers *compute* (deliver this cycle's events, then
//! inject/route/consume) strictly within their own shard, staging every
//! outgoing event, trace record and statistic into shard-local buffers
//! (the "mailboxes"); the main thread then *exchanges* — it drains the
//! mailboxes in one canonical order (per phase: all shards' chiplet
//! segments in shard order, then all interposer segments) that reproduces
//! the serial kernel's ascending-node iteration exactly. Because shards
//! share no mutable state during the compute phase and the exchange order
//! is a pure function of the partition, the merged event/trace/stat
//! streams are byte-identical to the serial kernel regardless of how the
//! OS schedules the worker threads.
//!
//! Safety of the compute phase rests on the event-staging discipline the
//! serial kernel already obeys: all cross-router communication travels
//! through calendar events that arrive at least one cycle later, and a
//! router's cycle only ever touches its own state plus its *own* NI — so
//! stepping disjoint node ranges in parallel cannot race.

use crate::config::NocConfig;
use crate::control::DeliveredControl;
use crate::event::Event;
use crate::ids::{Cycle, NodeId, PacketId, Port};
use crate::ni::Ni;
use crate::obs::ObsRegistry;
use crate::router::{Router, RouterCtx};
use crate::routing::RouteComputer;
use crate::stats::{NetStats, PacketTracker};
use crate::topology::Topology;
use crate::trace::{TraceEvent, Tracer};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

// ----------------------------------------------------- process-wide default

static DEFAULT_SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide default shard count that
/// [`upp_workloads`-style builders] apply to freshly built networks
/// (CLI `--shards N`). Tests should call `Network::set_shards` on the
/// instance instead — a process global leaks across parallel test threads.
pub fn set_default_shards(n: usize) {
    DEFAULT_SHARDS.store(n.max(1), Ordering::Relaxed);
}

/// The process-wide default shard count (1 = serial kernel).
pub fn default_shards() -> usize {
    DEFAULT_SHARDS.load(Ordering::Relaxed).max(1)
}

/// True when `UPP_FORCE_SERIAL=1` pins the serial kernel regardless of any
/// requested shard count (escape hatch, mirroring `UPP_ALWAYS_TICK`).
pub fn force_serial() -> bool {
    std::env::var("UPP_FORCE_SERIAL").is_ok_and(|v| v == "1")
}

// ----------------------------------------------------------------- the plan

/// The spatial partition: per shard, a contiguous chiplet-layer node range
/// and a contiguous interposer-layer node range. Shard boundaries always
/// coincide with chiplet boundaries, so intra-chiplet traffic never
/// crosses shards and only interposer links form the parallel seam.
#[derive(Debug, Clone)]
pub(crate) struct ShardPlan {
    /// Per shard: `(chiplet-layer range, interposer range)` of node
    /// indices. The chiplet ranges concatenate to `0..interposer_base` and
    /// the interposer ranges to `interposer_base..nodes`, each ascending.
    pub ranges: Vec<(Range<usize>, Range<usize>)>,
    /// First interposer node index.
    pub interposer_base: usize,
}

impl ShardPlan {
    /// Builds a plan with `shards` shards (`2 <= shards <= chiplets`), or
    /// `None` when the topology's node ids are not laid out as contiguous
    /// ascending chiplet blocks followed by a contiguous interposer block
    /// (the invariant every [`crate::topology::ChipletSystemSpec`] build
    /// satisfies; a custom topology that breaks it falls back to serial).
    pub(crate) fn build(topo: &Topology, shards: usize) -> Option<ShardPlan> {
        let chiplets = topo.chiplets();
        if shards < 2 || shards > chiplets.len() {
            return None;
        }
        // Validate the contiguous-ascending layout the split relies on.
        let mut next = 0usize;
        let mut chiplet_bounds: Vec<Range<usize>> = Vec::with_capacity(chiplets.len());
        for c in chiplets {
            let start = next;
            for &r in &c.routers {
                if r.index() != next {
                    return None;
                }
                next += 1;
            }
            chiplet_bounds.push(start..next);
        }
        let interposer_base = next;
        for &r in topo.interposer_routers() {
            if r.index() != next {
                return None;
            }
            next += 1;
        }
        if next != topo.nodes().len() {
            return None;
        }
        // Even partition: shard s takes chiplets [s*C/S, (s+1)*C/S) and
        // interposer nodes [base + s*M/S, base + (s+1)*M/S).
        let c = chiplet_bounds.len();
        let m = next - interposer_base;
        let ranges = (0..shards)
            .map(|s| {
                let c0 = s * c / shards;
                let c1 = (s + 1) * c / shards;
                let r0 = chiplet_bounds[c0].start..chiplet_bounds[c1 - 1].end;
                let r1 =
                    (interposer_base + s * m / shards)..(interposer_base + (s + 1) * m / shards);
                (r0, r1)
            })
            .collect();
        Some(ShardPlan {
            ranges,
            interposer_base,
        })
    }

    /// Number of shards.
    pub(crate) fn shards(&self) -> usize {
        self.ranges.len()
    }

    /// The shard owning `node`.
    pub(crate) fn shard_of(&self, node: NodeId) -> usize {
        let ix = node.index();
        if ix < self.interposer_base {
            self.ranges.partition_point(|(r0, _)| r0.end <= ix)
        } else {
            self.ranges.partition_point(|(_, r1)| r1.end <= ix)
        }
    }

    /// Largest node count of any single range (sizing the mailboxes).
    pub(crate) fn max_range_len(&self) -> usize {
        self.ranges
            .iter()
            .map(|(r0, r1)| r0.len().max(r1.len()))
            .max()
            .unwrap_or(0)
    }
}

/// Default per-segment mailbox capacity: a router emits at most a handful
/// of events per cycle (one flit grant plus one credit per port, control,
/// bypass), so 32 per node is far above any reachable burst while keeping
/// the buffers cache-friendly.
pub(crate) fn default_mailbox_capacity(plan: &ShardPlan) -> usize {
    32 * plan.max_range_len() + 64
}

/// Splits `full` (indexed by node) into per-shard chiplet-range slices and
/// per-shard interposer-range slices, in physical (ascending) order.
pub(crate) fn split_mut<'a, T>(
    mut rest: &'a mut [T],
    plan: &ShardPlan,
) -> (Vec<&'a mut [T]>, Vec<&'a mut [T]>) {
    let mut r0s = Vec::with_capacity(plan.shards());
    let mut r1s = Vec::with_capacity(plan.shards());
    let mut off = 0usize;
    for (r0, _) in &plan.ranges {
        let (a, b) = rest.split_at_mut(r0.end - off);
        r0s.push(a);
        rest = b;
        off = r0.end;
    }
    for (_, r1) in &plan.ranges {
        let (a, b) = rest.split_at_mut(r1.end - off);
        r1s.push(a);
        rest = b;
        off = r1.end;
    }
    debug_assert!(rest.is_empty(), "shard plan must cover every node");
    (r0s, r1s)
}

// ----------------------------------------------------------- shard scratch

/// One phase-range mailbox: events to stage into the calendar, trace
/// records to replay, and (inject phase only) packets whose head flit
/// entered the network.
pub(crate) struct SegBuf {
    pub emit: Vec<(Cycle, Event)>,
    pub trace: Tracer,
    pub injected: Vec<PacketId>,
}

impl SegBuf {
    fn new() -> Self {
        Self {
            emit: Vec::new(),
            trace: Tracer::disabled(),
            injected: Vec::new(),
        }
    }
}

/// All shard-local state. Persistent across cycles (buffers drain on merge
/// and keep their allocations); nothing in here survives a merge with a
/// non-zero value except the armed tracer/obs shells.
pub(crate) struct ShardScratch {
    /// Begin-phase events routed to this shard (slot order preserved).
    pub pending: Vec<Event>,
    /// Begin-phase emit sink; deliveries never emit, asserted on merge.
    pub begin_emit: Vec<(Cycle, Event)>,
    /// Begin-phase trace sink; deliveries never record, asserted on merge.
    pub begin_trace: Tracer,
    /// Mailboxes: `[inject, route]` x `[chiplet range, interposer range]`.
    pub segs: [[SegBuf; 2]; 2],
    /// Shard-local stats delta, drained into the global snapshot on merge.
    pub stats: NetStats,
    /// First-touch log of `stats.link_flits` indices (O(flit-hops) merge).
    pub link_touch: Vec<u32>,
    /// Shadow telemetry registry (mechanism metrics only; the parallel
    /// region records nothing else).
    pub obs: ObsRegistry,
    /// Progress-watchdog proxy: only `touch` lands here; merged as a max.
    pub tracker: PacketTracker,
    /// Router steps executed by this shard this cycle.
    pub router_ticks: u64,
    /// Whether the segment tracers are in capture mode.
    pub trace_armed: bool,
}

impl ShardScratch {
    fn new(num_vnets: usize) -> Self {
        Self {
            pending: Vec::new(),
            begin_emit: Vec::new(),
            begin_trace: Tracer::disabled(),
            segs: [
                [SegBuf::new(), SegBuf::new()],
                [SegBuf::new(), SegBuf::new()],
            ],
            stats: NetStats::new(num_vnets),
            link_touch: Vec::new(),
            obs: ObsRegistry::disabled(),
            tracker: PacketTracker::new(),
            router_ticks: 0,
            trace_armed: false,
        }
    }
}

/// Read-only snapshot of the sharded kernel's own pressure telemetry:
/// how full the fixed-capacity mailboxes ran and how much each shard
/// merged. Kernel-dependent by nature (the serial kernel has no
/// mailboxes), so it is surfaced only on explicit request — obs gauges
/// and the byte-pinned export paths never include it implicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTelemetry {
    /// Effective shard count.
    pub shards: usize,
    /// Capacity every event mailbox was allocated with.
    pub mailbox_capacity: usize,
    /// Highest event-mailbox fill observed, per shard.
    pub mailbox_high_water: Vec<usize>,
    /// Mailbox entries (events + traces + injection notices) merged, per
    /// shard.
    pub merged_entries: Vec<u64>,
}

/// Everything the sharded kernel owns: the partition, the worker pool and
/// one scratch per shard.
pub(crate) struct ShardRuntime {
    pub plan: ShardPlan,
    pub pool: WorkerPool,
    pub scratch: Vec<ShardScratch>,
    pub mailbox_capacity: usize,
    /// Highest fill of any event mailbox (`SegBuf::emit`) seen per shard,
    /// measured on the main-thread merge path. Pure telemetry: surfaced as
    /// obs gauges and in `simulate`, never read by the kernel.
    pub mailbox_high_water: Vec<usize>,
    /// Total mailbox entries (events + trace records + injection notices)
    /// merged per shard over the run.
    pub merged_entries: Vec<u64>,
}

impl std::fmt::Debug for ShardRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRuntime")
            .field("shards", &self.plan.shards())
            .field("mailbox_capacity", &self.mailbox_capacity)
            .finish_non_exhaustive()
    }
}

impl ShardRuntime {
    pub(crate) fn new(plan: ShardPlan, mailbox_capacity: usize, num_vnets: usize) -> Self {
        let shards = plan.shards();
        Self {
            plan,
            pool: WorkerPool::new(shards - 1),
            scratch: (0..shards).map(|_| ShardScratch::new(num_vnets)).collect(),
            mailbox_capacity,
            mailbox_high_water: vec![0; shards],
            merged_entries: vec![0; shards],
        }
    }

    /// Aligns each shard's shadow sinks with the global tracer/obs state
    /// (both can be armed mid-run). Called at the top of every sharded
    /// phase, when all capture buffers are empty.
    pub(crate) fn arm(&mut self, trace_on: bool, obs_on: bool) {
        for sc in &mut self.scratch {
            if obs_on && !sc.obs.is_enabled() {
                sc.obs.enable();
            }
            if sc.trace_armed != trace_on {
                sc.trace_armed = trace_on;
                for phase in &mut sc.segs {
                    for seg in phase {
                        seg.trace = if trace_on {
                            Tracer::capture()
                        } else {
                            Tracer::disabled()
                        };
                    }
                }
            }
        }
    }
}

// ------------------------------------------------------------ the job bodies

#[inline]
fn check_mailbox(len: usize, capacity: usize, shard: usize, phase: &str) {
    assert!(
        len <= capacity,
        "shard mailbox overflow: {len} staged events exceed the capacity of \
         {capacity} (shard {shard}, {phase} phase); raise the mailbox \
         capacity via Network::set_shards_with_mailbox_capacity"
    );
}

/// Per-shard slice of the network state for one phase.
pub(crate) struct ShardParts<'a> {
    pub cfg: &'a NocConfig,
    pub topo: &'a Topology,
    pub routing: &'a dyn RouteComputer,
    pub now: Cycle,
    pub sched: bool,
    /// `[chiplet range, interposer range]` component slices.
    pub routers: [&'a mut [Router]; 2],
    pub nis: [&'a mut [Ni]; 2],
    pub router_active: [&'a mut [bool]; 2],
    pub ni_active: [&'a mut [bool]; 2],
    /// First node index of each range (for event-target lookup).
    pub base: [usize; 2],
    pub scratch: &'a mut ShardScratch,
    pub mailbox_capacity: usize,
    pub shard_ix: usize,
}

/// Begin phase, compute step: delivers this shard's pending events in slot
/// order. Deliveries mutate only the target component (plus commutative
/// obs counters, routed to the shadow registry); ejections (`NiFlitArrive`)
/// were already handled serially on the main thread, in slot order, because
/// they touch global stats/tracker/tracer state.
pub(crate) fn begin_shard(p: &mut ShardParts<'_>) {
    let base = p.base;
    let locate = |node: NodeId| -> (usize, usize) {
        let ix = node.index();
        if ix >= base[1] {
            (1, ix - base[1])
        } else {
            (0, ix - base[0])
        }
    };
    let ShardScratch {
        pending,
        begin_emit,
        begin_trace,
        stats,
        link_touch,
        obs,
        tracker,
        ..
    } = &mut *p.scratch;
    for ev in pending.drain(..) {
        match ev {
            Event::FlitArrive {
                node,
                in_port,
                vc_flat,
                flit,
            } => {
                let (r, j) = locate(node);
                let mut ctx = RouterCtx {
                    cfg: p.cfg,
                    topo: p.topo,
                    routing: p.routing,
                    now: p.now,
                    ni: &mut p.nis[r][j],
                    emit: &mut *begin_emit,
                    stats: &mut *stats,
                    tracker: &mut *tracker,
                    tracer: &mut *begin_trace,
                    obs: &mut *obs,
                    link_log: Some(&mut *link_touch),
                };
                p.routers[r][j].deliver_flit(&mut ctx, in_port, vc_flat, flit);
            }
            Event::CreditArrive {
                node,
                out_port,
                vc_flat,
                is_free,
            } => {
                let (r, j) = locate(node);
                p.routers[r][j].deliver_credit(out_port, vc_flat, is_free);
            }
            Event::NiCreditArrive {
                node,
                vc_flat,
                is_free,
            } => {
                let (r, j) = locate(node);
                p.nis[r][j].on_credit(vc_flat, is_free);
            }
            Event::ControlArrive { node, in_port, msg } => {
                let (r, j) = locate(node);
                p.routers[r][j].deliver_control(in_port, msg, p.now);
            }
            Event::NiControlArrive { node, in_port, msg } => {
                let (r, j) = locate(node);
                p.nis[r][j].deliver_control(DeliveredControl {
                    msg,
                    in_port,
                    at: p.now,
                });
            }
            Event::NiFlitArrive { .. } => {
                unreachable!("ejections are handled serially on the main thread")
            }
        }
    }
}

/// Finish phase, compute step: NI injection, router allocation/commit and
/// PE consumption over this shard's two node ranges, mirroring the serial
/// kernel's loops with every global side effect redirected to the shard's
/// mailboxes and delta accumulators.
pub(crate) fn finish_shard(p: &mut ShardParts<'_>) {
    let vct = p.cfg.flow_control == crate::config::FlowControl::VirtualCutThrough;
    // NI injection (serial: ascending node order; here per range, with the
    // merge concatenating ranges back into ascending order).
    for r in 0..2 {
        let seg = &mut p.scratch.segs[0][r];
        for (j, ni) in p.nis[r].iter_mut().enumerate() {
            if p.sched && !p.ni_active[r][j] {
                continue;
            }
            if let Some((flit, vc_flat)) = ni.inject_step(p.now, p.cfg.vcs_per_vnet, vct) {
                if flit.kind.is_head() {
                    seg.injected.push(flit.packet);
                    p.scratch.stats.packets_injected += 1;
                    if seg.trace.enabled() {
                        seg.trace.record(TraceEvent::PacketInjected {
                            at: p.now,
                            packet: flit.packet,
                            node: ni.node(),
                        });
                    }
                }
                p.scratch.stats.flits_injected += 1;
                p.scratch.tracker.touch(p.now);
                seg.emit.push((
                    p.now + p.cfg.link_latency,
                    Event::FlitArrive {
                        node: ni.node(),
                        in_port: Port::Local,
                        vc_flat,
                        flit,
                    },
                ));
            }
        }
        check_mailbox(seg.emit.len(), p.mailbox_capacity, p.shard_ix, "inject");
    }

    // Routers: bypass, control, switch allocation.
    for r in 0..2 {
        let ShardScratch {
            segs,
            stats,
            link_touch,
            obs,
            tracker,
            router_ticks,
            ..
        } = &mut *p.scratch;
        let seg = &mut segs[1][r];
        for j in 0..p.routers[r].len() {
            if p.sched && !p.router_active[r][j] {
                continue;
            }
            *router_ticks += 1;
            let mut ctx = RouterCtx {
                cfg: p.cfg,
                topo: p.topo,
                routing: p.routing,
                now: p.now,
                ni: &mut p.nis[r][j],
                emit: &mut seg.emit,
                stats: &mut *stats,
                tracker: &mut *tracker,
                tracer: &mut seg.trace,
                obs: &mut *obs,
                link_log: Some(&mut *link_touch),
            };
            p.routers[r][j].step(&mut ctx);
            if p.sched && !p.routers[r][j].has_pending_work() {
                p.router_active[r][j] = false;
            }
        }
        check_mailbox(seg.emit.len(), p.mailbox_capacity, p.shard_ix, "route");
    }

    // PE consumption, then NI deactivation.
    for r in 0..2 {
        for (j, ni) in p.nis[r].iter_mut().enumerate() {
            if p.sched && !p.ni_active[r][j] {
                continue;
            }
            ni.consume_step(p.now);
            if p.sched && !ni.has_pending_work() {
                p.ni_active[r][j] = false;
            }
        }
    }
}

// ------------------------------------------------------------- worker pool

type Job = Box<dyn FnOnce() + Send + 'static>;

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A persistent pool of `workers` threads fed one closure each per cycle
/// phase. Threads persist across cycles (spawning per cycle would dominate
/// the kernel); jobs are dispatched over channels and a counted completion
/// channel forms the join barrier. Worker panics are caught, reported over
/// the barrier (so the dispatcher never deadlocks mid-unwind) and re-raised
/// on the calling thread.
pub(crate) struct WorkerPool {
    txs: Vec<mpsc::Sender<Job>>,
    done_rx: mpsc::Receiver<Result<(), String>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    pub(crate) fn new(workers: usize) -> Self {
        let (done_tx, done_rx) = mpsc::channel::<Result<(), String>>();
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = mpsc::channel::<Job>();
            let done = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("upp-shard-{}", w + 1))
                .spawn(move || {
                    for job in rx {
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job))
                            .map_err(panic_message);
                        if done.send(result).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn shard worker thread");
            txs.push(tx);
            handles.push(handle);
        }
        Self {
            txs,
            done_rx,
            handles,
        }
    }

    /// Runs one job per shard: `jobs[1..]` on the workers, `jobs[0]` inline
    /// on the calling thread, returning only after every job finished. Any
    /// job panic resurfaces here — after the barrier, so no borrow held by
    /// a still-running worker can outlive the caller's frame.
    pub(crate) fn run<'scope>(&mut self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        assert!(
            jobs.len() <= self.txs.len() + 1,
            "more shard jobs than pool slots"
        );
        let mut iter = jobs.into_iter();
        let local = iter.next();
        let mut dispatched = 0usize;
        for (i, job) in iter.enumerate() {
            // SAFETY: the closure borrows state from the caller's frame
            // ('scope), and `run` does not return until the completion
            // barrier below has collected every dispatched job — even when
            // the local job panics — so no borrow escapes its lifetime.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
            self.txs[i].send(job).expect("shard worker alive");
            dispatched += 1;
        }
        let local_result = local.map(|j| std::panic::catch_unwind(std::panic::AssertUnwindSafe(j)));
        let mut worker_panic: Option<String> = None;
        for _ in 0..dispatched {
            match self.done_rx.recv().expect("shard worker alive") {
                Ok(()) => {}
                Err(msg) => {
                    if worker_panic.is_none() {
                        worker_panic = Some(msg);
                    }
                }
            }
        }
        if let Some(Err(payload)) = local_result {
            std::panic::resume_unwind(payload);
        }
        if let Some(msg) = worker_panic {
            panic!("{msg}");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels ends the worker loops.
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ChipletSystemSpec;

    #[test]
    fn plan_partitions_baseline_into_contiguous_ranges() {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let plan = ShardPlan::build(&topo, 2).expect("baseline is shardable");
        assert_eq!(plan.shards(), 2);
        let n = topo.nodes().len();
        // Ranges tile the node space.
        let (r0a, r1a) = &plan.ranges[0];
        let (r0b, r1b) = &plan.ranges[1];
        assert_eq!(r0a.start, 0);
        assert_eq!(r0a.end, r0b.start);
        assert_eq!(r0b.end, plan.interposer_base);
        assert_eq!(r1a.start, plan.interposer_base);
        assert_eq!(r1a.end, r1b.start);
        assert_eq!(r1b.end, n);
        // Every node maps to the shard whose range holds it.
        for ix in 0..n {
            let s = plan.shard_of(NodeId(ix as u32));
            let (r0, r1) = &plan.ranges[s];
            assert!(r0.contains(&ix) || r1.contains(&ix), "node {ix} shard {s}");
        }
    }

    #[test]
    fn plan_rejects_more_shards_than_chiplets() {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let chiplets = topo.chiplets().len();
        assert!(ShardPlan::build(&topo, chiplets + 1).is_none());
        assert!(ShardPlan::build(&topo, 1).is_none(), "serial needs no plan");
    }

    #[test]
    fn worker_pool_runs_jobs_and_propagates_panics() {
        let mut pool = WorkerPool::new(2);
        let mut a = 0u64;
        let mut b = 0u64;
        let mut c = 0u64;
        pool.run(vec![
            Box::new(|| a = 1),
            Box::new(|| b = 2),
            Box::new(|| c = 3),
        ]);
        assert_eq!((a, b, c), (1, 2, 3));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(vec![
                Box::new(|| {}),
                Box::new(|| panic!("worker job failed deliberately")),
            ]);
        }));
        let msg = panic_message(caught.expect_err("panic must propagate"));
        assert!(msg.contains("worker job failed deliberately"), "{msg}");
        // The pool survives a propagated panic and keeps running jobs.
        let mut d = 0u64;
        pool.run(vec![Box::new(|| {}), Box::new(|| d = 4)]);
        assert_eq!(d, 4);
    }
}
