//! Renders the baseline system as SVG — once idle, and once wedged in a
//! genuine integration-induced deadlock with occupancy heat showing where
//! the frozen dependency chains sit. Also prints the ASCII occupancy grids.
//!
//! ```text
//! cargo run --release --example visualize
//! # -> topology.svg, deadlock_heat.svg
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use upp::noc::config::NocConfig;
use upp::noc::ids::{NodeId, VnetId};
use upp::noc::network::Network;
use upp::noc::ni::ConsumePolicy;
use upp::noc::routing::ChipletRouting;
use upp::noc::scheme::NoScheme;
use upp::noc::sim::System;
use upp::noc::topology::ChipletSystemSpec;
use upp::noc::viz::{occupancy_ascii, topology_svg};

fn main() -> std::io::Result<()> {
    let topo = ChipletSystemSpec::baseline().build(0).expect("valid spec");
    std::fs::write("topology.svg", topology_svg(&topo, &[]))?;
    println!("wrote topology.svg (idle system)");

    // Wedge the unprotected system.
    let net = Network::new(
        NocConfig::default(),
        topo,
        Arc::new(ChipletRouting::xy()),
        ConsumePolicy::Immediate { latency: 1 },
        7,
    );
    let mut sys = System::new(net, Box::new(NoScheme));
    let cores: Vec<NodeId> = sys
        .net()
        .topo()
        .chiplets()
        .iter()
        .flat_map(|c| c.routers.iter().copied())
        .collect();
    let mut rng = SmallRng::seed_from_u64(1);
    for _ in 0..3_000 {
        for &src in &cores {
            if rng.gen::<f64>() >= 0.3 {
                continue;
            }
            let dest = cores[rng.gen_range(0..cores.len())];
            if dest == src {
                continue;
            }
            let vnet = VnetId(rng.gen_range(0..3u8));
            let len = if vnet.0 == 2 { 5 } else { 1 };
            let _ = sys.send(src, dest, vnet, len);
        }
        sys.step();
    }
    let _ = sys.run_until_drained(10_000);
    let occupancy = sys.net().occupancy();
    let frozen: usize = occupancy.iter().map(|&(_, f)| f).sum();
    println!(
        "network state after the load burst: {} packets in flight, {} flits buffered, stalled: {}",
        sys.net().in_flight(),
        frozen,
        sys.net().stalled()
    );
    std::fs::write(
        "deadlock_heat.svg",
        topology_svg(sys.net().topo(), &occupancy),
    )?;
    println!("wrote deadlock_heat.svg (occupancy heat; red = frozen dependency chains)");
    println!(
        "\nASCII occupancy (boundary routers starred, Up-linked interposer routers marked ^):\n"
    );
    println!("{}", occupancy_ascii(sys.net().topo(), &occupancy));
    Ok(())
}
