//! Mergeable log-bucketed histograms for latency distributions.
//!
//! Values below [`LINEAR_MAX`] get one exact bucket each; above that, every
//! power-of-two octave is split into [`SUB`] equal sub-buckets, so the
//! bucket width at value `v` is at most `v / SUB` and the midpoint
//! representative is within a **relative error of `1 / (2 * SUB) = 1/64`**
//! of any value the bucket absorbed. The bucket array is a plain counter
//! vector, which makes merging an exact element-wise add: merged quantiles
//! are computed over the union of the recorded values' buckets, never by
//! approximating quantiles of quantiles.

use serde::Serialize;
use serde_json::Value;

/// Sub-buckets per power-of-two octave.
pub const SUB: usize = 32;

/// Values below this get exact single-value buckets.
pub const LINEAR_MAX: u64 = 32;

/// A mergeable log-bucketed histogram of `u64` samples (latencies in
/// cycles).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value: exact below [`LINEAR_MAX`], then
    /// `SUB` sub-buckets per octave, continuous at the boundary.
    fn index(v: u64) -> usize {
        if v < LINEAR_MAX {
            v as usize
        } else {
            let e = 63 - v.leading_zeros() as usize; // e >= 5
            let sub = ((v >> (e - 5)) & 31) as usize;
            32 + (e - 5) * SUB + sub
        }
    }

    /// Half-open value range `[lo, hi)` covered by a bucket.
    fn bounds(idx: usize) -> (u64, u64) {
        if idx < 32 {
            (idx as u64, idx as u64 + 1)
        } else {
            let e = 5 + (idx - 32) / SUB;
            let sub = ((idx - 32) % SUB) as u64;
            let w = 1u64 << (e - 5);
            let lo = (1u64 << e) + sub * w;
            (lo, lo + w)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = Self::index(v);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Adds every sample of `other` into `self` (exact element-wise count
    /// merge; associative and commutative).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (s, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *s += o;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the midpoint of the bucket holding
    /// the rank-`ceil(q * count)` sample, clamped to the observed
    /// `[min, max]`. Deterministic and integer-valued; within the 1/64
    /// relative-error bound of the true order statistic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if n > 0 && cum >= target {
                let (lo, hi) = Self::bounds(i);
                return ((lo + hi) / 2).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Renders as a deterministic JSON object with sparse buckets.
    pub fn to_json(&self) -> String {
        let mut pairs = String::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !pairs.is_empty() {
                pairs.push(',');
            }
            pairs.push_str(&format!("[{i},{n}]"));
        }
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{pairs}]}}",
            self.count,
            self.sum,
            self.min(),
            self.max()
        )
    }

    /// Rebuilds a histogram from the [`Histogram::to_json`] shape.
    pub fn from_value(v: &Value) -> Option<Self> {
        let count = v.get("count")?.as_u64()?;
        let sum = v.get("sum")?.as_u64()?;
        let min = v.get("min")?.as_u64()?;
        let max = v.get("max")?.as_u64()?;
        let mut buckets = Vec::new();
        for pair in v.get("buckets")?.as_array()? {
            let p = pair.as_array()?;
            let idx = p.first()?.as_u64()? as usize;
            let n = p.get(1)?.as_u64()?;
            if buckets.len() <= idx {
                buckets.resize(idx + 1, 0);
            }
            buckets[idx] = n;
        }
        Some(Self {
            buckets,
            count,
            sum,
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..LINEAR_MAX {
            h.record(v);
            assert_eq!(Histogram::bounds(Histogram::index(v)), (v, v + 1));
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn indexing_is_continuous_and_monotonic() {
        let mut prev = 0;
        for v in 0..100_000u64 {
            let idx = Histogram::index(v);
            assert!(idx >= prev, "monotonic at {v}");
            prev = idx;
            let (lo, hi) = Histogram::bounds(idx);
            assert!(lo <= v && v < hi, "bounds contain {v}: [{lo},{hi})");
        }
    }

    #[test]
    fn quantiles_hit_known_ranks() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        assert!(
            (p50 as f64 - 500.0).abs() <= 500.0 / 64.0 + 1.0,
            "p50 near 500: {p50}"
        );
        let p999 = h.quantile(0.999);
        assert!(
            (p999 as f64 - 999.0).abs() <= 999.0 / 64.0 + 1.0,
            "p999 near 999: {p999}"
        );
        assert_eq!(h.quantile(1.0), 1000, "max rank clamps to observed max");
        assert_eq!(h.quantile(0.0), 1, "min rank clamps to observed min");
    }

    #[test]
    fn json_round_trips() {
        let mut h = Histogram::new();
        for v in [0, 1, 31, 32, 33, 1_000, 123_456_789] {
            h.record(v);
        }
        let v = serde_json::from_str(&h.to_json()).expect("valid JSON");
        let back = Histogram::from_value(&v).expect("parses");
        assert_eq!(back, h);
    }
}
