//! `fig_scaling`: the boundary-structure observatory. Not a paper figure —
//! the paper evaluates fixed 2x2/4x2 systems — but its modularity claim is
//! about *growth*: UPP's per-router state (circuit table, watchdog
//! counters) is constant while remote control's permission subnetwork and
//! composable's funnel pressure concentrate as the system scales. This
//! experiment drives `chiplet_grid(CxR)` meshes from the paper's 2x2 tile
//! arrangement up to thousands of routers under hotspot traffic with slow
//! consumption (the paper's Fig. 3 deadlock recipe), and reads each
//! scheme's boundary structures through the `upp_noc::obs` telemetry
//! registry on shared axes:
//!
//! * **boundary pressure** — the high-water of the scheme's boundary
//!   structure (UPP circuit-table entries, remote-control permit-queue
//!   depth, composable Down-port funnel occupancy);
//! * **protocol events** — how often the protocol had to act (UPP watchdog
//!   expiries, remote-control permit contention waits; composable acts at
//!   design time only);
//! * **recovery latency** — UPP popup recovery distribution (mean/p95)
//!   straight from the exact telemetry histograms.

use super::SEED;
use crate::report::{f1, ExperimentResult, MarkdownTable};
use crate::sweep::{engine, FromJsonValue};
use serde::Serialize;
use serde_json::Value;
use upp_noc::ni::ConsumePolicy;
use upp_noc::topology::ChipletSystemSpec;
use upp_workloads::runner::{build_system, SchemeKind};
use upp_workloads::synthetic::{Pattern, SyntheticTraffic};

/// Consumption latency at every NI: several times the UPP detection
/// threshold (20), so hotspot victims stay blocked long enough not just
/// to trip the watchdog but for popups to run to completion (fast
/// consumption resolves most detections with a STOP before the pop).
const CONSUME_LATENCY: u64 = 120;

/// One `(grid, scheme)` cell of the observatory.
#[derive(Debug, Clone, Serialize)]
pub struct ScalePoint {
    /// Grid columns (chiplet tiles).
    pub cols: u16,
    /// Grid rows.
    pub rows: u16,
    /// Routers in the system.
    pub routers: usize,
    /// Scheme label.
    pub scheme: String,
    /// True when the run drained completely.
    pub drained: bool,
    /// Total cycles simulated (traffic + drain).
    pub cycles: u64,
    /// Packets delivered.
    pub packets: u64,
    /// High-water of the scheme's boundary structure (see module docs).
    pub boundary_pressure: u64,
    /// Protocol interventions (watchdog expiries / contention waits).
    pub protocol_events: u64,
    /// Mean UPP popup recovery latency in cycles (0 for other schemes).
    pub recovery_mean: f64,
    /// p95 UPP popup recovery latency in cycles.
    pub recovery_p95: u64,
    /// Popup circuits installed (UPP mechanism counter).
    pub circuit_inserts: u64,
    /// End-of-run kernel heap footprint in bytes (routers + NIs +
    /// descriptor arena + event calendar; kernel-invariant, see
    /// [`upp_noc::network::MemReport`]).
    pub mem_total_bytes: usize,
    /// Router share of the footprint averaged per router — the per-tile
    /// cost a chiplet integrator pays as the mesh grows.
    pub mem_bytes_per_router: usize,
}

impl FromJsonValue for ScalePoint {
    fn from_json_value(v: &Value) -> Option<ScalePoint> {
        Some(ScalePoint {
            cols: v.get("cols")?.as_u64()? as u16,
            rows: v.get("rows")?.as_u64()? as u16,
            routers: v.get("routers")?.as_u64()? as usize,
            scheme: v.get("scheme")?.as_str()?.to_string(),
            drained: matches!(v.get("drained")?, Value::Bool(true)),
            cycles: v.get("cycles")?.as_u64()?,
            packets: v.get("packets")?.as_u64()?,
            boundary_pressure: v.get("boundary_pressure")?.as_u64()?,
            protocol_events: v.get("protocol_events")?.as_u64()?,
            recovery_mean: v.get("recovery_mean")?.as_f64()?,
            recovery_p95: v.get("recovery_p95")?.as_u64()?,
            circuit_inserts: v.get("circuit_inserts")?.as_u64()?,
            mem_total_bytes: v.get("mem_total_bytes")?.as_u64()? as usize,
            mem_bytes_per_router: v.get("mem_bytes_per_router")?.as_u64()? as usize,
        })
    }
}

/// Grid sizes per mode: the paper's tile arrangement up to a
/// 32x32-chiplet mesh (20480 routers) in full mode.
pub fn sizes(quick: bool) -> Vec<(u16, u16)> {
    if quick {
        vec![(2, 2), (3, 3), (4, 4)]
    } else {
        vec![(2, 2), (4, 4), (8, 8), (16, 16), (32, 32)]
    }
}

fn traffic_cycles(quick: bool) -> u64 {
    if quick {
        800
    } else {
        2_000
    }
}

/// Offered rate scaled so the four hotspot cores see the same absolute
/// overload at every size (several times their consumption bandwidth, so
/// blocking outlasts the detection threshold); without this the biggest
/// grids would bury the hotspots under an undrainable backlog and the
/// comparison would measure queue depth, not protocol behaviour.
fn rate_for(routers: usize) -> f64 {
    (7.8 / routers as f64).min(0.06)
}

fn run_point(cols: u16, rows: u16, kind: &SchemeKind, quick: bool) -> ScalePoint {
    let spec = ChipletSystemSpec::grid(cols, rows).expect("sizes() grids are valid");
    let built = build_system(
        &spec,
        super::cfg(1),
        kind,
        0,
        SEED,
        ConsumePolicy::Immediate {
            latency: CONSUME_LATENCY,
        },
    );
    let mut sys = built.sys;
    sys.net_mut().enable_obs();
    let routers = sys.net().topo().num_nodes();
    let mut traffic =
        SyntheticTraffic::new(sys.net().topo(), Pattern::Hotspot, rate_for(routers), SEED);
    let cycles = traffic_cycles(quick);
    for c in 0..cycles {
        traffic.tick(&mut sys);
        sys.step();
        // Sampled gauges (queue depths, table occupancy) need periodic
        // refreshes to catch the pressure while it exists.
        if c.is_multiple_of(25) {
            sys.observe();
        }
        if sys.net().stalled() {
            break;
        }
    }
    let mut extra = 0u64;
    while sys.net().in_flight() > 0 && !sys.net().stalled() && extra < 200_000 {
        sys.step();
        extra += 1;
        if extra.is_multiple_of(25) {
            sys.observe();
        }
    }
    sys.observe();
    let obs = sys.net().obs();
    let (boundary_pressure, protocol_events) = match kind {
        SchemeKind::Upp(_) => (
            obs.gauge_value("circuit.entries").1,
            obs.counter_value("upp.watchdog.expired_cycles"),
        ),
        SchemeKind::RemoteControl => (
            obs.gauge_value("rc.permit_queue.depth").1,
            obs.counter_value("rc.permits.contention_wait_cycles"),
        ),
        SchemeKind::Composable => (obs.gauge_value("composable.dateline_vc.flits").1, 0),
        SchemeKind::None => (0, 0),
    };
    let (recovery_mean, recovery_p95) = obs
        .histogram("upp.popup.recovery_cycles")
        .map_or((0.0, 0), |h| (h.mean(), h.quantile(0.95)));
    let mem = sys.net().mem_report();
    ScalePoint {
        cols,
        rows,
        routers,
        scheme: kind.label().to_string(),
        drained: sys.net().in_flight() == 0,
        cycles: sys.net().cycle(),
        packets: sys.net().stats().packets_ejected,
        boundary_pressure,
        protocol_events,
        recovery_mean,
        recovery_p95,
        circuit_inserts: obs.counter_value("circuit.inserts"),
        mem_total_bytes: mem.total_bytes,
        mem_bytes_per_router: mem.bytes_per_router,
    }
}

/// Collects every `(grid, scheme)` point on the sweep engine.
pub fn collect(quick: bool) -> Vec<ScalePoint> {
    let mut jobs = Vec::new();
    for &(cols, rows) in &sizes(quick) {
        for kind in SchemeKind::evaluated() {
            jobs.push((cols, rows, kind));
        }
    }
    engine().run_keyed(
        &jobs,
        |(c, r, kind)| {
            format!(
                "fig_scaling|{c}x{r}|{kind:?}|t{}|l{CONSUME_LATENCY}|s{SEED}",
                traffic_cycles(quick)
            )
        },
        |(c, r, kind)| run_point(*c, *r, kind, quick),
    )
}

/// Renders the points as CSV (one row per `(grid, scheme)` point).
pub fn csv(points: &[ScalePoint]) -> String {
    let mut out = String::from(
        "cols,rows,routers,scheme,drained,cycles,packets,boundary_pressure,\
         protocol_events,recovery_mean,recovery_p95,circuit_inserts,\
         mem_total_bytes,mem_bytes_per_router\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{:.2},{},{},{},{}\n",
            p.cols,
            p.rows,
            p.routers,
            p.scheme,
            p.drained,
            p.cycles,
            p.packets,
            p.boundary_pressure,
            p.protocol_events,
            p.recovery_mean,
            p.recovery_p95,
            p.circuit_inserts,
            p.mem_total_bytes,
            p.mem_bytes_per_router
        ));
    }
    out
}

/// Runs the observatory and renders it.
pub fn run(quick: bool) -> ExperimentResult {
    let points = collect(quick);
    let mut out = String::new();
    out.push_str(
        "### fig_scaling — boundary-structure pressure vs. system size (telemetry observatory)\n\n\
         Hotspot traffic with slow consumption (the Fig. 3 recipe), offered load scaled so the\n\
         hot cores see the same absolute overload at every size. Boundary pressure is each\n\
         scheme's own structure: UPP circuit-table entries, remote-control permit-queue depth,\n\
         composable Down-port funnel flits (all high-waters).\n\n",
    );
    let mut t = MarkdownTable::new([
        "grid",
        "routers",
        "scheme",
        "delivered",
        "boundary pressure",
        "protocol events",
        "recovery mean",
        "recovery p95",
        "mem B/router",
    ]);
    for p in &points {
        t.row([
            format!("{}x{}", p.cols, p.rows),
            p.routers.to_string(),
            p.scheme.clone(),
            format!(
                "{}{}",
                p.packets,
                if p.drained { "" } else { " (stalled!)" }
            ),
            p.boundary_pressure.to_string(),
            p.protocol_events.to_string(),
            if p.recovery_mean > 0.0 {
                f1(p.recovery_mean)
            } else {
                "-".into()
            },
            if p.recovery_p95 > 0 {
                p.recovery_p95.to_string()
            } else {
                "-".into()
            },
            p.mem_bytes_per_router.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReading: UPP's circuit-table high-water tracks the number of simultaneous popups\n\
         (bounded by the hot cores), not the router count — the modularity argument in one\n\
         number. The mem column is the kernel's per-router heap cost (VC rings + state\n\
         arrays), flat across sizes because every buffer is fixed-capacity. The raw points\n\
         are in the JSON artifact; `csv()` renders the same table for plotting.\n",
    );
    ExperimentResult::new(
        "fig_scaling",
        "fig_scaling: boundary-structure telemetry vs. system size",
        out,
        &points,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_observatory_spans_three_sizes_and_sees_upp_pressure() {
        let points = collect(true);
        assert_eq!(points.len(), 3 * 3, "3 sizes x 3 schemes");
        assert!(points.iter().all(|p| p.drained), "every run must drain");
        let mut routers: Vec<usize> = points.iter().map(|p| p.routers).collect();
        routers.sort_unstable();
        routers.dedup();
        assert!(routers.len() >= 3, "spans at least three grid sizes");
        // The whole point: UPP's telemetry shows real popup activity.
        let upp: Vec<&ScalePoint> = points.iter().filter(|p| p.scheme == "UPP").collect();
        assert!(
            upp.iter()
                .any(|p| p.protocol_events > 0 && p.circuit_inserts > 0),
            "hotspot + slow consumption must trigger popups somewhere: {upp:?}"
        );
        for p in upp.iter().filter(|p| p.circuit_inserts > 0) {
            assert!(
                p.boundary_pressure > 0,
                "popups imply circuit entries: {p:?}"
            );
            assert!(p.recovery_p95 > 0, "popups imply recovery samples: {p:?}");
        }
        // The memory column is populated and the per-router cost stays flat
        // as the mesh grows (the data-oriented layout's modularity claim).
        for p in &points {
            assert!(p.mem_total_bytes > 0, "memory column missing: {p:?}");
            assert!(
                p.mem_bytes_per_router > 0 && p.mem_bytes_per_router <= 1 << 20,
                "per-router footprint out of range: {p:?}"
            );
        }
        let csv = csv(&points);
        assert_eq!(csv.lines().count(), 1 + points.len());
    }
}
