//! A generic command-line driver for the simulator: pick a system, scheme,
//! traffic pattern, load and duration; get latency/throughput/recovery
//! statistics (and optionally an occupancy SVG, a flight-recorder trace,
//! an epoch-metrics time series, or post-mortem deadlock forensics).
//!
//! ```text
//! simulate --scheme upp --pattern uniform_random --rate 0.08 --cycles 50000
//! simulate --scheme none --rate 0.2 --stall-report   # watch it deadlock
//! simulate --scheme upp --chrome-trace trace.json    # open in Perfetto
//! simulate --scheme upp --metrics-every 500 --metrics-out metrics.csv
//! simulate --system large --scheme composable --vcs 4 --json out.json
//! simulate --scheme upp --sweep 0.02,0.05,0.08 --jobs 4 --json pts.json
//! ```

use std::io::Write as _;
use std::process::exit;
use upp_core::{UppConfig, UppStats};
use upp_noc::config::NocConfig;
use upp_noc::ni::ConsumePolicy;
use upp_noc::profile::SpanRecorder;
use upp_noc::topology::{ChipletSystemSpec, SystemKind};
use upp_noc::trace::{MetricsSampler, Tracer};
use upp_noc::viz::{stall_svg, topology_svg};
use upp_tracetools::render::analyze_text;
use upp_tracetools::ProfileSummary;
use upp_workloads::runner::{build_system, SchemeKind, SweepWindows};
use upp_workloads::synthetic::{Pattern, SyntheticTraffic};

struct Args {
    system: SystemKind,
    scheme: SchemeKind,
    pattern: Pattern,
    rate: f64,
    cycles: u64,
    vcs: usize,
    faults: usize,
    seed: u64,
    threshold: u64,
    svg: Option<String>,
    trace: Option<String>,
    chrome_trace: Option<String>,
    trace_ring_cap: Option<usize>,
    profile: bool,
    profile_out: Option<String>,
    metrics_every: Option<u64>,
    metrics_out: Option<String>,
    obs: bool,
    obs_every: Option<u64>,
    obs_out: Option<String>,
    watch: bool,
    watch_every: u64,
    watch_out: Option<String>,
    watch_capture_dir: Option<String>,
    mem: bool,
    stall_report: bool,
    stall_svg_path: Option<String>,
    json: Option<String>,
    sweep: Option<Vec<f64>>,
    journal: Option<String>,
    resume: bool,
    shards: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: simulate [options]\n\
         --system baseline|large|b2|b8|grid:CxR\n\
                                             (default baseline; grid:CxR is a\n\
                                             C-by-R-chiplet mesh system)\n\
         --scheme upp|composable|remote|none (default upp)\n\
         --pattern uniform_random|bit_complement|bit_rotation|transpose|hotspot|neighbor\n\
         --rate FLOAT                        offered flits/cycle/node (default 0.05)\n\
         --cycles N                          traffic cycles (default 50000)\n\
         --vcs N                             VCs per VNet (default 1)\n\
         --faults N                          random faulty links (default 0)\n\
         --threshold N                       UPP detection threshold (default 20)\n\
         --seed N                            (default 1)\n\
         --svg PATH                          write final occupancy heat map\n\
         --trace PATH                        stream trace events as JSONL\n\
         --chrome-trace PATH                 write a Chrome/Perfetto trace JSON\n\
         --trace-ring-cap N                  keep only the last N events of an\n\
                                             in-memory trace (bounds --chrome-trace\n\
                                             memory; dropped events are reported)\n\
         --profile                           attribute per-packet latency to\n\
                                             phases and print the breakdown\n\
         --profile-out PATH                  write the profile summary JSON for\n\
                                             `upp-trace` (implies --profile)\n\
         --metrics-every N                   sample epoch metrics every N cycles\n\
         --metrics-out PATH                  write the metrics time series (CSV;\n\
                                             stdout when omitted)\n\
         --obs                               enable protocol-state telemetry and\n\
                                             print the final summary (merged into\n\
                                             --json as \"obs\" when given)\n\
         --obs-every N                       additionally snapshot telemetry\n\
                                             epochs every N cycles (implies --obs)\n\
         --obs-out PATH                      write the epoch snapshots as JSONL\n\
                                             (stdout when omitted; needs\n\
                                             --obs-every)\n\
         --watch                             online health monitoring: evaluate\n\
                                             anomaly detectors at every epoch and\n\
                                             report upp-alerts/v1 transitions\n\
         --watch-every N                     watch epoch length in cycles\n\
                                             (default 200; implies --watch)\n\
         --watch-out PATH                    stream the alert JSONL (header plus\n\
                                             one line per alert, flushed as they\n\
                                             fire — tailable with `upp-trace\n\
                                             live --follow`; implies --watch)\n\
         --watch-capture-dir DIR             auto-capture a forensics bundle\n\
                                             (stall report, trace tail, obs\n\
                                             summary) on the first critical\n\
                                             alert (implies --watch)\n\
         --mem                               print the end-of-run memory-footprint\n\
                                             report (kernel-invariant: identical\n\
                                             for every --shards value; merged into\n\
                                             --json as \"mem\" and into --obs as\n\
                                             mem.* gauges when those are given)\n\
         --stall-report                      print deadlock forensics after the run\n\
         --stall-svg PATH                    write the annotated stall diagram\n\
         --json PATH                         dump final NetStats/UppStats as JSON\n\
         --sweep R1,R2,...                   run a parallel latency sweep over the\n\
                                             given injection rates instead of one\n\
                                             simulation (uses --cycles as the\n\
                                             measurement window)\n\
         --jobs N                            sweep worker threads (default: all\n\
                                             hardware threads; results identical\n\
                                             for every N)\n\
         --shards N                          spatial shards of the cycle kernel\n\
                                             (default 1 = serial; clamped to the\n\
                                             chiplet count; results identical\n\
                                             for every N)\n\
         --journal FILE                      stream finished sweep points to a\n\
                                             JSONL journal (sweep mode only)\n\
         --resume                            reopen the journal and skip points\n\
                                             it already records; errors out if\n\
                                             the journal was recorded under a\n\
                                             different sweep config"
    );
    exit(2);
}

fn parse() -> Args {
    let mut a = Args {
        system: SystemKind::Baseline,
        scheme: SchemeKind::Upp(UppConfig::default()),
        pattern: Pattern::UniformRandom,
        rate: 0.05,
        cycles: 50_000,
        vcs: 1,
        faults: 0,
        seed: 1,
        threshold: 20,
        svg: None,
        trace: None,
        chrome_trace: None,
        trace_ring_cap: None,
        profile: false,
        profile_out: None,
        metrics_every: None,
        metrics_out: None,
        obs: false,
        obs_every: None,
        obs_out: None,
        watch: false,
        watch_every: 200,
        watch_out: None,
        watch_capture_dir: None,
        mem: false,
        stall_report: false,
        stall_svg_path: None,
        json: None,
        sweep: None,
        journal: None,
        resume: false,
        shards: 1,
    };
    let mut scheme_name = "upp".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--system" => {
                let v = val();
                a.system = match v.as_str() {
                    "baseline" => SystemKind::Baseline,
                    "large" => SystemKind::Large,
                    "b2" => SystemKind::BoundaryCount(2),
                    "b8" => SystemKind::BoundaryCount(8),
                    other => {
                        let Some(dims) = other.strip_prefix("grid:") else {
                            usage()
                        };
                        let Some((c, r)) = dims.split_once('x') else {
                            usage()
                        };
                        let (Ok(cols), Ok(rows)) = (c.parse::<u16>(), r.parse::<u16>()) else {
                            usage()
                        };
                        // Reject degenerate/overflowing grids now, with the
                        // spec's own message, rather than panicking later.
                        if let Err(e) = ChipletSystemSpec::grid(cols, rows) {
                            eprintln!("invalid --system {other}: {e}");
                            exit(2);
                        }
                        SystemKind::Grid { cols, rows }
                    }
                }
            }
            "--scheme" => scheme_name = val(),
            "--pattern" => {
                let v = val();
                a.pattern = Pattern::ALL
                    .into_iter()
                    .chain(Pattern::EXTRA)
                    .find(|p| p.label() == v)
                    .unwrap_or_else(|| usage());
            }
            "--rate" => a.rate = val().parse().unwrap_or_else(|_| usage()),
            "--cycles" => a.cycles = val().parse().unwrap_or_else(|_| usage()),
            "--vcs" => a.vcs = val().parse().unwrap_or_else(|_| usage()),
            "--faults" => a.faults = val().parse().unwrap_or_else(|_| usage()),
            "--threshold" => a.threshold = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => a.seed = val().parse().unwrap_or_else(|_| usage()),
            "--svg" => a.svg = Some(val()),
            "--trace" => a.trace = Some(val()),
            "--chrome-trace" => a.chrome_trace = Some(val()),
            "--trace-ring-cap" => {
                let n: usize = val().parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage();
                }
                a.trace_ring_cap = Some(n);
            }
            "--profile" => a.profile = true,
            "--profile-out" => {
                a.profile = true;
                a.profile_out = Some(val());
            }
            "--metrics-every" => {
                let n: u64 = val().parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    eprintln!(
                        "--metrics-every must be at least 1 cycle: 0 would never \
                         sample (use 1 to sample every cycle)"
                    );
                    exit(2);
                }
                a.metrics_every = Some(n);
            }
            "--metrics-out" => a.metrics_out = Some(val()),
            "--obs" => a.obs = true,
            "--obs-every" => {
                a.obs = true;
                let n: u64 = val().parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    eprintln!(
                        "--obs-every must be at least 1 cycle: 0 would never cut \
                         an epoch (use 1 to snapshot every cycle)"
                    );
                    exit(2);
                }
                a.obs_every = Some(n);
            }
            "--obs-out" => a.obs_out = Some(val()),
            "--watch" => a.watch = true,
            "--watch-every" => {
                a.watch = true;
                let n: u64 = val().parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    eprintln!(
                        "--watch-every must be at least 1 cycle: 0 would never \
                         evaluate the detectors"
                    );
                    exit(2);
                }
                a.watch_every = n;
            }
            "--watch-out" => {
                a.watch = true;
                a.watch_out = Some(val());
            }
            "--watch-capture-dir" => {
                a.watch = true;
                a.watch_capture_dir = Some(val());
            }
            "--mem" => a.mem = true,
            "--stall-report" => a.stall_report = true,
            "--stall-svg" => a.stall_svg_path = Some(val()),
            "--json" => a.json = Some(val()),
            "--sweep" => {
                let rates: Vec<f64> = val()
                    .split(',')
                    .map(|r| r.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if rates.is_empty() {
                    usage();
                }
                a.sweep = Some(rates);
            }
            "--jobs" => {
                let n: usize = val().parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage();
                }
                upp_bench::sweep::set_default_jobs(n);
            }
            "--shards" => {
                let n: usize = val().parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage();
                }
                a.shards = n;
            }
            "--journal" => a.journal = Some(val()),
            "--resume" => a.resume = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    a.scheme = match scheme_name.as_str() {
        "upp" => SchemeKind::Upp(UppConfig::with_threshold(a.threshold)),
        "composable" => SchemeKind::Composable,
        "remote" => SchemeKind::RemoteControl,
        "none" => SchemeKind::None,
        _ => usage(),
    };
    a
}

/// `--sweep` mode: fan the rate list over the sweep engine and print one
/// row per point. Stats come out bit-identical for any `--jobs` value.
fn run_sweep(args: &Args, rates: &[f64]) {
    let spec = ChipletSystemSpec::of_kind(args.system);
    let cfg = NocConfig::default().with_vcs_per_vnet(args.vcs);
    let windows = SweepWindows {
        warmup: (args.cycles / 10).max(1),
        measure: args.cycles,
    };
    // Everything that determines a point's value goes into the journal's
    // config fingerprint (the rate list deliberately does not: extending a
    // sweep with more rates under --resume is the intended use). Notably the
    // system is *not* part of the per-point keys, so without this check a
    // resumed journal from a different --system would silently serve stale
    // points.
    // The trailing "|alerts1" is the point-schema version: sweep rows grew
    // the per-detector alert counts, so journals recorded before that are
    // rejected up front instead of silently mixing row shapes.
    let fingerprint = upp_bench::sweep::config_fingerprint(&format!(
        "simulate|{:?}|{:?}|{}|vcs{}|f{}|w{}+{}|s{}|sh{}|alerts1",
        args.system,
        args.scheme,
        args.pattern.label(),
        args.vcs,
        args.faults,
        windows.warmup,
        windows.measure,
        args.seed,
        args.shards
    ));
    let journal_path = args.journal.as_ref().map(std::path::PathBuf::from);
    match upp_bench::sweep::configure_journal(journal_path, args.resume, Some(&fingerprint)) {
        Ok(n) => {
            if let Some(j) = &args.journal {
                if args.resume {
                    eprintln!("[journal] resuming from {j} ({n} points recorded)");
                } else {
                    eprintln!("[journal] streaming points to {j}");
                }
            }
        }
        Err(e) => {
            eprintln!("cannot open journal: {e}");
            exit(2);
        }
    }
    eprintln!(
        "sweep: system {:?} | scheme {} | pattern {} | {} rates | {} workers",
        args.system,
        args.scheme.label(),
        args.pattern.label(),
        rates.len(),
        upp_bench::sweep::default_jobs()
    );
    let points = upp_bench::sweep::sweep_rates(
        "cli",
        &spec,
        &cfg,
        &args.scheme,
        args.faults,
        args.pattern,
        rates,
        windows,
        args.seed,
    );
    println!(
        "{:>8} {:>10} {:>10} {:>9} {:>9} {:>12} {:>10} {:>9}",
        "rate", "latency", "queueing", "p95", "p99", "throughput", "ejected", "deadlock"
    );
    for p in &points {
        println!(
            "{:>8} {:>10.2} {:>10.2} {:>9.1} {:>9.1} {:>12.4} {:>10} {:>9}",
            p.rate,
            p.net_latency,
            p.queue_latency,
            p.p95,
            p.p99,
            p.throughput,
            p.packets_ejected,
            p.deadlocked
        );
    }
    if let Some(path) = &args.json {
        let payload =
            serde_json::to_string_pretty(&points).expect("stats serialization is infallible");
        match std::fs::write(path, payload + "\n") {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

fn main() {
    let args = parse();
    if args.resume && args.journal.is_none() {
        eprintln!("--resume needs --journal FILE");
        exit(2);
    }
    if args.journal.is_some() && args.sweep.is_none() {
        eprintln!("--journal only applies to --sweep mode");
        exit(2);
    }
    if args.obs_out.is_some() && args.obs_every.is_none() {
        eprintln!("--obs-out needs --obs-every N");
        exit(2);
    }
    if args.watch && args.sweep.is_some() {
        eprintln!(
            "--watch only applies to single runs; sweep points always carry \
             per-detector alert counts in their journal rows"
        );
        exit(2);
    }
    // The sharded kernel is applied to every network the run builds (the
    // single simulation here, or each sweep point's system in the workers).
    upp_noc::shard::set_default_shards(args.shards);
    if let Some(rates) = args.sweep.clone() {
        run_sweep(&args, &rates);
        return;
    }
    let spec = ChipletSystemSpec::of_kind(args.system);
    let cfg = NocConfig::default().with_vcs_per_vnet(args.vcs);
    let built = build_system(
        &spec,
        cfg,
        &args.scheme,
        args.faults,
        args.seed,
        ConsumePolicy::Immediate { latency: 1 },
    );
    let mut sys = built.sys;
    if args.obs || args.watch {
        // The watcher reads cumulative telemetry, so the registry must be
        // live under --watch too — but the "obs" summary and JSON field
        // stay keyed to --obs alone, keeping golden-pinned payloads
        // byte-identical.
        sys.net_mut().enable_obs();
    }

    // Flight recorder: a Chrome trace buffers in memory (bounded by
    // --trace-ring-cap when given); a JSONL trace streams straight to disk;
    // a bare --trace-ring-cap arms an in-memory ring for post-mortems.
    let mut auto_ring = false;
    if args.chrome_trace.is_some() {
        if args.trace.is_some() {
            eprintln!("--chrome-trace takes precedence over --trace; JSONL output disabled");
        }
        sys.net_mut().set_tracer(match args.trace_ring_cap {
            Some(cap) => Tracer::ring(cap),
            None => Tracer::chrome(),
        });
    } else if let Some(path) = &args.trace {
        if args.trace_ring_cap.is_some() {
            eprintln!("--trace-ring-cap only bounds in-memory traces; ignored with --trace");
        }
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("could not create {path}: {e}");
            exit(1);
        });
        sys.net_mut()
            .set_tracer(Tracer::jsonl(Box::new(std::io::BufWriter::new(file))));
    } else if let Some(cap) = args.trace_ring_cap {
        sys.net_mut().set_tracer(Tracer::ring(cap));
    } else if args.watch_capture_dir.is_some() {
        // A forensics capture wants a trace tail even though the user
        // armed no tracer: keep a small ring so the bundle has the last
        // few thousand events leading up to the critical alert.
        auto_ring = true;
        sys.net_mut().set_tracer(Tracer::ring(4096));
    }
    // The latency profiler rides inside the tracer alongside any sink.
    let mut profile = if args.profile {
        sys.net_mut()
            .tracer_mut()
            .set_profiler(Some(Box::new(SpanRecorder::new())));
        Some(ProfileSummary::new(
            format!("{:?}", args.system),
            args.scheme.label(),
        ))
    } else {
        None
    };
    // Folds finished spans into the summary as the run progresses, so long
    // profiled runs never hold more than a window of spans in memory.
    let drain_spans = |sys: &mut upp_noc::sim::System, summary: &mut Option<ProfileSummary>| {
        if let Some(s) = summary.as_mut() {
            if let Some(p) = sys.net_mut().tracer_mut().profiler_mut() {
                if p.finished().len() >= 4096 {
                    for span in p.drain_finished() {
                        s.absorb_span(&span);
                    }
                }
            }
        }
    };
    let mut sampler = args
        .metrics_every
        .map(|n| MetricsSampler::new(n.max(1), sys.net().topo().num_endpoints()));

    // Telemetry epochs, collected as deterministic single-line JSON, and
    // the online health monitor. Both consume the same epoch boundary: a
    // due boundary calls `observe()` exactly once, so the sampled-gauge
    // stream is byte-identical whether either, both or neither is on.
    let mut obs_lines: Vec<String> = Vec::new();
    let mut watch = args.watch.then(|| {
        let mut w = upp_noc::watch::Watcher::new(upp_noc::watch::WatchConfig {
            every: args.watch_every,
            ..upp_noc::watch::WatchConfig::default()
        });
        w.arm(sys.net());
        w
    });
    let mut watch_file = args.watch_out.as_ref().map(|path| {
        let mut f = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("could not create {path}: {e}");
            exit(1);
        });
        let header = upp_noc::watch::alerts_header_json(args.watch_every);
        if writeln!(f, "{header}").and_then(|()| f.flush()).is_err() {
            eprintln!("could not write {path}");
            exit(1);
        }
        f
    });
    let epoch_tick = |sys: &mut upp_noc::sim::System,
                      obs_lines: &mut Vec<String>,
                      watch: &mut Option<upp_noc::watch::Watcher>,
                      watch_file: &mut Option<std::fs::File>| {
        let c = sys.net().cycle();
        if c == 0 {
            return;
        }
        let obs_due = args.obs_every.is_some_and(|e| c.is_multiple_of(e));
        let watch_due = watch.is_some() && c.is_multiple_of(args.watch_every);
        if !obs_due && !watch_due {
            return;
        }
        // Sampled gauges (queue depths, table occupancy) refresh at the
        // epoch boundary; exact counters have been accumulating all along.
        sys.observe();
        if obs_due {
            let snap = sys.net_mut().obs_mut().take_epoch(c);
            obs_lines.push(sys.net().obs().epoch_json(&snap));
        }
        if !watch_due {
            return;
        }
        let w = watch.as_mut().expect("watch_due implies a watcher");
        let tick = w.feed(sys.net());
        for alert in &tick.alerts {
            let line = alert.jsonl();
            eprintln!("[watch] {line}");
            if let Some(f) = watch_file.as_mut() {
                // Flushed per line so `upp-trace live --follow` sees
                // alerts as they fire.
                let _ = writeln!(f, "{line}");
                let _ = f.flush();
            }
        }
        if tick.capture {
            match &args.watch_capture_dir {
                Some(dir) => {
                    match upp_noc::watch::capture_forensics(sys, std::path::Path::new(dir), c) {
                        Ok(b) => eprintln!(
                            "[watch] critical: captured forensics bundle \
                             ({} files) in {dir}",
                            b.files.len()
                        ),
                        Err(e) => {
                            eprintln!("[watch] could not capture forensics in {dir}: {e}")
                        }
                    }
                }
                None => eprintln!(
                    "[watch] critical alert; pass --watch-capture-dir DIR \
                     to auto-capture forensics"
                ),
            }
        }
    };

    let mut traffic = SyntheticTraffic::new(sys.net().topo(), args.pattern, args.rate, args.seed);
    eprintln!(
        "system {:?} | scheme {} | pattern {} | rate {} | {} cycles | {} VCs | {} faults",
        args.system,
        args.scheme.label(),
        args.pattern.label(),
        args.rate,
        args.cycles,
        args.vcs,
        args.faults
    );
    for cycle in 0..args.cycles {
        traffic.tick(&mut sys);
        sys.step();
        if let Some(s) = sampler.as_mut() {
            s.maybe_sample(sys.net());
        }
        epoch_tick(&mut sys, &mut obs_lines, &mut watch, &mut watch_file);
        drain_spans(&mut sys, &mut profile);
        if sys.net().stalled() {
            eprintln!("network stalled (deadlock) at cycle {cycle}");
            break;
        }
    }
    let outcome =
        if sampler.is_some() || profile.is_some() || args.obs_every.is_some() || watch.is_some() {
            // Manual drain loop so epoch sampling and span streaming continue
            // to the end; the zero-budget call afterwards just classifies the
            // final state. (Telemetry epochs in particular must land on exact
            // cycle boundaries, which fast-forwarding would step over.)
            for _ in 0..args.cycles {
                if sys.net().in_flight() == 0 || sys.net().stalled() {
                    break;
                }
                sys.step();
                if let Some(s) = sampler.as_mut() {
                    s.maybe_sample(sys.net());
                }
                epoch_tick(&mut sys, &mut obs_lines, &mut watch, &mut watch_file);
                drain_spans(&mut sys, &mut profile);
            }
            sys.run_until_drained(0)
        } else {
            sys.run_until_drained(args.cycles)
        };
    // Sharded-kernel telemetry (mailbox high-waters, per-shard merge
    // counts) surfaces as obs gauges — but only when a shard runtime
    // actually exists, so serial runs (and the golden-pinned payloads)
    // keep their exact byte streams.
    // One end-of-run owned snapshot: `shard_telemetry()` itself hands out
    // borrows, and this report outlives several mutable uses of `sys`.
    struct ShardTelemetrySnap {
        shards: usize,
        mailbox_capacity: usize,
        mailbox_high_water: Vec<usize>,
        merged_entries: Vec<u64>,
    }
    let shard_telemetry = sys.net().shard_telemetry().map(|t| ShardTelemetrySnap {
        shards: t.shards,
        mailbox_capacity: t.mailbox_capacity,
        mailbox_high_water: t.mailbox_high_water.to_vec(),
        merged_entries: t.merged_entries.to_vec(),
    });
    if let Some(t) = &shard_telemetry {
        if sys.net().obs().is_enabled() {
            let obs = sys.net_mut().obs_mut();
            let g = obs.gauge("shard.mailbox.capacity");
            obs.gauge_set(g, t.mailbox_capacity as u64);
            for (i, (&hw, &merged)) in t
                .mailbox_high_water
                .iter()
                .zip(t.merged_entries.iter())
                .enumerate()
            {
                let g = obs.gauge(&format!("shard.{i}.mailbox_high_water"));
                obs.gauge_set(g, hw as u64);
                let g = obs.gauge(&format!("shard.{i}.merged_entries"));
                obs.gauge_set(g, merged);
            }
        }
        eprintln!(
            "[shards] {} shards | mailbox high-water {:?} of {} | merged entries {:?}",
            t.shards, t.mailbox_high_water, t.mailbox_capacity, t.merged_entries
        );
    }
    // Memory-footprint report (kernel-invariant: routers + NIs + arena +
    // calendar only, so serial and sharded runs report identical bytes).
    // Gated on --mem so runs without it — including every golden-pinned
    // payload — keep their exact byte streams.
    let mem_report = args.mem.then(|| sys.net().mem_report());
    if let Some(m) = &mem_report {
        if sys.net().obs().is_enabled() {
            let obs = sys.net_mut().obs_mut();
            for (name, v) in [
                ("mem.routers_bytes", m.routers_bytes),
                ("mem.nis_bytes", m.nis_bytes),
                ("mem.arena_bytes", m.arena_bytes),
                ("mem.calendar_bytes", m.calendar_bytes),
                ("mem.total_bytes", m.total_bytes),
                ("mem.bytes_per_router", m.bytes_per_router),
                ("mem.arena_live", m.arena_live),
                ("mem.arena_high_water", m.arena_high_water),
                ("mem.arena_slots", m.arena_slots),
            ] {
                let g = obs.gauge(name);
                obs.gauge_set(g, v as u64);
            }
        }
        eprintln!(
            "[mem] {} B total | {} B/router ({} routers {} B, NIs {} B) | \
             arena {} B ({} live / {} high-water / {} slots) | calendar {} B",
            m.total_bytes,
            m.bytes_per_router,
            sys.net().topo().num_nodes(),
            m.routers_bytes,
            m.nis_bytes,
            m.arena_bytes,
            m.arena_live,
            m.arena_high_water,
            m.arena_slots,
            m.calendar_bytes
        );
    }
    // Final telemetry sample: refresh the sampled gauges once so the
    // summary reflects the end state, then cut the summary. Exact counters
    // are unaffected (they accumulate at the event sites, fast-forward or
    // not).
    let obs_summary = if args.obs {
        sys.observe();
        Some(sys.net().obs().summary_json(sys.net().cycle()))
    } else {
        None
    };

    let stats = sys.net().stats().clone();
    let nodes = sys.net().topo().num_endpoints();
    println!("outcome:            {outcome:?}");
    println!(
        "packets delivered:  {} / {} created",
        stats.packets_ejected, stats.packets_created
    );
    println!("flits delivered:    {}", stats.flits_ejected);
    println!("network latency:    {:.2} cycles", stats.avg_net_latency());
    println!(
        "queueing latency:   {:.2} cycles",
        stats.avg_queue_latency()
    );
    println!("worst latency:      {} cycles", stats.max_latency);
    println!(
        "throughput:         {:.4} flits/cycle/node",
        stats.throughput(sys.net().cycle(), nodes)
    );
    println!("control-signal hops: {}", stats.control_hops);
    println!("bypass (popup) hops: {}", stats.bypass_hops);
    let upp_stats = built.upp_stats.as_ref().map(UppStats::snapshot);
    if let Some(s) = upp_stats {
        println!(
            "UPP: {} upward packets, {} popups ({} partial), {} stops, {} acks dropped",
            s.upward_packets, s.popups_completed, s.partial_popups, s.stops_sent, s.acks_dropped
        );
        if s.popups_completed > 0 {
            let n = s.popups_completed as f64;
            println!(
                "UPP mean recovery:  {:.1} cycles (detection -> delivered)",
                s.avg_recovery_latency()
            );
            println!(
                "UPP stage split:    wait-ack {:.1} | locate {:.1} | pop {:.1} cycles",
                s.wait_ack_cycles as f64 / n,
                s.locate_cycles as f64 / n,
                s.pop_cycles as f64 / n
            );
        }
    }

    // Deadlock forensics.
    if args.stall_report || args.stall_svg_path.is_some() {
        let report = sys.stall_report();
        if args.stall_report {
            print!("{}", report.render_text());
        }
        if let Some(path) = &args.stall_svg_path {
            match std::fs::write(path, stall_svg(sys.net().topo(), &report)) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
    }

    // Drain the tracer: flush JSONL, or render the buffered Chrome trace.
    let mut tracer = sys.net_mut().set_tracer(Tracer::disabled());
    if let Some(path) = &args.chrome_trace {
        match std::fs::write(path, tracer.chrome_trace_json()) {
            Ok(()) => eprintln!("wrote {path} ({} events)", tracer.len()),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    } else if args.trace.is_some() {
        tracer.flush();
    }
    let trace_dropped = tracer.dropped();
    if trace_dropped > 0 && !auto_ring {
        // The watch auto-ring is *meant* to overflow (it keeps a tail for
        // forensics), so the warning only fires for user-armed rings.
        eprintln!(
            "warning: trace ring overflowed; {trace_dropped} oldest events \
             dropped (raise --trace-ring-cap)"
        );
    }

    // Finish the latency profile: the recorder's per-router/per-link
    // counters fold in exactly once, here.
    if let (Some(summary), Some(mut rec)) = (profile.as_mut(), tracer.set_profiler(None)) {
        summary.absorb_recorder(&mut rec);
    }
    if let Some(summary) = &profile {
        match &args.profile_out {
            Some(path) => match std::fs::write(path, summary.to_json()) {
                Ok(()) => eprintln!("wrote {path} ({} packets profiled)", summary.packets),
                Err(e) => eprintln!("could not write {path}: {e}"),
            },
            None => print!("{}", analyze_text(summary)),
        }
    }

    // Epoch-metrics time series.
    if let Some(s) = &sampler {
        let csv = s.to_csv();
        match &args.metrics_out {
            Some(path) => match std::fs::write(path, &csv) {
                Ok(()) => eprintln!("wrote {path} ({} samples)", s.history().len()),
                Err(e) => eprintln!("could not write {path}: {e}"),
            },
            None => {
                let mut stdout = std::io::stdout().lock();
                let _ = stdout.write_all(csv.as_bytes());
            }
        }
    }

    // Telemetry epochs (JSONL: header line, then one line per epoch).
    if args.obs_every.is_some() {
        let mut out = sys.net().obs().epochs_header_json();
        out.push('\n');
        for line in &obs_lines {
            out.push_str(line);
            out.push('\n');
        }
        match &args.obs_out {
            Some(path) => match std::fs::write(path, &out) {
                Ok(()) => eprintln!("wrote {path} ({} epochs)", obs_lines.len()),
                Err(e) => eprintln!("could not write {path}: {e}"),
            },
            None => {
                let mut stdout = std::io::stdout().lock();
                let _ = stdout.write_all(out.as_bytes());
            }
        }
    }
    // Telemetry summary, human-visible. The same JSON is embedded in
    // --json output below for machine consumption.
    if let Some(summary) = &obs_summary {
        println!("telemetry summary:");
        println!("{summary}");
    }
    // Watch verdict, human-visible; the alert lines themselves streamed
    // to stderr (and --watch-out) as they fired.
    if let Some(w) = &watch {
        if w.total_raised() == 0 {
            println!(
                "watch: healthy ({} detectors, 0 alerts)",
                upp_noc::watch::NUM_DETECTORS
            );
        } else {
            println!("watch: {} alerts raised", w.total_raised());
            for (d, n) in upp_noc::watch::Detector::ALL.iter().zip(w.alert_counts()) {
                if n > 0 {
                    println!("  {:<22} {n}", d.name());
                }
            }
        }
        if let Some(path) = &args.watch_out {
            eprintln!("wrote {path} ({} alert lines)", w.alerts().len());
        }
    }

    // Machine-readable final stats.
    if let Some(path) = &args.json {
        let net_json =
            serde_json::to_string_pretty(&stats).expect("stats serialization is infallible");
        let upp_json = match &upp_stats {
            Some(s) => serde_json::to_string_pretty(s).expect("stats serialization is infallible"),
            None => "null".to_string(),
        };
        // The "obs" key appears only when telemetry ran: runs without
        // --obs keep the exact historical payload (pinned by the
        // determinism goldens).
        let obs_field = match &obs_summary {
            Some(s) => format!(",\n  \"obs\": {s}"),
            None => String::new(),
        };
        // The "mem" key appears only under --mem, for the same
        // golden-compatibility reason.
        let mem_field = match &mem_report {
            Some(m) => format!(
                ",\n  \"mem\": {}",
                serde_json::to_string(m).expect("mem report serialization is infallible")
            ),
            None => String::new(),
        };
        // Same golden-compatibility rule for the "watch" and "shards"
        // keys: absent unless telemetry was explicitly requested. The
        // "shards" key in particular must NOT appear on a bare sharded
        // run — the scheduler goldens compare `--shards N` output
        // byte-for-byte against the serial recordings.
        let watch_field = match &watch {
            Some(w) => format!(",\n  \"watch\": {}", w.counts_json()),
            None => String::new(),
        };
        let shards_field = match shard_telemetry.as_ref().filter(|_| args.obs || args.watch) {
            Some(t) => format!(
                ",\n  \"shards\": {{\"count\": {}, \"mailbox_capacity\": {}, \
                 \"mailbox_high_water\": {:?}, \"merged_entries\": {:?}}}",
                t.shards, t.mailbox_capacity, t.mailbox_high_water, t.merged_entries
            ),
            None => String::new(),
        };
        let payload = format!(
            "{{\n  \"outcome\": \"{outcome:?}\",\n  \"cycles\": {},\n  \"endpoints\": {nodes},\n  \"trace_dropped\": {trace_dropped},\n  \"net\": {net_json},\n  \"upp\": {upp_json}{obs_field}{mem_field}{watch_field}{shards_field}\n}}\n",
            sys.net().cycle()
        );
        match std::fs::write(path, payload) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }

    if let Some(path) = args.svg {
        let occ = sys.net().occupancy();
        match std::fs::write(&path, topology_svg(sys.net().topo(), &occ)) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
