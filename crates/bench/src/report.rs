//! Rendering helpers: markdown tables and JSON result files.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One regenerated experiment artifact.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id (`fig7`, `table1`, ...).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Markdown rendering (printed to stdout and embeddable in
    /// EXPERIMENTS.md).
    pub markdown: String,
    /// Machine-readable data.
    pub json: serde_json::Value,
}

impl ExperimentResult {
    /// Builds a result, serialising `data` to JSON.
    ///
    /// # Panics
    ///
    /// Panics if `data` fails to serialise (a bug in the result types).
    pub fn new<T: Serialize>(
        id: &'static str,
        title: &'static str,
        markdown: String,
        data: &T,
    ) -> Self {
        Self {
            id,
            title,
            markdown,
            json: serde_json::to_value(data).expect("results serialise"),
        }
    }

    /// Writes `<dir>/<id>.json` and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(&path, serde_json::to_string_pretty(&self.json)?)?;
        Ok(path)
    }
}

/// A simple markdown table builder.
#[derive(Debug, Default, Clone)]
pub struct MarkdownTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Starts a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        debug_assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders to markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", r.join(" | "));
        }
        out
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio as a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a signed ratio as a percentage with an explicit sign.
pub fn spct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Check/cross mark used by Table I.
pub fn mark(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_pipes_and_separator() {
        let mut t = MarkdownTable::new(["a", "b"]);
        t.row(["1", "2"]).row(["3", "4"]);
        let md = t.render();
        assert!(md.starts_with("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 3 | 4 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.0377), "3.8%");
        assert_eq!(spct(0.21), "+21.0%");
        assert_eq!(spct(-0.005), "-0.5%");
        assert_eq!(mark(true), "yes");
        assert_eq!(mark(false), "no");
    }

    #[test]
    fn result_writes_json() {
        let r = ExperimentResult::new("test_exp", "t", "md".into(), &vec![1, 2, 3]);
        let dir = std::env::temp_dir().join("upp_report_test");
        let p = r.write_json(&dir).unwrap();
        let body = std::fs::read_to_string(p).unwrap();
        assert!(body.contains('1'));
    }
}
