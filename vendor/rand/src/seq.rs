//! Sequence-related helpers.

use crate::RngCore;

/// Extension methods on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Picks one element uniformly, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((rng.next_u64() % self.len() as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "64 elements should not shuffle to identity");
    }
}
