//! End-to-end smoke tests of the `simulate` binary's argument validation
//! and the watch surface: zero-interval flags must fail with a message
//! that names the flag (not the generic usage dump), `--watch` must work
//! on clean and wedged runs, and the alert stream must be identical
//! across repeated invocations.

use std::path::PathBuf;
use std::process::Command;

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("upp-simulate-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn simulate_raw(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_simulate"))
        .args(args)
        .output()
        .expect("simulate binary runs")
}

/// Runs `simulate`, asserting success, and returns (stdout, stderr).
fn simulate_ok(args: &[&str]) -> (String, String) {
    let out = simulate_raw(args);
    assert!(
        out.status.success(),
        "simulate {args:?} failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
    )
}

/// Asserts `simulate args` exits with code 2 and an error message that
/// contains every needle (so the user learns *which* flag was wrong and
/// what the valid range is — not just the usage dump).
fn assert_rejected(args: &[&str], needles: &[&str]) {
    let out = simulate_raw(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "simulate {args:?} should exit 2, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    for n in needles {
        assert!(
            stderr.contains(n),
            "simulate {args:?} stderr should mention {n:?}:\n{stderr}"
        );
    }
}

#[test]
fn zero_interval_flags_are_rejected_with_clear_errors() {
    assert_rejected(&["--obs-every", "0"], &["--obs-every", "at least 1 cycle"]);
    assert_rejected(
        &["--metrics-every", "0"],
        &["--metrics-every", "at least 1 cycle"],
    );
    assert_rejected(
        &["--watch-every", "0"],
        &["--watch-every", "at least 1 cycle"],
    );
    // Sweep mode computes alert counts for every point already; a --watch
    // there is a contradiction worth naming.
    assert_rejected(&["--watch", "--sweep", "0.02"], &["--watch", "single runs"]);
}

const CLEAN: &[&str] = &[
    "--scheme",
    "upp",
    "--pattern",
    "transpose",
    "--rate",
    "0.10",
    "--cycles",
    "3000",
    "--seed",
    "7",
];

#[test]
fn watch_clean_run_is_alert_free_and_json_carries_counts() {
    let json = tmp_path("clean.json");
    let mut args = CLEAN.to_vec();
    args.extend_from_slice(&["--watch", "--json", json.to_str().expect("utf-8")]);
    let (stdout, _) = simulate_ok(&args);
    assert!(
        stdout.contains("watch: healthy (7 detectors, 0 alerts)"),
        "clean run verdict:\n{stdout}"
    );
    let payload = std::fs::read_to_string(&json).expect("json written");
    assert!(
        payload.contains("\"watch\": {\"alerts_raised\": 0"),
        "watch counts embedded:\n{payload}"
    );
    // Without --watch the key must stay absent: the determinism goldens
    // pin the historical payload byte for byte.
    let json2 = tmp_path("clean_nowatch.json");
    let mut args = CLEAN.to_vec();
    args.extend_from_slice(&["--json", json2.to_str().expect("utf-8")]);
    simulate_ok(&args);
    let payload = std::fs::read_to_string(&json2).expect("json written");
    assert!(!payload.contains("\"watch\""), "no watch key:\n{payload}");
    assert!(!payload.contains("\"shards\""), "no shards key:\n{payload}");
}

#[test]
fn watch_deadlock_run_fires_streams_and_captures() {
    let alerts = tmp_path("alerts.jsonl");
    let capture = tmp_path("forensics");
    let (stdout, stderr) = simulate_ok(&[
        "--scheme",
        "none",
        "--pattern",
        "hotspot",
        "--rate",
        "0.25",
        "--cycles",
        "6000",
        "--seed",
        "7",
        "--watch-every",
        "100",
        "--watch-out",
        alerts.to_str().expect("utf-8"),
        "--watch-capture-dir",
        capture.to_str().expect("utf-8"),
    ]);
    assert!(stdout.contains("watch: "), "verdict present:\n{stdout}");
    assert!(
        stderr.contains("\"event\":\"escalate\",\"severity\":\"critical\""),
        "critical alert streamed to stderr:\n{stderr}"
    );
    let stream = std::fs::read_to_string(&alerts).expect("alert stream written");
    let mut lines = stream.lines();
    assert!(
        lines
            .next()
            .expect("header")
            .contains("\"schema\":\"upp-alerts/v1\""),
        "header first:\n{stream}"
    );
    assert!(
        stream.contains("\"detector\":\"throughput_collapse\""),
        "collapse detected:\n{stream}"
    );
    // The forensics bundle exists without --stall-report/--trace armed.
    for file in [
        "meta.json",
        "stall_report.txt",
        "trace_tail.jsonl",
        "obs_summary.json",
    ] {
        let p = capture.join(file);
        assert!(p.is_file(), "forensics bundle file {file} missing");
        assert!(
            std::fs::metadata(&p).expect("meta").len() > 0,
            "forensics bundle file {file} empty"
        );
    }
    let meta = std::fs::read_to_string(capture.join("meta.json")).expect("meta");
    assert!(meta.contains("\"upp_watch_capture\":1"), "{meta}");
}

#[test]
fn watch_alert_stream_is_reproducible() {
    let run = |name: &str| {
        let path = tmp_path(name);
        simulate_ok(&[
            "--scheme",
            "none",
            "--pattern",
            "hotspot",
            "--rate",
            "0.25",
            "--cycles",
            "6000",
            "--seed",
            "7",
            "--watch-every",
            "100",
            "--watch-out",
            path.to_str().expect("utf-8"),
        ]);
        std::fs::read_to_string(&path).expect("alert stream written")
    };
    let a = run("repeat_a.jsonl");
    let b = run("repeat_b.jsonl");
    assert_eq!(a, b, "alert bytes differ across identical invocations");
    assert!(a.lines().count() > 1, "the run alerts at all:\n{a}");
}
