//! Fig. 9: latency comparison in the 128-node system (4x8 interposer, 8
//! chiplets) under uniform random traffic.

use super::{cfg, rates_1vc, rates_4vc, windows, SEED};
use crate::report::{f1, f3, spct, ExperimentResult, MarkdownTable};
use crate::sweep::sweep_rates;
use serde::Serialize;
use upp_noc::topology::ChipletSystemSpec;
use upp_workloads::runner::{presaturation_latency, saturation_throughput, SchemeKind, SweepPoint};
use upp_workloads::synthetic::Pattern;

/// One Fig. 9 curve.
#[derive(Debug, Clone, Serialize)]
pub struct Curve {
    /// Scheme label.
    pub scheme: String,
    /// VCs per VNet.
    pub vcs: usize,
    /// Measured points.
    pub points: Vec<SweepPoint>,
    /// Saturation throughput.
    pub saturation: f64,
    /// Pre-saturation latency.
    pub presat_latency: f64,
}

/// Collects Fig. 9 curves.
pub fn collect(quick: bool) -> Vec<Curve> {
    let spec = ChipletSystemSpec::large();
    let w = windows(quick);
    let mut curves = Vec::new();
    for vcs in [1usize, 4] {
        let rates = if vcs == 1 {
            rates_1vc(quick)
        } else {
            rates_4vc(quick)
        };
        for kind in SchemeKind::evaluated() {
            let pts = sweep_rates(
                "fig9",
                &spec,
                &cfg(vcs),
                &kind,
                0,
                Pattern::UniformRandom,
                &rates,
                w,
                SEED,
            );
            curves.push(Curve {
                scheme: kind.label().to_string(),
                vcs,
                saturation: saturation_throughput(&pts),
                presat_latency: presaturation_latency(&pts),
                points: pts,
            });
        }
    }
    curves
}

/// Runs Fig. 9 and renders it.
pub fn run(quick: bool) -> ExperimentResult {
    let curves = collect(quick);
    let mut out = String::new();
    out.push_str("### Fig. 9 — 128-node system (4x8 interposer, 8 chiplets), uniform random\n\n");
    let mut t = MarkdownTable::new([
        "scheme",
        "VCs",
        "saturation (flits/cyc/node)",
        "pre-sat latency",
    ]);
    for c in &curves {
        t.row([
            c.scheme.clone(),
            c.vcs.to_string(),
            f3(c.saturation),
            f1(c.presat_latency),
        ]);
    }
    out.push_str(&t.render());
    let find = |s: &str, v: usize| {
        curves
            .iter()
            .find(|c| c.scheme == s && c.vcs == v)
            .expect("curve exists")
    };
    for vcs in [1usize, 4] {
        let (u, c) = (find("UPP", vcs), find("composable", vcs));
        out.push_str(&format!(
            "\n{} VC(s): UPP saturation {} vs composable (paper: +11-13%), latency {}\n",
            vcs,
            spct(u.saturation / c.saturation - 1.0),
            spct(u.presat_latency / c.presat_latency - 1.0),
        ));
    }
    out.push_str("\nPaper note: the throughput gap narrows vs Fig. 7 because the larger network is inherently less load-balanced.\n");
    ExperimentResult::new("fig9", "Fig. 9: 128-node system", out, &curves)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig9_runs_all_schemes() {
        let curves = collect(true);
        assert_eq!(curves.len(), 6);
        for c in &curves {
            assert!(
                c.saturation > 0.0,
                "{} {}VC saturates above zero",
                c.scheme,
                c.vcs
            );
            assert!(c.presat_latency.is_finite());
        }
    }
}
