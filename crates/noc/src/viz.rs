//! Rendering of system topology and network state.
//!
//! Two renderers, both dependency-free:
//!
//! * [`topology_svg`] — a plan view of the chiplets above the interposer
//!   with every mesh and vertical link; node fill encodes buffered-flit
//!   occupancy (white → dark red), which makes a wedged dependency chain
//!   visible at a glance;
//! * [`occupancy_ascii`] — the same occupancy as per-region digit grids for
//!   terminal output;
//! * [`stall_svg`] — the plan view annotated with a
//!   [`crate::trace::StallReport`]: the circular-wait channels drawn as
//!   thick red arrows and the wedged packets' held VCs ringed;
//! * [`contention_svg`] — the plan view as a contention heatmap: node fill
//!   encodes per-router heat, link strokes per-directed-link heat (e.g.
//!   blocked VC-cycles from the [`crate::profile::SpanRecorder`]).

use crate::ids::{NodeId, Port};
use crate::topology::Topology;
use crate::trace::StallReport;
use std::collections::HashMap;
use std::fmt::Write as _;

const CELL: f64 = 46.0;
const NODE: f64 = 30.0;
const CHIPLET_GAP: f64 = 40.0;
const BAND_GAP: f64 = 90.0;
const MARGIN: f64 = 24.0;

/// Per-node (x, y) centre positions for the plan view.
fn layout(topo: &Topology) -> HashMap<NodeId, (f64, f64)> {
    let mut pos = HashMap::new();
    // Chiplets in a row along the top band.
    let mut x_off = MARGIN;
    let mut band_h: f64 = 0.0;
    for c in topo.chiplets() {
        for &r in &c.routers {
            let n = topo.node(r);
            pos.insert(
                r,
                (
                    x_off + n.x as f64 * CELL + NODE / 2.0,
                    MARGIN + (c.height - 1 - n.y) as f64 * CELL + NODE / 2.0,
                ),
            );
        }
        x_off += c.width as f64 * CELL + CHIPLET_GAP;
        band_h = band_h.max(c.height as f64 * CELL);
    }
    // Interposer centred below.
    let (iw, _) = topo.interposer_dims();
    let total_w = x_off - CHIPLET_GAP - MARGIN;
    let ix_off = MARGIN + (total_w - iw as f64 * CELL).max(0.0) / 2.0;
    let iy_off = MARGIN + band_h + BAND_GAP;
    for &r in topo.interposer_routers() {
        let n = topo.node(r);
        let (_, ih) = topo.interposer_dims();
        pos.insert(
            r,
            (
                ix_off + n.x as f64 * CELL + NODE / 2.0,
                iy_off + (ih - 1 - n.y) as f64 * CELL + NODE / 2.0,
            ),
        );
    }
    pos
}

fn heat_color(flits: usize, max: usize) -> String {
    if max == 0 || flits == 0 {
        return "#ffffff".into();
    }
    let t = (flits as f64 / max as f64).clamp(0.0, 1.0);
    let r = 255;
    let gb = (235.0 * (1.0 - t)) as u8;
    format!("#{r:02x}{gb:02x}{gb:02x}")
}

/// Renders the system as an SVG plan view. `occupancy` (from
/// [`crate::network::Network::occupancy`]) colours nodes by buffered flits;
/// pass an empty slice for a plain topology diagram.
pub fn topology_svg(topo: &Topology, occupancy: &[(NodeId, usize)]) -> String {
    let pos = layout(topo);
    let occ: HashMap<NodeId, usize> = occupancy.iter().copied().collect();
    let max_occ = occ.values().copied().max().unwrap_or(0);
    let width = pos.values().map(|&(x, _)| x).fold(0.0, f64::max) + NODE + MARGIN;
    let height = pos.values().map(|&(_, y)| y).fold(0.0, f64::max) + NODE + MARGIN;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" viewBox="0 0 {width:.0} {height:.0}">"#
    );
    let _ = writeln!(
        svg,
        r##"<rect width="100%" height="100%" fill="#fafafa"/>"##
    );

    // Links first (under the nodes).
    for n in topo.nodes() {
        for (p, peer) in n.links() {
            if peer < n.id {
                continue; // draw each bidirectional link once
            }
            let (x1, y1) = pos[&n.id];
            let (x2, y2) = pos[&peer];
            let faulty = topo.is_link_faulty(n.id, p);
            let (stroke, dash) = if faulty {
                ("#d02020", r#" stroke-dasharray="2,4""#)
            } else if p.is_vertical() {
                ("#4060c0", r#" stroke-dasharray="6,4""#)
            } else {
                ("#b0b0b0", "")
            };
            let _ = writeln!(
                svg,
                r#"<line x1="{x1:.0}" y1="{y1:.0}" x2="{x2:.0}" y2="{y2:.0}" stroke="{stroke}" stroke-width="2"{dash}/>"#
            );
        }
    }
    // Nodes.
    for n in topo.nodes() {
        let (x, y) = pos[&n.id];
        let fill = heat_color(occ.get(&n.id).copied().unwrap_or(0), max_occ);
        let stroke = if n.boundary { "#4060c0" } else { "#404040" };
        let shape = if topo.is_interposer(n.id) { 4.0 } else { 8.0 };
        let _ = writeln!(
            svg,
            r#"<rect x="{:.0}" y="{:.0}" width="{NODE:.0}" height="{NODE:.0}" rx="{shape}" fill="{fill}" stroke="{stroke}" stroke-width="2"/>"#,
            x - NODE / 2.0,
            y - NODE / 2.0,
        );
        let _ = writeln!(
            svg,
            r#"<text x="{x:.0}" y="{:.0}" font-size="9" text-anchor="middle" font-family="monospace">{}</text>"#,
            y + 3.0,
            n.id.0
        );
    }
    svg.push_str("</svg>\n");
    svg
}

/// Renders the plan view annotated with deadlock forensics: base occupancy
/// heat from the report, thick red arrows over every channel of the
/// detected circular wait, and orange rings around routers where wedged
/// packets hold flits.
pub fn stall_svg(topo: &Topology, report: &StallReport) -> String {
    let base = topology_svg(topo, &report.occupancy);
    let pos = layout(topo);
    let mut overlay = String::new();
    // Held VCs: ring the routers.
    let mut ringed: Vec<NodeId> = report
        .wedged
        .iter()
        .flat_map(|w| w.holds.iter())
        .filter(|h| h.buffered > 0)
        .map(|h| h.node)
        .collect();
    ringed.sort();
    ringed.dedup();
    for n in ringed {
        let (x, y) = pos[&n];
        let _ = writeln!(
            overlay,
            r##"<circle cx="{x:.0}" cy="{y:.0}" r="{:.0}" fill="none" stroke="#e08020" stroke-width="3"/>"##,
            NODE * 0.75
        );
    }
    // The circular wait: red arrows along each channel.
    for ch in &report.wait_cycle {
        let Some(peer) = topo.raw_neighbor(ch.from, ch.out) else {
            continue;
        };
        let (x1, y1) = pos[&ch.from];
        let (x2, y2) = pos[&peer];
        // Shorten toward the head so the arrow tip is visible at the node
        // edge.
        let (dx, dy) = (x2 - x1, y2 - y1);
        let len = (dx * dx + dy * dy).sqrt().max(1.0);
        let (ux, uy) = (dx / len, dy / len);
        let (hx, hy) = (x2 - ux * NODE * 0.7, y2 - uy * NODE * 0.7);
        let _ = writeln!(
            overlay,
            r##"<line x1="{x1:.0}" y1="{y1:.0}" x2="{hx:.0}" y2="{hy:.0}" stroke="#d02020" stroke-width="4" opacity="0.8"/>"##
        );
        let _ = writeln!(
            overlay,
            r##"<polygon points="{:.0},{:.0} {:.0},{:.0} {:.0},{:.0}" fill="#d02020"/>"##,
            hx + ux * 8.0,
            hy + uy * 8.0,
            hx - uy * 5.0,
            hy + ux * 5.0,
            hx + uy * 5.0,
            hy - ux * 5.0,
        );
    }
    let _ = writeln!(
        overlay,
        r#"<text x="{MARGIN:.0}" y="14" font-size="12" font-family="monospace">stall @ cycle {}: {} wedged, {}</text>"#,
        report.cycle,
        report.wedged.len(),
        if report.is_deadlock() {
            "circular wait in red"
        } else {
            "no channel cycle"
        }
    );
    base.replace("</svg>\n", &format!("{overlay}</svg>\n"))
}

/// Renders a contention heatmap over the plan view. `node_heat` colours
/// routers white → red relative to the hottest router; `link_heat` draws
/// one overlay stroke per hot directed link `(from, out_port, heat)`,
/// offset a few pixels perpendicular to the link so both directions of a
/// physical link stay distinguishable, with stroke width and colour scaling
/// with heat. Heat units are the caller's (the profiling pipeline feeds
/// blocked VC-cycles); only relative magnitude matters. The `title` is
/// rendered verbatim after XML escaping.
pub fn contention_svg(
    topo: &Topology,
    node_heat: &[(NodeId, u64)],
    link_heat: &[(NodeId, Port, u64)],
    title: &str,
) -> String {
    let pos = layout(topo);
    let nh: HashMap<NodeId, u64> = node_heat.iter().copied().collect();
    let max_node = nh.values().copied().max().unwrap_or(0);
    let max_link = link_heat.iter().map(|&(_, _, v)| v).max().unwrap_or(0);
    let width = pos.values().map(|&(x, _)| x).fold(0.0, f64::max) + NODE + MARGIN;
    let height = pos.values().map(|&(_, y)| y).fold(0.0, f64::max) + NODE + MARGIN;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" viewBox="0 0 {width:.0} {height:.0}">"#
    );
    let _ = writeln!(
        svg,
        r##"<rect width="100%" height="100%" fill="#fafafa"/>"##
    );

    // Plain links underneath, as in the topology view.
    for n in topo.nodes() {
        for (p, peer) in n.links() {
            if peer < n.id {
                continue;
            }
            let (x1, y1) = pos[&n.id];
            let (x2, y2) = pos[&peer];
            let dash = if p.is_vertical() {
                r#" stroke-dasharray="6,4""#
            } else {
                ""
            };
            let _ = writeln!(
                svg,
                r##"<line x1="{x1:.0}" y1="{y1:.0}" x2="{x2:.0}" y2="{y2:.0}" stroke="#d8d8d8" stroke-width="2"{dash}/>"##
            );
        }
    }
    // Hot directed links on top.
    for &(n, p, v) in link_heat {
        if v == 0 {
            continue;
        }
        let Some(peer) = topo.raw_neighbor(n, p) else {
            continue;
        };
        let (x1, y1) = pos[&n];
        let (x2, y2) = pos[&peer];
        let (dx, dy) = (x2 - x1, y2 - y1);
        let len = (dx * dx + dy * dy).sqrt().max(1.0);
        // Perpendicular offset keeps the two directions side by side.
        let (ox, oy) = (-dy / len * 3.0, dx / len * 3.0);
        let t = v as f64 / max_link as f64;
        let stroke = heat_color((t * 1000.0) as usize, 1000);
        let _ = writeln!(
            svg,
            r#"<line x1="{:.0}" y1="{:.0}" x2="{:.0}" y2="{:.0}" stroke="{stroke}" stroke-width="{:.1}" opacity="0.9"/>"#,
            x1 + ox,
            y1 + oy,
            x2 + ox,
            y2 + oy,
            2.0 + 3.0 * t,
        );
    }
    // Nodes coloured by heat.
    for n in topo.nodes() {
        let (x, y) = pos[&n.id];
        let heat = nh.get(&n.id).copied().unwrap_or(0);
        let fill = heat_color(
            ((heat as f64 / max_node.max(1) as f64) * 1000.0) as usize,
            1000,
        );
        let stroke = if n.boundary { "#4060c0" } else { "#404040" };
        let shape = if topo.is_interposer(n.id) { 4.0 } else { 8.0 };
        let _ = writeln!(
            svg,
            r#"<rect x="{:.0}" y="{:.0}" width="{NODE:.0}" height="{NODE:.0}" rx="{shape}" fill="{fill}" stroke="{stroke}" stroke-width="2"/>"#,
            x - NODE / 2.0,
            y - NODE / 2.0,
        );
        let _ = writeln!(
            svg,
            r#"<text x="{x:.0}" y="{:.0}" font-size="9" text-anchor="middle" font-family="monospace">{}</text>"#,
            y + 3.0,
            n.id.0
        );
    }
    let escaped = title
        .replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;");
    let _ = writeln!(
        svg,
        r#"<text x="{MARGIN:.0}" y="14" font-size="12" font-family="monospace">{escaped}</text>"#
    );
    svg.push_str("</svg>\n");
    svg
}

/// Renders occupancy as per-region digit grids (`.` for empty, `1`-`9`,
/// then `#` for ten or more buffered flits).
pub fn occupancy_ascii(topo: &Topology, occupancy: &[(NodeId, usize)]) -> String {
    let occ: HashMap<NodeId, usize> = occupancy.iter().copied().collect();
    let glyph = |n: NodeId| -> char {
        match occ.get(&n).copied().unwrap_or(0) {
            0 => '.',
            f @ 1..=9 => char::from_digit(f as u32, 10).expect("single digit"),
            _ => '#',
        }
    };
    let mut out = String::new();
    for c in topo.chiplets() {
        let _ = writeln!(out, "chiplet {}:", c.id);
        for y in (0..c.height).rev() {
            out.push_str("  ");
            for x in 0..c.width {
                let n = c.routers[(y * c.width + x) as usize];
                out.push(glyph(n));
                out.push(if topo.node(n).boundary { '*' } else { ' ' });
            }
            out.push('\n');
        }
    }
    let (iw, ih) = topo.interposer_dims();
    let _ = writeln!(out, "interposer:");
    for y in (0..ih).rev() {
        out.push_str("  ");
        for x in 0..iw {
            let n = topo.interposer_routers()[(y * iw + x) as usize];
            out.push(glyph(n));
            out.push(if topo.raw_neighbor(n, Port::Up).is_some() {
                '^'
            } else {
                ' '
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ChipletSystemSpec;

    fn topo() -> Topology {
        ChipletSystemSpec::baseline().build(0).unwrap()
    }

    #[test]
    fn svg_contains_every_node_and_link_class() {
        let t = topo();
        let svg = topology_svg(&t, &[]);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<rect x=").count(), t.num_nodes());
        // 16 vertical links drawn dashed blue.
        assert_eq!(
            svg.matches(r##"stroke="#4060c0" stroke-width="2" stroke-dasharray"##)
                .count(),
            16
        );
    }

    #[test]
    fn svg_heat_scales_with_occupancy() {
        let t = topo();
        let hot = t.chiplets()[0].routers[0];
        let svg = topology_svg(&t, &[(hot, 10)]);
        assert!(
            svg.contains(r##"fill="#ff0000""##),
            "hottest node is pure red"
        );
        assert!(svg.contains(r##"fill="#ffffff""##), "cold nodes stay white");
    }

    #[test]
    fn faulty_links_are_marked() {
        let mut t = topo();
        let b = t.chiplets()[0].routers[0];
        t.set_link_faulty(b, Port::East);
        let svg = topology_svg(&t, &[]);
        assert!(svg.contains(r##"stroke="#d02020""##));
    }

    #[test]
    fn contention_svg_colours_hot_nodes_and_links() {
        let t = topo();
        let hot = t.chiplets()[0].routers[0];
        let svg = contention_svg(
            &t,
            &[(hot, 500)],
            &[(hot, Port::East, 120), (hot, Port::North, 0)],
            "blocked cycles <test> & co",
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<rect x=").count(), t.num_nodes());
        assert!(
            svg.contains(r##"fill="#ff0000""##),
            "hottest node is pure red"
        );
        // Exactly one hot-link overlay (zero-heat links are skipped).
        assert_eq!(svg.matches(r#"opacity="0.9""#).count(), 1);
        assert!(svg.contains("blocked cycles &lt;test&gt; &amp; co"));
    }

    #[test]
    fn ascii_grids_have_region_shapes() {
        let t = topo();
        let hot = t.interposer_routers()[0];
        let text = occupancy_ascii(&t, &[(hot, 12)]);
        assert!(text.contains("chiplet c0:"));
        assert!(text.contains("interposer:"));
        assert!(text.contains('#'), "saturated node renders as #");
        assert!(text.contains('*'), "boundary routers are starred");
        assert!(
            text.contains('^'),
            "interposer routers with Up links are marked"
        );
        // 4 chiplet rows x 4 + 4 interposer rows.
        assert_eq!(
            text.lines().filter(|l| l.starts_with("  ")).count(),
            4 * 4 + 4
        );
    }
}
