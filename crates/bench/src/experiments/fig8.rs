//! Fig. 8: normalized full-system runtime over the 18 PARSEC/SPLASH-2
//! benchmark profiles, (a) 1 VC per VNet and (b) 4 VCs per VNet.
//!
//! The gem5 full-system runs are substituted by the MESI-style coherence
//! engine (see `upp-workloads`); runtimes are normalized to composable
//! routing, as in the paper.

use super::{cfg, SEED};
use crate::report::{f3, ExperimentResult, MarkdownTable};
use crate::sweep::{engine, FromJsonValue};
use serde::Serialize;
use serde_json::Value;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use upp_core::UppStats;
use upp_noc::ni::ConsumePolicy;
use upp_noc::topology::ChipletSystemSpec;
use upp_workloads::coherence::run_benchmark;
use upp_workloads::profiles::all_benchmarks;
use upp_workloads::runner::{build_system, SchemeKind};

/// Everything recorded about one coherence run (also feeds Figs. 12 and 15).
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Run {
    /// Benchmark name.
    pub benchmark: String,
    /// Scheme label.
    pub scheme: String,
    /// VCs per VNet.
    pub vcs: usize,
    /// Runtime in cycles.
    pub cycles: u64,
    /// Packets delivered.
    pub packets: u64,
    /// Flits delivered.
    pub flits: u64,
    /// Buffered flit hops (energy input).
    pub flit_hops: u64,
    /// Bypass (upward flit) hops.
    pub bypass_hops: u64,
    /// Control-signal hops.
    pub control_hops: u64,
    /// Flits injected.
    pub flits_injected: u64,
    /// Upward packets detected (UPP runs; 0 otherwise).
    pub upward_packets: u64,
    /// True if the run failed to complete (must never happen).
    pub incomplete: bool,
}

impl FromJsonValue for Fig8Run {
    fn from_json_value(v: &Value) -> Option<Fig8Run> {
        Some(Fig8Run {
            benchmark: v.get("benchmark")?.as_str()?.to_string(),
            scheme: v.get("scheme")?.as_str()?.to_string(),
            vcs: v.get("vcs")?.as_u64()? as usize,
            cycles: v.get("cycles")?.as_u64()?,
            packets: v.get("packets")?.as_u64()?,
            flits: v.get("flits")?.as_u64()?,
            flit_hops: v.get("flit_hops")?.as_u64()?,
            bypass_hops: v.get("bypass_hops")?.as_u64()?,
            control_hops: v.get("control_hops")?.as_u64()?,
            flits_injected: v.get("flits_injected")?.as_u64()?,
            upward_packets: v.get("upward_packets")?.as_u64()?,
            incomplete: matches!(v.get("incomplete")?, Value::Bool(true)),
        })
    }
}

/// The full Fig. 8 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Data {
    /// All runs.
    pub runs: Vec<Fig8Run>,
    /// Routers in the system (energy input).
    pub routers: usize,
    /// Bidirectional links in the system (energy input).
    pub links: usize,
    /// Geometric-mean normalized runtime per `(scheme, vcs)`.
    pub geomean: Vec<(String, usize, f64)>,
}

fn transactions_scale(quick: bool) -> f64 {
    if quick {
        0.15
    } else {
        1.0
    }
}

/// Collects (and memoizes within the process) the coherence runs.
pub fn data(quick: bool) -> Arc<Fig8Data> {
    static CACHE: OnceLock<Mutex<HashMap<bool, Arc<Fig8Data>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(d) = cache.lock().unwrap().get(&quick) {
        return Arc::clone(d);
    }
    let d = Arc::new(collect(quick));
    cache.lock().unwrap().insert(quick, Arc::clone(&d));
    d
}

fn collect(quick: bool) -> Fig8Data {
    let spec = ChipletSystemSpec::baseline();
    let scale = transactions_scale(quick);
    let benchmarks = all_benchmarks();
    let benchmarks: Vec<_> = if quick {
        benchmarks[..4].to_vec()
    } else {
        benchmarks
    };
    // Every (vcs, scheme, benchmark) run is an independent simulation; fan
    // them out on the sweep engine (results stay deterministic per run and
    // journal/resume under keys scoped by the full parameter tuple).
    let mut jobs = Vec::new();
    for vcs in [1usize, 4] {
        for kind in SchemeKind::evaluated() {
            for bench in &benchmarks {
                jobs.push((vcs, kind.clone(), *bench));
            }
        }
    }
    let runs: Vec<Fig8Run> = engine().run_keyed(
        &jobs,
        |(vcs, kind, bench)| format!("fig8|vcs{vcs}|{kind:?}|{}|x{scale}", bench.name),
        |(vcs, kind, bench)| {
            let mut profile = *bench;
            profile.transactions = ((profile.transactions as f64 * scale) as u64).max(10);
            let built = build_system(&spec, cfg(*vcs), kind, 0, SEED, ConsumePolicy::External);
            let mut sys = built.sys;
            let r = run_benchmark(&mut sys, profile, SEED, 20_000_000);
            let stats = sys.net().stats();
            let upward = built
                .upp_stats
                .map(|h| UppStats::snapshot(&h).upward_packets)
                .unwrap_or(0);
            Fig8Run {
                benchmark: bench.name.to_string(),
                scheme: kind.label().to_string(),
                vcs: *vcs,
                cycles: r.cycles,
                packets: r.packets,
                flits: r.flits,
                flit_hops: stats.flit_hops,
                bypass_hops: stats.bypass_hops,
                control_hops: stats.control_hops,
                flits_injected: stats.flits_injected,
                upward_packets: upward,
                incomplete: r.incomplete,
            }
        },
    );
    let topo = spec.build(SEED).expect("baseline builds");
    let routers = topo.num_nodes();
    let links = topo
        .nodes()
        .iter()
        .map(|n| n.links().count())
        .sum::<usize>()
        / 2;
    let geomean = geomeans(&runs);
    Fig8Data {
        runs,
        routers,
        links,
        geomean,
    }
}

/// Runtime of `(benchmark, scheme, vcs)`.
fn runtime_of(runs: &[Fig8Run], bench: &str, scheme: &str, vcs: usize) -> Option<u64> {
    runs.iter()
        .find(|r| r.benchmark == bench && r.scheme == scheme && r.vcs == vcs)
        .map(|r| r.cycles)
}

fn geomeans(runs: &[Fig8Run]) -> Vec<(String, usize, f64)> {
    let mut out = Vec::new();
    for vcs in [1usize, 4] {
        for scheme in ["composable", "remote-control", "UPP"] {
            let mut log_sum = 0.0;
            let mut n = 0usize;
            for r in runs.iter().filter(|r| r.vcs == vcs && r.scheme == scheme) {
                let base = runtime_of(runs, &r.benchmark, "composable", vcs)
                    .expect("composable run exists");
                log_sum += (r.cycles as f64 / base as f64).ln();
                n += 1;
            }
            if n > 0 {
                out.push((scheme.to_string(), vcs, (log_sum / n as f64).exp()));
            }
        }
    }
    out
}

/// Runs Fig. 8 and renders it.
pub fn run(quick: bool) -> ExperimentResult {
    let d = data(quick);
    let mut out = String::new();
    out.push_str(
        "### Fig. 8 — normalized full-system runtime (coherence engine, normalized to composable)\n\n",
    );
    for vcs in [1usize, 4] {
        out.push_str(&format!(
            "\n**({}) {} VC(s) per VNet**\n\n",
            if vcs == 1 { "a" } else { "b" },
            vcs
        ));
        let mut t = MarkdownTable::new(["benchmark", "composable", "remote-control", "UPP"]);
        let mut benches: Vec<String> = d
            .runs
            .iter()
            .filter(|r| r.vcs == vcs)
            .map(|r| r.benchmark.clone())
            .collect();
        benches.dedup();
        benches.sort();
        benches.dedup();
        for b in &benches {
            let base = runtime_of(&d.runs, b, "composable", vcs).expect("composable run");
            let norm = |s: &str| {
                runtime_of(&d.runs, b, s, vcs)
                    .map(|c| f3(c as f64 / base as f64))
                    .unwrap_or_else(|| "-".into())
            };
            t.row([
                b.clone(),
                norm("composable"),
                norm("remote-control"),
                norm("UPP"),
            ]);
        }
        let gm = |s: &str| {
            d.geomean
                .iter()
                .find(|(x, v, _)| x == s && *v == vcs)
                .map(|(_, _, g)| f3(*g))
                .unwrap_or_else(|| "-".into())
        };
        t.row([
            "**geomean**".to_string(),
            gm("composable"),
            gm("remote-control"),
            gm("UPP"),
        ]);
        out.push_str(&t.render());
    }
    out.push_str(
        "\nPaper: UPP cuts runtime by 5.7-10.3% (1 VC) and 3.1-4.6% (4 VCs) vs composable.\n",
    );
    ExperimentResult::new("fig8", "Fig. 8: normalized runtime", out, &*d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig8_completes_and_upp_beats_composable_on_geomean() {
        let d = data(true);
        assert!(d.runs.iter().all(|r| !r.incomplete), "all runs must finish");
        let upp1 = d
            .geomean
            .iter()
            .find(|(s, v, _)| s == "UPP" && *v == 1)
            .map(|(_, _, g)| *g)
            .unwrap();
        assert!(
            upp1 < 1.02,
            "UPP normalized runtime should not exceed composable at 1 VC: {upp1}"
        );
        let comp = d
            .geomean
            .iter()
            .find(|(s, v, _)| s == "composable" && *v == 1)
            .map(|(_, _, g)| *g)
            .unwrap();
        assert!((comp - 1.0).abs() < 1e-9, "composable normalizes to itself");
    }
}
