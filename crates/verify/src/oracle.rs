//! A scheme-independent deadlock oracle.
//!
//! The oracle never asks a scheme whether the network is healthy. It
//! periodically rebuilds the *true* wait-for graph from router buffer
//! occupancy and routing state — the same ground truth the forensic
//! [`upp_noc::Network::stall_report`] uses — and flags a violation when the
//! same circular wait, held by the **same packets**, is still present after
//! a configurable number of cycles. A correct recovery scheme must break
//! every cycle well within the threshold; a broken one is caught here even
//! if its own telemetry stays green.
//!
//! Two deliberate design points:
//!
//! * The fingerprint pairs each cycle channel with the packet occupying it.
//!   Under sustained overload the same *channels* can stay saturated for
//!   thousands of cycles while packets flow through them — a stable
//!   congestion pattern is not a deadlock. Frozen owners are.
//! * Circular waits that include a dynamically-failed channel are excused:
//!   under the fail-stop link semantics of [`upp_noc::fault`], a packet
//!   blocked on a dead link is waiting for the heal, not for another
//!   packet, and every generated fault plan heals before the horizon.

use std::collections::BTreeSet;
use std::fmt;

use upp_noc::ids::{PacketId, Port};
use upp_noc::routing::{GlobalCdg, GlobalChannel};
use upp_noc::Network;

/// Oracle sampling parameters.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Cycles between wait-for-graph samples.
    pub sample_every: u64,
    /// A cycle must persist unchanged (same channels, same owning packets)
    /// for this many cycles to be flagged.
    pub persist_threshold: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self {
            sample_every: 50,
            persist_threshold: 2_000,
        }
    }
}

/// A confirmed persistent circular wait.
#[derive(Debug, Clone)]
pub struct OracleViolation {
    /// Cycle the (eventually confirmed) wait cycle was first sampled.
    pub first_seen: u64,
    /// Cycle the persistence threshold was crossed.
    pub confirmed_at: u64,
    /// The channels of the circular wait, sorted.
    pub channels: Vec<GlobalChannel>,
}

impl fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "circular wait persisted {} cycles (first seen @{}, confirmed @{}):",
            self.confirmed_at - self.first_seen,
            self.first_seen,
            self.confirmed_at
        )?;
        for ch in &self.channels {
            write!(f, " {}:{}", ch.from, ch.out)?;
        }
        Ok(())
    }
}

/// One buffer-occupancy wait dependency: `owner`'s flits sit in the
/// downstream buffers of `held` while the packet needs `wanted` next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitEdge {
    /// Channel whose downstream buffers the flits occupy.
    pub held: GlobalChannel,
    /// Channel the owning packet must acquire to make progress.
    pub wanted: GlobalChannel,
    /// The waiting packet.
    pub owner: PacketId,
}

/// Samples a network's wait-for graph and reports persistent cycles.
#[derive(Debug, Default)]
pub struct DeadlockOracle {
    cfg: OracleConfig,
    fingerprint: Vec<(GlobalChannel, PacketId)>,
    since: u64,
    violation: Option<OracleViolation>,
}

impl DeadlockOracle {
    /// Creates an oracle with the given sampling parameters.
    pub fn new(cfg: OracleConfig) -> Self {
        Self {
            cfg,
            fingerprint: Vec::new(),
            since: 0,
            violation: None,
        }
    }

    /// The first confirmed violation, if any.
    pub fn violation(&self) -> Option<&OracleViolation> {
        self.violation.as_ref()
    }

    /// Observes the network. Call once per cycle (after stepping); the
    /// oracle samples every [`OracleConfig::sample_every`] cycles.
    pub fn observe(&mut self, net: &Network) {
        if self.violation.is_some() {
            return;
        }
        let now = net.cycle();
        if !now.is_multiple_of(self.cfg.sample_every) {
            return;
        }
        let edges = wait_for_edges(net);
        let pairs: Vec<(GlobalChannel, GlobalChannel)> =
            edges.iter().map(|e| (e.held, e.wanted)).collect();
        let Some(channels) = GlobalCdg::from_edges(&pairs).find_cycle() else {
            self.fingerprint.clear();
            return;
        };
        // Excuse cycles blocked on a dynamically-failed link: the wait
        // resolves when the fault plan heals the link.
        if channels
            .iter()
            .any(|c| net.topo().neighbor(c.from, c.out).is_none())
        {
            self.fingerprint.clear();
            return;
        }
        // `find_cycle` returns the cycle in path order: its edges are the
        // consecutive channel pairs plus the closing wrap-around pair.
        let cycle_edges: BTreeSet<(GlobalChannel, GlobalChannel)> = channels
            .iter()
            .zip(channels.iter().cycle().skip(1))
            .map(|(&a, &b)| (a, b))
            .collect();
        let mut fp: Vec<(GlobalChannel, PacketId)> = edges
            .iter()
            .filter(|e| cycle_edges.contains(&(e.held, e.wanted)))
            .map(|e| (e.held, e.owner))
            .collect();
        fp.sort();
        if fp == self.fingerprint {
            if now.saturating_sub(self.since) >= self.cfg.persist_threshold {
                let mut sorted = channels;
                sorted.sort();
                self.violation = Some(OracleViolation {
                    first_seen: self.since,
                    confirmed_at: now,
                    channels: sorted,
                });
            }
        } else {
            self.fingerprint = fp;
            self.since = now;
        }
    }
}

/// Builds the true wait-for graph from buffer occupancy: for every occupied
/// input VC whose packet needs a non-local output, the channel its flits sit
/// on waits for the channel the packet needs next.
///
/// This duplicates the edge construction of
/// [`upp_noc::Network::stall_report`] on purpose — the oracle must not
/// depend on the forensics path it is meant to cross-check staying honest.
pub fn wait_for_edges(net: &Network) -> Vec<WaitEdge> {
    let topo = net.topo();
    let mut edges = Vec::new();
    for info in topo.nodes() {
        let r = net.router(info.id);
        let node = r.node();
        for (p, f) in r.input_vcs() {
            let vc = r.input_vc(p, f);
            let Some(owner) = vc.owner else { continue };
            if r.vc_buf_is_empty(p, f) || p == Port::Local {
                continue;
            }
            let Some(out) = vc.route_out else { continue };
            if out == Port::Local {
                continue;
            }
            let Some(upstream) = topo.neighbor(node, p) else {
                // The flits arrived over a link that has since failed; the
                // occupied channel cannot be named live, so it contributes
                // no wait-for edge until the heal.
                continue;
            };
            edges.push(WaitEdge {
                held: GlobalChannel {
                    from: upstream,
                    out: p.opposite(),
                },
                wanted: GlobalChannel { from: node, out },
                owner,
            });
        }
    }
    edges
}
